//! JSON and NDJSON rendering.
//!
//! The JSON document is one pretty-printed object; NDJSON emits one
//! compact object per finding followed by a summary object, so a
//! streaming consumer can act on findings before the scan's metadata
//! arrives. Neither rendering includes wall-clock timings — output for
//! the same tree is byte-identical across runs, worker counts, and
//! warm/cold caches.

use crate::{AppReport, Finding};

#[derive(serde::Serialize)]
struct JsonTool {
    name: &'static str,
    version: &'static str,
}

fn tool_stamp(report: &AppReport) -> JsonTool {
    JsonTool {
        name: report.tool_name,
        version: report.tool_version,
    }
}

#[derive(serde::Serialize)]
struct JsonFinding<'a> {
    file: Option<&'a str>,
    line: u32,
    class: &'a str,
    sink: &'a str,
    sources: &'a [String],
    real: bool,
    justification: Vec<&'a str>,
}

impl<'a> JsonFinding<'a> {
    fn new(f: &'a Finding) -> Self {
        JsonFinding {
            file: f.candidate.file.as_deref(),
            line: f.candidate.line,
            class: f.candidate.class.acronym(),
            sink: &f.candidate.sink,
            sources: &f.candidate.sources,
            real: f.is_real(),
            justification: f.prediction.justification.clone(),
        }
    }
}

#[derive(serde::Serialize)]
struct JsonLint<'a> {
    rule: &'a str,
    severity: &'static str,
    file: &'a str,
    line: u32,
    message: &'a str,
}

fn lint_entries(report: &AppReport) -> Option<Vec<JsonLint<'_>>> {
    if !report.lint_ran {
        return None;
    }
    Some(
        report
            .lint
            .iter()
            .map(|l| JsonLint {
                rule: &l.rule_id,
                severity: l.severity.as_str(),
                file: &l.file,
                line: l.line,
                message: &l.message,
            })
            .collect(),
    )
}

#[derive(serde::Serialize)]
struct JsonValues {
    dynamic_edges_resolved: usize,
    dynamic_edges_unresolved: usize,
}

fn values_entry(report: &AppReport) -> Option<JsonValues> {
    report.values_ran.then(|| JsonValues {
        dynamic_edges_resolved: report.dynamic_edges_resolved,
        dynamic_edges_unresolved: report.dynamic_edges_unresolved,
    })
}

/// Formats a report as one pretty-printed JSON document.
pub fn render_json(report: &AppReport) -> String {
    #[derive(serde::Serialize)]
    struct JsonReport<'a> {
        tool: JsonTool,
        files_analyzed: usize,
        loc: usize,
        parse_error_count: usize,
        real_vulnerabilities: usize,
        predicted_false_positives: usize,
        findings: Vec<JsonFinding<'a>>,
        parse_errors: Vec<(String, String)>,
        // absent entirely unless the lint pass ran, keeping default
        // output byte-identical to pre-lint builds
        #[serde(skip_serializing_if = "Option::is_none")]
        lint: Option<Vec<JsonLint<'a>>>,
        // absent unless the value pass ran (`--values`), same contract
        #[serde(skip_serializing_if = "Option::is_none")]
        values: Option<JsonValues>,
    }
    let findings: Vec<JsonFinding> = report.findings.iter().map(JsonFinding::new).collect();
    serde_json::to_string_pretty(&JsonReport {
        tool: tool_stamp(report),
        files_analyzed: report.files_analyzed,
        loc: report.loc,
        parse_error_count: report.parse_errors.len(),
        real_vulnerabilities: report.real_vulnerabilities().count(),
        predicted_false_positives: report.predicted_false_positives().count(),
        findings,
        parse_errors: report
            .parse_errors
            .iter()
            .map(|(f, e)| (f.clone(), e.to_string()))
            .collect(),
        lint: lint_entries(report),
        values: values_entry(report),
    })
    .expect("report serializes")
}

/// Formats a report as NDJSON: one compact JSON object per finding, then
/// one `{"summary": ...}` object closing the stream.
pub fn render_ndjson(report: &AppReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&serde_json::to_string(&JsonFinding::new(f)).expect("finding serializes"));
        out.push('\n');
    }
    #[derive(serde::Serialize)]
    struct NdLint<'a> {
        lint: JsonLint<'a>,
    }
    for l in lint_entries(report).unwrap_or_default() {
        out.push_str(&serde_json::to_string(&NdLint { lint: l }).expect("lint serializes"));
        out.push('\n');
    }
    #[derive(serde::Serialize)]
    struct Summary<'a> {
        tool: JsonTool,
        files_analyzed: usize,
        loc: usize,
        parse_error_count: usize,
        real_vulnerabilities: usize,
        predicted_false_positives: usize,
        parse_errors: Vec<(&'a str, String)>,
        #[serde(skip_serializing_if = "Option::is_none")]
        lint_findings: Option<usize>,
        #[serde(skip_serializing_if = "Option::is_none")]
        values: Option<JsonValues>,
    }
    #[derive(serde::Serialize)]
    struct Trailer<'a> {
        summary: Summary<'a>,
    }
    out.push_str(
        &serde_json::to_string(&Trailer {
            summary: Summary {
                tool: tool_stamp(report),
                files_analyzed: report.files_analyzed,
                loc: report.loc,
                parse_error_count: report.parse_errors.len(),
                real_vulnerabilities: report.real_vulnerabilities().count(),
                predicted_false_positives: report.predicted_false_positives().count(),
                parse_errors: report
                    .parse_errors
                    .iter()
                    .map(|(f, e)| (f.as_str(), e.to_string()))
                    .collect(),
                lint_findings: report.lint_ran.then(|| report.lint.len()),
                values: values_entry(report),
            },
        })
        .expect("summary serializes"),
    );
    out.push('\n');
    out
}
