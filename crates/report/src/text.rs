//! Human-readable rendering (the CLI's default output).

use crate::AppReport;
use std::fmt::Write as _;

/// Formats a report as human-readable text.
pub fn render_text(report: &AppReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let file = f.candidate.file.as_deref().unwrap_or("<input>");
        if f.is_real() {
            let _ = writeln!(
                out,
                "{file}:{}: {} via {} (source: {})",
                f.candidate.line,
                f.candidate.class,
                f.candidate.sink,
                f.candidate.sources.join(", "),
            );
            for step in &f.candidate.path {
                let _ = writeln!(out, "    {} (line {})", step.what, step.line);
            }
        } else {
            let _ = writeln!(
                out,
                "{file}:{}: {} candidate predicted FALSE POSITIVE ({})",
                f.candidate.line,
                f.candidate.class,
                f.prediction.justification.join(", "),
            );
        }
    }
    for (file, err) in &report.parse_errors {
        let _ = writeln!(out, "{file}: parse error: {err}");
    }
    let _ = writeln!(
        out,
        "\n{} files, {} LoC, {} parse errors, {} real vulnerabilities, {} predicted false positives ({} ms)",
        report.files_analyzed,
        report.loc,
        report.parse_errors.len(),
        report.real_vulnerabilities().count(),
        report.predicted_false_positives().count(),
        report.duration.as_millis()
    );
    out
}
