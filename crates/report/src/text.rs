//! Human-readable rendering (the CLI's default output).

use crate::AppReport;
use std::fmt::Write as _;

/// Formats a report as human-readable text.
pub fn render_text(report: &AppReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        let file = f.candidate.file.as_deref().unwrap_or("<input>");
        if f.is_real() {
            let _ = writeln!(
                out,
                "{file}:{}: {} via {} (source: {})",
                f.candidate.line,
                f.candidate.class,
                f.candidate.sink,
                f.candidate.sources.join(", "),
            );
            for step in &f.candidate.path {
                let _ = writeln!(out, "    {} (line {})", step.what, step.line);
            }
        } else {
            let _ = writeln!(
                out,
                "{file}:{}: {} candidate predicted FALSE POSITIVE ({})",
                f.candidate.line,
                f.candidate.class,
                f.prediction.justification.join(", "),
            );
        }
    }
    if report.lint_ran {
        for l in &report.lint {
            let _ = writeln!(
                out,
                "{}:{}: {} [{}] {}",
                l.file,
                l.line,
                l.severity.as_str(),
                l.rule_id,
                l.message
            );
        }
    }
    for (file, err) in &report.parse_errors {
        let _ = writeln!(out, "{file}: parse error: {err}");
    }
    let lint_summary = if report.lint_ran {
        format!(", {} lint findings", report.lint.len())
    } else {
        String::new()
    };
    // the values addendum only exists when the value pass ran, so
    // default-config reports keep their historic shape byte for byte
    let values_summary = if report.values_ran {
        format!(
            ", {} dynamic edges resolved ({} unresolved)",
            report.dynamic_edges_resolved, report.dynamic_edges_unresolved
        )
    } else {
        String::new()
    };
    let _ = writeln!(
        out,
        "\n{} files, {} LoC, {} parse errors, {} real vulnerabilities, {} predicted false positives{}{}{} ({} ms)",
        report.files_analyzed,
        report.loc,
        report.parse_errors.len(),
        report.real_vulnerabilities().count(),
        report.predicted_false_positives().count(),
        lint_summary,
        values_summary,
        mem_summary(report),
        report.duration.as_millis()
    );
    out
}

/// The memory addendum to the summary line — empty when nothing was
/// measured, so reports from platforms without `VmHWM` (and from library
/// embeddings without the counting allocator) keep their historic shape.
fn mem_summary(report: &AppReport) -> String {
    let mut out = String::new();
    if report.stats.peak_rss_bytes > 0 {
        out.push_str(&format!(
            ", peak RSS {:.1} MB",
            report.stats.peak_rss_bytes as f64 / (1024.0 * 1024.0)
        ));
    }
    if report.stats.allocations > 0 {
        out.push_str(&format!(", {} allocations", report.stats.allocations));
    }
    out
}

/// Formats the `--stats` addendum to the text report: per-phase totals
/// and the top-`k` slowest files. The per-file breakdown only exists
/// when the scan ran with tracing enabled (`--trace`/`--stats` turn the
/// collector on); phase totals are always present.
pub fn render_stats(report: &AppReport, k: usize) -> String {
    let ms = |ns: u64| ns as f64 / 1e6;
    let mut out = String::new();
    let _ = writeln!(out, "\nphase totals:");
    for (phase, ns) in report.stats.phases().filter(|(_, ns)| *ns > 0) {
        let _ = writeln!(out, "  {:<13} {:>10.3} ms", phase.name(), ms(ns));
    }
    if report.stats.peak_rss_bytes > 0 || report.stats.allocations > 0 {
        let _ = writeln!(out, "memory:");
        if report.stats.peak_rss_bytes > 0 {
            let _ = writeln!(
                out,
                "  peak RSS      {:>10.1} MB",
                report.stats.peak_rss_bytes as f64 / (1024.0 * 1024.0)
            );
        }
        if report.stats.allocations > 0 {
            let _ = writeln!(
                out,
                "  allocations   {:>10}",
                report.stats.allocations
            );
        }
    }
    let slow = report.stats.slowest_files(k);
    if slow.is_empty() {
        let _ = writeln!(out, "no per-file timings collected");
    } else {
        let _ = writeln!(
            out,
            "slowest files (top {} of {}):",
            slow.len(),
            report.stats.files.len()
        );
        for f in slow {
            let _ = writeln!(out, "  {:>10.3} ms  {}", ms(f.ns), f.file);
        }
    }
    out
}
