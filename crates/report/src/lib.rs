//! # wap-report — the report model and its renderers
//!
//! The pipeline's output types ([`AppReport`], [`Finding`]) live here,
//! together with every serialization of them: human-readable text,
//! machine-readable JSON, line-delimited NDJSON for streaming consumers,
//! and SARIF 2.1.0 for code-scanning UIs. Both the `wap` CLI and the
//! `wap-serve` HTTP service render through this crate, so a scan's bytes
//! are identical no matter which front end produced them.
//!
//! The tool identity ([`TOOL_NAME`], [`TOOL_VERSION`]) is also pinned
//! here — one constant feeds the SARIF `tool.driver` object, the JSON
//! report stamp, *and* the incremental cache's version key, so report
//! branding and cache invalidation can never drift apart.

#![warn(missing_docs)]

pub mod delta;
mod json;
mod model;
mod sarif;
mod text;

pub use delta::{compute_delta, render_delta_ndjson, FindingsDelta, WATCH_SCHEMA};
pub use json::{render_json, render_ndjson};
pub use model::{AppReport, FileStat, Finding, ScanStats};
pub use sarif::render_sarif;
pub use wap_cfg::{LintFinding, LintRule, Severity as LintSeverity};
pub use text::{render_stats, render_text};
pub use wap_obs::Phase;

use wap_catalog::VulnClass;

/// The tool name stamped into every report (SARIF `tool.driver.name`).
pub const TOOL_NAME: &str = "wap-rs";

/// The tool's semantic version, from the workspace package version. Also
/// the version component of every incremental-cache key: bumping the
/// workspace version invalidates cached analysis artifacts *and* changes
/// the reported `tool.driver.semanticVersion` in one move.
pub const TOOL_VERSION: &str = env!("CARGO_PKG_VERSION");

/// `tool.driver.informationUri` in SARIF output.
pub const TOOL_INFORMATION_URI: &str = "https://example.org/wap-rs";

/// An output format for a rendered report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Human-readable text (the CLI default).
    #[default]
    Text,
    /// One pretty-printed JSON document.
    Json,
    /// One JSON object per finding plus a trailing summary object.
    Ndjson,
    /// SARIF 2.1.0.
    Sarif,
}

impl Format {
    /// Parses a format name (`text`, `json`, `ndjson`, `sarif`).
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "txt" => Some(Format::Text),
            "json" => Some(Format::Json),
            "ndjson" | "jsonl" => Some(Format::Ndjson),
            "sarif" => Some(Format::Sarif),
            _ => None,
        }
    }

    /// Picks a format from an HTTP `Accept` header value; `None` when the
    /// header names no format this crate renders.
    pub fn from_accept(accept: &str) -> Option<Format> {
        let accept = accept.to_ascii_lowercase();
        if accept.contains("application/sarif+json") {
            Some(Format::Sarif)
        } else if accept.contains("application/x-ndjson") || accept.contains("application/ndjson") {
            Some(Format::Ndjson)
        } else if accept.contains("application/json") {
            Some(Format::Json)
        } else if accept.contains("text/plain") {
            Some(Format::Text)
        } else {
            None
        }
    }

    /// The MIME type of this format's rendering.
    pub fn content_type(&self) -> &'static str {
        match self {
            Format::Text => "text/plain; charset=utf-8",
            Format::Json => "application/json",
            Format::Ndjson => "application/x-ndjson",
            Format::Sarif => "application/sarif+json",
        }
    }

    /// Renders `report` in this format. `classes` is the active catalog's
    /// class list (weapons included) — SARIF derives its rule table from
    /// it; the other formats ignore it.
    pub fn render(&self, report: &AppReport, classes: &[VulnClass]) -> String {
        match self {
            Format::Text => render_text(report),
            Format::Json => render_json(report),
            Format::Ndjson => render_ndjson(report),
            Format::Sarif => render_sarif(report, classes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parse_round_trip() {
        assert_eq!(Format::parse("sarif"), Some(Format::Sarif));
        assert_eq!(Format::parse("JSON"), Some(Format::Json));
        assert_eq!(Format::parse("ndjson"), Some(Format::Ndjson));
        assert_eq!(Format::parse("text"), Some(Format::Text));
        assert_eq!(Format::parse("yaml"), None);
    }

    #[test]
    fn format_from_accept_header() {
        assert_eq!(
            Format::from_accept("application/sarif+json"),
            Some(Format::Sarif)
        );
        assert_eq!(
            Format::from_accept("application/x-ndjson, text/plain"),
            Some(Format::Ndjson)
        );
        assert_eq!(Format::from_accept("application/json"), Some(Format::Json));
        assert_eq!(Format::from_accept("*/*"), None);
    }

    #[test]
    fn tool_version_matches_workspace() {
        assert_eq!(TOOL_VERSION, env!("CARGO_PKG_VERSION"));
        assert!(!TOOL_NAME.is_empty());
    }
}
