//! Findings deltas between two revisions of the same tree — the
//! `wap watch` streaming format.
//!
//! A live session re-analyzes on every edit; emitting the whole report
//! each time would bury the one line the developer cares about. This
//! module diffs two [`AppReport`]s into added/removed/unchanged findings
//! and renders the result as schema-versioned NDJSON
//! ([`WATCH_SCHEMA`] = `wap-watch-v1`): one `revision` header line with
//! the counts, then one line per added/removed finding (and, in *full*
//! mode, one `finding` line per current finding so a late-joining
//! consumer can rebuild state).
//!
//! Rendering is hand-rolled (like the `wap-obs` trace writer) and
//! contains no wall-clock values, so the delta stream for a given edit
//! sequence is byte-deterministic at any worker count, cache state, or
//! front-end.

use crate::{AppReport, Finding};
use std::collections::HashMap;

/// Schema identifier stamped on every `wap watch` revision line.
pub const WATCH_SCHEMA: &str = "wap-watch-v1";

/// The findings difference between two revisions.
#[derive(Debug, Clone, Default)]
pub struct FindingsDelta {
    /// Findings present in the new revision but not the old.
    pub added: Vec<Finding>,
    /// Findings present in the old revision but not the new.
    pub removed: Vec<Finding>,
    /// Findings present in both.
    pub unchanged: usize,
}

/// The identity of a finding for delta matching: location, class, sink,
/// and the predictor's verdict. Two findings with the same key in
/// consecutive revisions are "the same finding".
fn finding_key(f: &Finding) -> String {
    format!(
        "{}:{}:{}:{}:{}",
        f.candidate.file.as_deref().unwrap_or(""),
        f.candidate.line,
        f.candidate.class.acronym(),
        f.candidate.sink,
        f.is_real()
    )
}

/// Diffs `next` against `prev` as multisets of finding keys. Pass an
/// empty/default report as `prev` for the first revision (everything is
/// `added`).
pub fn compute_delta(prev: &AppReport, next: &AppReport) -> FindingsDelta {
    let mut prev_counts: HashMap<String, usize> = HashMap::new();
    for f in &prev.findings {
        *prev_counts.entry(finding_key(f)).or_insert(0) += 1;
    }
    let mut delta = FindingsDelta::default();
    for f in &next.findings {
        let key = finding_key(f);
        match prev_counts.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                delta.unchanged += 1;
            }
            _ => delta.added.push(f.clone()),
        }
    }
    for f in &prev.findings {
        let key = finding_key(f);
        if let Some(n) = prev_counts.get_mut(&key) {
            if *n > 0 {
                *n -= 1;
                delta.removed.push(f.clone());
            }
        }
    }
    delta
}

/// Renders one revision of the watch stream: the `revision` header line,
/// an `added`/`removed` line per changed finding, and — when `full` —
/// one `finding` line per finding in `next` (the complete current set).
pub fn render_delta_ndjson(
    revision: u64,
    delta: &FindingsDelta,
    next: &AppReport,
    full: bool,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"schema\":\"{WATCH_SCHEMA}\",\"kind\":\"revision\",\"revision\":{revision},\
         \"files\":{},\"added\":{},\"removed\":{},\"unchanged\":{},\"findings\":{},\
         \"real\":{},\"parse_errors\":{}}}\n",
        next.files_analyzed,
        delta.added.len(),
        delta.removed.len(),
        delta.unchanged,
        next.findings.len(),
        next.real_vulnerabilities().count(),
        next.parse_errors.len(),
    ));
    for f in &delta.added {
        out.push_str(&finding_line("added", f));
    }
    for f in &delta.removed {
        out.push_str(&finding_line("removed", f));
    }
    if full {
        for f in &next.findings {
            out.push_str(&finding_line("finding", f));
        }
    }
    out
}

fn finding_line(kind: &str, f: &Finding) -> String {
    format!(
        "{{\"kind\":\"{kind}\",\"file\":{},\"line\":{},\"class\":{},\"sink\":{},\"real\":{}}}\n",
        json_str(f.candidate.file.as_deref().unwrap_or("")),
        f.candidate.line,
        json_str(f.candidate.class.acronym()),
        json_str(&f.candidate.sink),
        f.is_real()
    )
}

/// Minimal JSON string escaping (same rules as the wap-obs trace writer).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_mining::{FeatureVector, Prediction};
    use wap_php::Span;
    use wap_taint::Candidate;

    fn finding(file: &str, line: u32, real: bool) -> Finding {
        Finding {
            candidate: Candidate {
                class: wap_catalog::VulnClass::Sqli,
                sink: "mysql_query".into(),
                sink_span: Span::new(0, 1, line),
                line,
                sources: vec!["$_GET['id']".into()],
                path: vec![],
                carriers: vec![],
                tainted_arg: Some(0),
                fix_site: Span::new(0, 1, line),
                literal_fragments: vec![],
                file: Some(file.to_string()),
            },
            prediction: Prediction {
                is_false_positive: !real,
                votes: if real { 0 } else { 3 },
                justification: vec![],
            },
            symptoms: FeatureVector {
                features: vec![],
                present: vec![],
            },
        }
    }

    fn report(findings: Vec<Finding>) -> AppReport {
        AppReport {
            findings,
            files_analyzed: 2,
            ..AppReport::default()
        }
    }

    #[test]
    fn first_revision_is_all_added() {
        let prev = AppReport::default();
        let next = report(vec![finding("a.php", 3, true), finding("b.php", 7, false)]);
        let d = compute_delta(&prev, &next);
        assert_eq!(d.added.len(), 2);
        assert_eq!(d.removed.len(), 0);
        assert_eq!(d.unchanged, 0);
    }

    #[test]
    fn delta_matches_by_identity_and_counts_duplicates() {
        let prev = report(vec![
            finding("a.php", 3, true),
            finding("a.php", 3, true), // duplicate key: multiset semantics
            finding("b.php", 7, true),
        ]);
        let next = report(vec![finding("a.php", 3, true), finding("c.php", 1, true)]);
        let d = compute_delta(&prev, &next);
        assert_eq!(d.unchanged, 1, "one copy of a.php:3 survives");
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.added[0].candidate.file.as_deref(), Some("c.php"));
        let removed: Vec<&str> = d
            .removed
            .iter()
            .map(|f| f.candidate.file.as_deref().unwrap())
            .collect();
        assert_eq!(removed, vec!["a.php", "b.php"]);
    }

    #[test]
    fn verdict_flip_is_a_remove_plus_add() {
        let prev = report(vec![finding("a.php", 3, true)]);
        let next = report(vec![finding("a.php", 3, false)]);
        let d = compute_delta(&prev, &next);
        assert_eq!(d.unchanged, 0);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
    }

    #[test]
    fn ndjson_lines_are_schema_stamped_and_escaped() {
        let prev = AppReport::default();
        let next = report(vec![finding("dir/a \"q\".php", 3, true)]);
        let d = compute_delta(&prev, &next);
        let out = render_delta_ndjson(1, &d, &next, false);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "{out}");
        assert!(lines[0].contains("\"schema\":\"wap-watch-v1\""), "{out}");
        assert!(lines[0].contains("\"revision\":1"), "{out}");
        assert!(lines[0].contains("\"added\":1"), "{out}");
        assert!(lines[1].contains("\"kind\":\"added\""), "{out}");
        assert!(lines[1].contains("\\\"q\\\""), "escaped quote: {out}");
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn full_mode_re_emits_every_current_finding() {
        let next = report(vec![finding("a.php", 3, true), finding("b.php", 7, true)]);
        let d = compute_delta(&next, &next); // no changes
        let out = render_delta_ndjson(4, &d, &next, true);
        assert_eq!(out.lines().count(), 3, "{out}");
        assert_eq!(
            out.lines()
                .filter(|l| l.contains("\"kind\":\"finding\""))
                .count(),
            2
        );
        assert!(out.contains("\"unchanged\":2"), "{out}");
        // without full, an unchanged revision is just the header
        let quiet = render_delta_ndjson(4, &d, &next, false);
        assert_eq!(quiet.lines().count(), 1, "{quiet}");
    }
}
