//! The report model: what one analyzed application produced.
//!
//! These types used to live inside the pipeline crate; they were extracted
//! so every consumer of a report — CLI, HTTP service, benches — shares one
//! model and one set of renderers without depending on the pipeline.

use std::collections::HashMap;
use std::time::Duration;
use wap_cache::CacheStatsSnapshot;
use wap_mining::{FeatureVector, Prediction};
use wap_php::ParseError;
use wap_taint::Candidate;

/// One analyzed finding: the taint candidate plus the predictor's verdict
/// and the symptoms that justified it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The candidate vulnerability from the taint analyzer.
    pub candidate: Candidate,
    /// The committee's verdict.
    pub prediction: Prediction,
    /// The collected attribute vector.
    pub symptoms: FeatureVector,
}

impl Finding {
    /// Whether the tool reports this as a real vulnerability.
    pub fn is_real(&self) -> bool {
        !self.prediction.is_false_positive
    }
}

/// Result of analyzing one application.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// All findings (real + predicted FPs), in file/line order.
    pub findings: Vec<Finding>,
    /// Files successfully analyzed.
    pub files_analyzed: usize,
    /// Total lines of code analyzed.
    pub loc: usize,
    /// Files that failed to parse, with their errors.
    pub parse_errors: Vec<(String, ParseError)>,
    /// Wall-clock analysis time.
    pub duration: Duration,
    /// Nanoseconds spent parsing.
    pub parse_ns: u64,
    /// Nanoseconds spent in taint analysis.
    pub taint_ns: u64,
    /// Nanoseconds spent collecting symptoms and voting.
    pub predict_ns: u64,
    /// Incremental cache counters for this run (all zero when the cache
    /// is disabled).
    pub cache: CacheStatsSnapshot,
    /// Nanoseconds of cache overhead: content hashing, key derivation,
    /// and entry encode/decode/IO.
    pub cache_ns: u64,
    /// Name of the tool that produced this report ([`crate::TOOL_NAME`]).
    pub tool_name: &'static str,
    /// Semantic version of the tool ([`crate::TOOL_VERSION`]) — the same
    /// constant keyed into the incremental cache, so a report always names
    /// the version whose cached artifacts it was assembled from.
    pub tool_version: &'static str,
}

impl AppReport {
    /// Findings classified as real vulnerabilities.
    pub fn real_vulnerabilities(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_real())
    }

    /// Findings predicted to be false positives.
    pub fn predicted_false_positives(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.is_real())
    }

    /// Count of real vulnerabilities per class acronym, sorted.
    pub fn real_by_class(&self) -> Vec<(String, usize)> {
        let mut map: HashMap<String, usize> = HashMap::new();
        for f in self.real_vulnerabilities() {
            *map.entry(f.candidate.class.acronym().to_string())
                .or_default() += 1;
        }
        let mut v: Vec<(String, usize)> = map.into_iter().collect();
        v.sort();
        v
    }

    /// Distinct files containing real vulnerabilities.
    pub fn vulnerable_files(&self) -> usize {
        let mut fs: Vec<&str> = self
            .real_vulnerabilities()
            .filter_map(|f| f.candidate.file.as_deref())
            .collect();
        fs.sort();
        fs.dedup();
        fs.len()
    }
}
