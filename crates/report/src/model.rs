//! The report model: what one analyzed application produced.
//!
//! These types used to live inside the pipeline crate; they were extracted
//! so every consumer of a report — CLI, HTTP service, benches — shares one
//! model and one set of renderers without depending on the pipeline.

use std::collections::HashMap;
use std::time::Duration;
use wap_cache::CacheStatsSnapshot;
use wap_cfg::{LintFinding, LintRule};
use wap_mining::{FeatureVector, Prediction};
use wap_obs::Phase;
use wap_php::ParseError;
use wap_taint::Candidate;

/// Total analysis nanoseconds spent on one file, summed over every
/// traced span carrying that file's label (parse, taint pass A,
/// top-level exec, per-candidate votes, fixes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileStat {
    /// File name as given to the analyzer.
    pub file: String,
    /// Total nanoseconds across all phases.
    pub ns: u64,
}

/// Structured per-scan timing statistics: one nanosecond total per
/// pipeline [`Phase`], plus an optional per-file breakdown.
///
/// This replaces the four loose `parse_ns`/`taint_ns`/`predict_ns`/
/// `cache_ns` fields `AppReport` used to carry. Phase totals are always
/// measured (they cost four `Instant` reads per scan); the per-file
/// breakdown is populated only when tracing is enabled, from the
/// `wap-obs` collector. None of this is rendered by the machine formats
/// (JSON/NDJSON/SARIF), which stay timing-free and byte-deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanStats {
    phase_ns: [u64; Phase::COUNT],
    /// Per-file totals, sorted by descending duration (ties by name),
    /// as produced by `wap_obs::Collector::file_totals`. Empty unless
    /// tracing was enabled for the scan.
    pub files: Vec<FileStat>,
    /// Peak resident set size in bytes observed when the scan finished
    /// (Linux `VmHWM` via `wap_obs::peak_rss_bytes`); 0 when unknown.
    pub peak_rss_bytes: u64,
    /// Global-allocator calls made during the scan. Stays 0 unless the
    /// running binary installed `wap_obs::CountingAlloc` — libraries and
    /// unit tests report nothing rather than a misleading zero-cost.
    pub allocations: u64,
}

impl ScanStats {
    /// All-zero stats with no per-file breakdown.
    pub fn new() -> ScanStats {
        ScanStats::default()
    }

    /// Nanoseconds attributed to `phase`.
    pub fn phase_ns(&self, phase: Phase) -> u64 {
        self.phase_ns[phase.index()]
    }

    /// Sets the total for one phase.
    pub fn set_phase_ns(&mut self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()] = ns;
    }

    /// Adds to the total for one phase.
    pub fn add_phase_ns(&mut self, phase: Phase, ns: u64) {
        self.phase_ns[phase.index()] += ns;
    }

    /// Every `(phase, ns)` pair in pipeline order, including zeros.
    pub fn phases(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL.iter().map(move |p| (*p, self.phase_ns(*p)))
    }

    /// Sum of all phase totals.
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().sum()
    }

    /// Replaces the per-file breakdown with collector totals
    /// (`(file, ns)`, already sorted by descending duration).
    pub fn set_file_totals(&mut self, totals: Vec<(String, u64)>) {
        self.files = totals
            .into_iter()
            .map(|(file, ns)| FileStat { file, ns })
            .collect();
    }

    /// The `k` slowest files (the whole breakdown when it is shorter).
    pub fn slowest_files(&self, k: usize) -> &[FileStat] {
        &self.files[..self.files.len().min(k)]
    }
}

/// One analyzed finding: the taint candidate plus the predictor's verdict
/// and the symptoms that justified it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The candidate vulnerability from the taint analyzer.
    pub candidate: Candidate,
    /// The committee's verdict.
    pub prediction: Prediction,
    /// The collected attribute vector.
    pub symptoms: FeatureVector,
}

impl Finding {
    /// Whether the tool reports this as a real vulnerability.
    pub fn is_real(&self) -> bool {
        !self.prediction.is_false_positive
    }
}

/// Result of analyzing one application.
#[derive(Debug, Clone)]
pub struct AppReport {
    /// All findings (real + predicted FPs), in file/line order.
    pub findings: Vec<Finding>,
    /// Files successfully analyzed.
    pub files_analyzed: usize,
    /// Total lines of code analyzed.
    pub loc: usize,
    /// Files that failed to parse, with their errors.
    pub parse_errors: Vec<(String, ParseError)>,
    /// Wall-clock analysis time.
    pub duration: Duration,
    /// Per-phase (and, under tracing, per-file) timing statistics.
    pub stats: ScanStats,
    /// Incremental cache counters for this run (all zero when the cache
    /// is disabled).
    pub cache: CacheStatsSnapshot,
    /// Whether the CFG lint pass ran for this scan. Renderers emit lint
    /// sections only when set, so default scans stay byte-identical to
    /// builds that predate the pass.
    pub lint_ran: bool,
    /// Lint findings (sorted by file/line/span/rule), empty unless
    /// `lint_ran`.
    pub lint: Vec<LintFinding>,
    /// The rule table the lint pass ran with (builtin + weapon-declared),
    /// in stable id order; drives SARIF rule metadata.
    pub lint_rules: Vec<LintRule>,
    /// Whether the interprocedural value analysis (`--values`) ran for
    /// this scan. Renderers emit the dynamic-edge summary only when set,
    /// so default scans stay byte-identical to builds without the pass.
    pub values_ran: bool,
    /// Dynamic call/include edges the value analysis resolved to known
    /// targets; 0 unless `values_ran`.
    pub dynamic_edges_resolved: usize,
    /// Dynamic call/include edges left opaque; 0 unless `values_ran`.
    pub dynamic_edges_unresolved: usize,
    /// Name of the tool that produced this report ([`crate::TOOL_NAME`]).
    pub tool_name: &'static str,
    /// Semantic version of the tool ([`crate::TOOL_VERSION`]) — the same
    /// constant keyed into the incremental cache, so a report always names
    /// the version whose cached artifacts it was assembled from.
    pub tool_version: &'static str,
}

impl Default for AppReport {
    /// An empty report branded with this build's tool identity.
    fn default() -> Self {
        AppReport {
            findings: Vec::new(),
            files_analyzed: 0,
            loc: 0,
            parse_errors: Vec::new(),
            duration: Duration::default(),
            stats: ScanStats::default(),
            cache: CacheStatsSnapshot::default(),
            lint_ran: false,
            lint: Vec::new(),
            lint_rules: Vec::new(),
            values_ran: false,
            dynamic_edges_resolved: 0,
            dynamic_edges_unresolved: 0,
            tool_name: crate::TOOL_NAME,
            tool_version: crate::TOOL_VERSION,
        }
    }
}

impl AppReport {
    /// Findings classified as real vulnerabilities.
    pub fn real_vulnerabilities(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.is_real())
    }

    /// Findings predicted to be false positives.
    pub fn predicted_false_positives(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.is_real())
    }

    /// Count of real vulnerabilities per class acronym, sorted.
    pub fn real_by_class(&self) -> Vec<(String, usize)> {
        let mut map: HashMap<String, usize> = HashMap::new();
        for f in self.real_vulnerabilities() {
            *map.entry(f.candidate.class.acronym().to_string())
                .or_default() += 1;
        }
        let mut v: Vec<(String, usize)> = map.into_iter().collect();
        v.sort();
        v
    }

    /// Lint findings at error severity.
    pub fn lint_errors(&self) -> impl Iterator<Item = &LintFinding> {
        self.lint
            .iter()
            .filter(|f| f.severity == wap_cfg::Severity::Error)
    }

    /// Distinct files containing real vulnerabilities.
    pub fn vulnerable_files(&self) -> usize {
        let mut fs: Vec<&str> = self
            .real_vulnerabilities()
            .filter_map(|f| f.candidate.file.as_deref())
            .collect();
        fs.sort();
        fs.dedup();
        fs.len()
    }
}
