//! SARIF 2.1.0 rendering.
//!
//! One run per report. The rule table is derived from the active catalog's
//! vulnerability classes — weapons loaded at runtime contribute rules like
//! any built-in class, each under its stable [`VulnClass::rule_id`]. Every
//! result carries a physical location (file + start line) and, when the
//! taint analyzer recorded a data-flow path, a `codeFlows` entry whose
//! thread flow replays the path step by step. Predicted false positives
//! are reported at level `note` with `properties.predictedFalsePositive`
//! set, so code-scanning UIs can surface or suppress them; parse errors
//! become tool-execution notifications on the invocation object.

use crate::{AppReport, TOOL_INFORMATION_URI};
use std::collections::HashMap;
use wap_catalog::VulnClass;

#[derive(serde::Serialize)]
struct Sarif<'a> {
    #[serde(rename = "$schema")]
    schema: &'static str,
    version: &'static str,
    runs: Vec<Run<'a>>,
}

#[derive(serde::Serialize)]
struct Run<'a> {
    tool: Tool<'a>,
    invocations: Vec<Invocation>,
    results: Vec<SarifResult>,
}

#[derive(serde::Serialize)]
struct Tool<'a> {
    driver: Driver<'a>,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct Driver<'a> {
    name: &'a str,
    semantic_version: &'a str,
    information_uri: &'static str,
    rules: Vec<Rule>,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct Rule {
    id: String,
    name: String,
    short_description: Message,
    #[serde(skip_serializing_if = "Option::is_none")]
    properties: Option<RuleProperties>,
}

/// Extra rule metadata: the rule pack a lint rule came from. Absent for
/// built-in, weapon-declared, and class rules, so pack-less documents
/// are byte-identical to ones rendered before packs existed.
#[derive(serde::Serialize)]
struct RuleProperties {
    pack: String,
}

#[derive(serde::Serialize)]
struct Message {
    text: String,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct Invocation {
    execution_successful: bool,
    tool_execution_notifications: Vec<Notification>,
    /// Value-analysis summary; absent unless `--values` ran, so
    /// default documents keep their historic bytes.
    #[serde(skip_serializing_if = "Option::is_none")]
    properties: Option<InvocationProperties>,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct InvocationProperties {
    dynamic_edges_resolved: usize,
    dynamic_edges_unresolved: usize,
}

#[derive(serde::Serialize)]
struct Notification {
    level: &'static str,
    message: Message,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct SarifResult {
    rule_id: String,
    rule_index: usize,
    level: &'static str,
    message: Message,
    locations: Vec<Location>,
    #[serde(skip_serializing_if = "Vec::is_empty")]
    code_flows: Vec<CodeFlow>,
    #[serde(skip_serializing_if = "Option::is_none")]
    properties: Option<ResultProperties>,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct ResultProperties {
    predicted_false_positive: bool,
    votes: usize,
    sink: String,
    sources: Vec<String>,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct Location {
    physical_location: PhysicalLocation,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct PhysicalLocation {
    artifact_location: ArtifactLocation,
    region: Region,
}

#[derive(serde::Serialize)]
struct ArtifactLocation {
    uri: String,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct Region {
    start_line: u32,
    #[serde(skip_serializing_if = "Option::is_none")]
    char_offset: Option<u32>,
    #[serde(skip_serializing_if = "Option::is_none")]
    char_length: Option<u32>,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct CodeFlow {
    thread_flows: Vec<ThreadFlow>,
}

#[derive(serde::Serialize)]
struct ThreadFlow {
    locations: Vec<ThreadFlowLocation>,
}

#[derive(serde::Serialize)]
struct ThreadFlowLocation {
    location: FlowLocation,
}

#[derive(serde::Serialize)]
#[serde(rename_all = "camelCase")]
struct FlowLocation {
    physical_location: PhysicalLocation,
    message: Message,
}

fn physical(uri: &str, line: u32) -> PhysicalLocation {
    PhysicalLocation {
        artifact_location: ArtifactLocation {
            uri: uri.to_string(),
        },
        region: Region {
            start_line: line.max(1),
            char_offset: None,
            char_length: None,
        },
    }
}

/// A physical location with a byte-precise region, for lint findings.
fn physical_span(uri: &str, line: u32, span: wap_php::Span) -> PhysicalLocation {
    PhysicalLocation {
        artifact_location: ArtifactLocation {
            uri: uri.to_string(),
        },
        region: Region {
            start_line: line.max(1),
            char_offset: Some(span.start()),
            char_length: Some(span.len()),
        },
    }
}

/// Formats a report as a SARIF 2.1.0 document. `classes` is the active
/// catalog's class list (weapons included); classes that appear in
/// findings but not in `classes` still get a rule, so the document is
/// always self-consistent.
pub fn render_sarif(report: &AppReport, classes: &[VulnClass]) -> String {
    // stable rule table: catalog classes first, then any finding-only
    // stragglers, deduplicated by rule id and sorted for determinism
    let mut by_id: HashMap<String, (String, String, Option<String>)> = HashMap::new();
    for class in classes
        .iter()
        .chain(report.findings.iter().map(|f| &f.candidate.class))
    {
        by_id.entry(class.rule_id()).or_insert_with(|| {
            (class.acronym().to_string(), class.summary().to_string(), None)
        });
    }
    if report.lint_ran {
        for rule in &report.lint_rules {
            by_id
                .entry(rule.id.clone())
                .or_insert_with(|| (rule.id.clone(), rule.summary.clone(), rule.pack.clone()));
        }
        // findings decoded from an older cache may cite a rule the
        // current table no longer declares — keep the document
        // self-consistent instead of panicking on the index lookup
        for finding in &report.lint {
            by_id
                .entry(finding.rule_id.clone())
                .or_insert_with(|| (finding.rule_id.clone(), finding.message.clone(), None));
        }
    }
    let mut ids: Vec<String> = by_id.keys().cloned().collect();
    ids.sort();
    let rule_index: HashMap<&str, usize> = ids
        .iter()
        .enumerate()
        .map(|(i, id)| (id.as_str(), i))
        .collect();
    let rules: Vec<Rule> = ids
        .iter()
        .map(|id| {
            let (name, summary, pack) = &by_id[id];
            Rule {
                id: id.clone(),
                name: name.clone(),
                short_description: Message {
                    text: summary.clone(),
                },
                properties: pack.as_ref().map(|p| RuleProperties { pack: p.clone() }),
            }
        })
        .collect();

    let results: Vec<SarifResult> = report
        .findings
        .iter()
        .map(|f| {
            let uri = f.candidate.file.as_deref().unwrap_or("<input>");
            let rule_id = f.candidate.class.rule_id();
            let message = if f.is_real() {
                f.candidate.headline()
            } else {
                format!(
                    "{} — predicted false positive ({})",
                    f.candidate.headline(),
                    f.prediction.justification.join(", ")
                )
            };
            let code_flows = if f.candidate.path.is_empty() {
                Vec::new()
            } else {
                vec![CodeFlow {
                    thread_flows: vec![ThreadFlow {
                        locations: f
                            .candidate
                            .path
                            .iter()
                            .map(|step| ThreadFlowLocation {
                                location: FlowLocation {
                                    physical_location: physical(uri, step.line),
                                    message: Message {
                                        text: step.what.as_str().to_string(),
                                    },
                                },
                            })
                            .collect(),
                    }],
                }]
            };
            SarifResult {
                rule_index: rule_index[rule_id.as_str()],
                rule_id,
                level: if f.is_real() { "error" } else { "note" },
                message: Message { text: message },
                locations: vec![Location {
                    physical_location: physical(uri, f.candidate.line),
                }],
                code_flows,
                properties: Some(ResultProperties {
                    predicted_false_positive: !f.is_real(),
                    votes: f.prediction.votes,
                    sink: f.candidate.sink.clone(),
                    sources: f.candidate.sources.clone(),
                }),
            }
        })
        .collect();
    let mut results = results;
    if report.lint_ran {
        results.extend(report.lint.iter().map(|l| SarifResult {
            rule_index: rule_index[l.rule_id.as_str()],
            rule_id: l.rule_id.clone(),
            level: l.severity.as_str(),
            message: Message {
                text: l.message.clone(),
            },
            locations: vec![Location {
                physical_location: physical_span(&l.file, l.line, l.span),
            }],
            code_flows: Vec::new(),
            properties: None,
        }));
    }

    let notifications: Vec<Notification> = report
        .parse_errors
        .iter()
        .map(|(file, err)| Notification {
            level: "error",
            message: Message {
                text: format!("{file}: parse error: {err}"),
            },
        })
        .collect();

    let doc = Sarif {
        schema: "https://json.schemastore.org/sarif-2.1.0.json",
        version: "2.1.0",
        runs: vec![Run {
            tool: Tool {
                driver: Driver {
                    name: report.tool_name,
                    semantic_version: report.tool_version,
                    information_uri: TOOL_INFORMATION_URI,
                    rules,
                },
            },
            invocations: vec![Invocation {
                execution_successful: true,
                tool_execution_notifications: notifications,
                properties: report.values_ran.then(|| InvocationProperties {
                    dynamic_edges_resolved: report.dynamic_edges_resolved,
                    dynamic_edges_unresolved: report.dynamic_edges_unresolved,
                }),
            }],
            results,
        }],
    };
    serde_json::to_string_pretty(&doc).expect("sarif serializes")
}
