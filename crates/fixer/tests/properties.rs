//! Property-based tests for the code corrector.

use proptest::prelude::*;
use wap_catalog::Catalog;
use wap_fixer::{unified_diff, Corrector};
use wap_php::parse;
use wap_taint::analyze_program;

/// Generates a vulnerable file with `n` flows of mixed classes.
fn build_vulnerable(n: usize, variant: usize) -> String {
    let mut src = String::from("<?php\n");
    for i in 0..n {
        match (i + variant) % 5 {
            0 => src.push_str(&format!(
                "$a{i} = $_GET['k{i}'];\nmysql_query(\"SELECT * FROM t WHERE c = '$a{i}'\");\n"
            )),
            1 => src.push_str(&format!("echo 'v: ' . $_POST['k{i}'];\n")),
            2 => src.push_str(&format!("system('run ' . $_GET['k{i}']);\n")),
            3 => src.push_str(&format!("include 'mods/' . $_GET['k{i}'] . '.php';\n")),
            _ => src.push_str(&format!(
                "ldap_search($c{i}, $b{i}, '(u=' . $_REQUEST['k{i}'] . ')');\n"
            )),
        }
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any mix of flows: the fixed source re-parses, every finding got
    /// a fix, and re-analysis (with fix sanitizers registered) is silent.
    #[test]
    fn fixes_always_verify(n in 1usize..7, variant in 0usize..5) {
        let src = build_vulnerable(n, variant);
        let program = parse(&src).expect("generated source parses");
        let catalog = Catalog::wape();
        let found = analyze_program(&catalog, &program);
        prop_assert_eq!(found.len(), n, "seeded {} flows in:\n{}", n, src);

        let result = Corrector::new().fix_source(&src, &found);
        prop_assert_eq!(result.applied.len(), n);

        let fixed = parse(&result.fixed_source)
            .map_err(|e| TestCaseError::fail(format!("fixed source invalid: {e}\n{}", result.fixed_source)))?;
        let mut informed = catalog.clone();
        for (name, classes) in &result.sanitizers {
            informed.add_user_sanitizer(name, classes);
        }
        let still = analyze_program(&informed, &fixed);
        prop_assert!(still.is_empty(), "fix left findings:\n{}\n{:?}", result.fixed_source, still);
    }

    /// Fixing is idempotent: fixing an already-fixed file changes nothing.
    #[test]
    fn fixing_is_idempotent(n in 1usize..5, variant in 0usize..5) {
        let src = build_vulnerable(n, variant);
        let program = parse(&src).expect("parses");
        let catalog = Catalog::wape();
        let found = analyze_program(&catalog, &program);
        let once = Corrector::new().fix_source(&src, &found);
        let mut informed = catalog.clone();
        for (name, classes) in &once.sanitizers {
            informed.add_user_sanitizer(name, classes);
        }
        let refound = analyze_program(&informed, &parse(&once.fixed_source).expect("parses"));
        let twice = Corrector::new().fix_source(&once.fixed_source, &refound);
        prop_assert!(twice.applied.is_empty());
        prop_assert_eq!(&twice.fixed_source, &once.fixed_source);
    }

    /// The unified diff of a fix is consistent: every removed line exists
    /// in the input, every added line in the output.
    #[test]
    fn diff_lines_are_consistent(n in 1usize..5, variant in 0usize..5) {
        let src = build_vulnerable(n, variant);
        let program = parse(&src).expect("parses");
        let found = analyze_program(&Catalog::wape(), &program);
        let result = Corrector::new().fix_source(&src, &found);
        let d = unified_diff(&src, &result.fixed_source, 2);
        for line in d.lines() {
            if line.starts_with("@@") {
                continue;
            }
            if let Some(removed) = line.strip_prefix('-') {
                prop_assert!(src.lines().any(|l| l == removed), "bogus removal: {line}");
            } else if let Some(added) = line.strip_prefix('+') {
                prop_assert!(
                    result.fixed_source.lines().any(|l| l == added),
                    "bogus addition: {line}"
                );
            }
        }
    }
}
