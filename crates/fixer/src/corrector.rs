//! The code corrector: splices fixes into source files.
//!
//! Given a file's text and the real vulnerabilities confirmed by the
//! predictor, the corrector wraps the flow's *fix site* with the class's
//! fix — the tainted sink argument (the original WAP inserted fixes at the
//! sink line), or, when the analyzer located it, the tighter site where
//! the taint entered (a lone concatenation operand or the right-hand side
//! of the tainting assignment). Helper functions the fixes need are
//! inserted once, right after the first `<?php` tag. Fixed files always re-parse, and
//! re-analysis with the fix functions registered as sanitizers reports no
//! remaining findings for the fixed flows.

use crate::templates::{builtin_fix, Fix};
use std::collections::HashMap;
use wap_catalog::{FixTemplateSpec, VulnClass};
use wap_taint::Candidate;

/// One applied correction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFix {
    /// Vulnerability class corrected.
    pub class: VulnClass,
    /// Line of the sink where the fix was inserted.
    pub line: u32,
    /// Fix function name.
    pub fix_name: String,
    /// The sink that was protected.
    pub sink: String,
}

/// Result of correcting one source file.
#[derive(Debug, Clone, PartialEq)]
pub struct FixResult {
    /// The corrected source text.
    pub fixed_source: String,
    /// Corrections applied, in source order.
    pub applied: Vec<AppliedFix>,
    /// `(function name, classes)` pairs the analyzer should treat as
    /// sanitizers when re-checking the fixed file.
    pub sanitizers: Vec<(String, Vec<VulnClass>)>,
}

/// The code corrector. Holds the fix template for every class; weapons may
/// override or extend the assignment.
#[derive(Debug, Clone, Default)]
pub struct Corrector {
    overrides: HashMap<VulnClass, Fix>,
}

impl Corrector {
    /// A corrector with the built-in fix templates (WAPe defaults).
    pub fn new() -> Self {
        Corrector {
            overrides: HashMap::new(),
        }
    }

    /// Registers a weapon-provided fix for a class (the *fix creation*
    /// sub-module of §III-C).
    pub fn register(&mut self, class: VulnClass, name: &str, template: FixTemplateSpec) {
        self.overrides.insert(class, Fix::new(name, template));
    }

    /// The fix used for `class`.
    pub fn fix_for(&self, class: &VulnClass) -> Fix {
        self.overrides
            .get(class)
            .cloned()
            .unwrap_or_else(|| builtin_fix(class))
    }

    /// Applies fixes for `vulns` (candidates confirmed real) to `source`.
    ///
    /// Candidates whose `fix_site` does not lie within `source` (or that
    /// duplicate an already-fixed site) are skipped.
    pub fn fix_source(&self, source: &str, vulns: &[Candidate]) -> FixResult {
        // deduplicate by fix site; right-to-left so spans stay valid
        let mut sites: Vec<&Candidate> = Vec::new();
        for c in vulns {
            if (c.fix_site.end() as usize) <= source.len()
                && !c.fix_site.is_empty()
                && !sites
                    .iter()
                    .any(|s| s.fix_site == c.fix_site && s.class == c.class)
            {
                sites.push(c);
            }
        }
        sites.sort_by_key(|c| std::cmp::Reverse(c.fix_site.start()));

        let mut text = source.to_string();
        let mut applied = Vec::new();
        let mut helpers: HashMap<String, String> = HashMap::new();
        let mut sanitizers: HashMap<String, Vec<VulnClass>> = HashMap::new();

        for c in &sites {
            let fix = self.fix_for(&c.class);
            let start = c.fix_site.start() as usize;
            let end = c.fix_site.end() as usize;
            let inner = &source[start..end];
            let wrapped = fix.wrap(inner);
            text.replace_range(start..end, &wrapped);
            if let Some(h) = fix.helper_source() {
                helpers.insert(fix.name.clone(), h);
            }
            sanitizers
                .entry(fix.sanitizer_name())
                .or_default()
                .push(c.class.clone());
            applied.push(AppliedFix {
                class: c.class.clone(),
                line: c.line,
                fix_name: fix.name.clone(),
                sink: c.sink.clone(),
            });
        }
        applied.reverse(); // back to source order

        // insert helper functions right after the first <?php tag
        if !helpers.is_empty() {
            let mut block = String::new();
            let mut names: Vec<&String> = helpers.keys().collect();
            names.sort();
            for n in names {
                block.push_str(&helpers[n]);
            }
            text = insert_after_open_tag(&text, &block);
        }

        let mut sanitizers: Vec<(String, Vec<VulnClass>)> = sanitizers
            .into_iter()
            .map(|(n, mut cs)| {
                cs.sort();
                cs.dedup();
                (n, cs)
            })
            .collect();
        sanitizers.sort();

        FixResult {
            fixed_source: text,
            applied,
            sanitizers,
        }
    }
}

/// Inserts `block` after the first `<?php` tag (or prepends a new PHP
/// region when the file starts with HTML).
fn insert_after_open_tag(source: &str, block: &str) -> String {
    if let Some(pos) = source.find("<?php") {
        let insert_at = pos + "<?php".len();
        // keep the newline after the tag tidy
        format!(
            "{}\n{}{}",
            &source[..insert_at],
            block,
            source[insert_at..].trim_start_matches(' ')
        )
    } else {
        format!("<?php\n{block}?>{source}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_catalog::Catalog;
    use wap_php::parse;
    use wap_taint::analyze_program;

    /// Detect → fix → re-parse → re-analyze (with the fix registered as a
    /// sanitizer) → no findings for the class.
    fn fix_and_verify(src: &str, catalog: &Catalog) -> FixResult {
        let program = parse(src).expect("parse input");
        let found = analyze_program(catalog, &program);
        assert!(!found.is_empty(), "expected findings in:\n{src}");
        let corrector = Corrector::new();
        let result = corrector.fix_source(src, &found);
        // the fixed file must still be valid PHP
        let fixed = parse(&result.fixed_source).unwrap_or_else(|e| {
            panic!("fixed source does not parse: {e}\n{}", result.fixed_source)
        });
        // with the fix functions registered as sanitizers, re-analysis of
        // the fixed flows is silent
        let mut cat2 = catalog.clone();
        for (name, classes) in &result.sanitizers {
            cat2.add_user_sanitizer(name, classes);
        }
        let still = wap_taint::analyze_program(&cat2, &fixed);
        assert!(
            still.is_empty(),
            "fix did not remove findings:\n{}\n{still:?}",
            result.fixed_source
        );
        result
    }

    #[test]
    fn fixes_sqli_with_php_sanitizer() {
        let r = fix_and_verify(
            r#"<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = $id");
"#,
            &Catalog::wape(),
        );
        assert_eq!(r.applied.len(), 1);
        assert_eq!(r.applied[0].fix_name, "san_sqli");
        assert!(r.fixed_source.contains("mysql_real_escape_string("));
    }

    #[test]
    fn fixes_xss_echo() {
        let r = fix_and_verify(r#"<?php echo "Hi " . $_GET['name'];"#, &Catalog::wape());
        assert!(r.fixed_source.contains("htmlentities("));
    }

    #[test]
    fn fixes_ldapi_with_validation_helper() {
        let r = fix_and_verify(
            r#"<?php
$u = $_POST['user'];
ldap_search($conn, $base, "(uid=$u)");
"#,
            &Catalog::wape(),
        );
        assert_eq!(r.applied[0].fix_name, "san_ldapi");
        assert!(r.fixed_source.contains("function san_ldapi"));
        // the helper is inserted once, right after <?php
        assert_eq!(r.fixed_source.matches("function san_ldapi").count(), 1);
        let tag = r.fixed_source.find("<?php").unwrap();
        let helper = r.fixed_source.find("function san_ldapi").unwrap();
        let sink = r.fixed_source.find("ldap_search").unwrap();
        assert!(tag < helper && helper < sink);
    }

    #[test]
    fn fixes_hei_weapon_finding() {
        let mut cat = Catalog::wape();
        cat.add_weapon(wap_catalog::WeaponConfig::hei());
        let r = fix_and_verify(
            r#"<?php
header("Location: " . $_GET['to']);
"#,
            &cat,
        );
        assert_eq!(r.applied[0].fix_name, "san_hei");
        assert!(r.fixed_source.contains("san_hei("));
        assert!(r.fixed_source.contains("function san_hei"));
    }

    #[test]
    fn fixes_multiple_findings_in_one_file() {
        let r = fix_and_verify(
            r#"<?php
$a = $_GET['a'];
$b = $_POST['b'];
mysql_query("SELECT * FROM t WHERE a = '$a'");
echo $b;
system("run " . $_GET['cmd']);
"#,
            &Catalog::wape(),
        );
        assert_eq!(r.applied.len(), 3);
        // every sink got its fix (applied order follows fix sites, which
        // may precede the sink: taint is sanitized where it enters)
        let mut lines: Vec<u32> = r.applied.iter().map(|a| a.line).collect();
        lines.sort();
        assert_eq!(lines, vec![4, 5, 6]);
        // the echo fix lands at the assignment that tainted $b
        assert!(
            r.fixed_source.contains("$b = htmlentities($_POST['b']);"),
            "{}",
            r.fixed_source
        );
    }

    #[test]
    fn fix_inside_user_function() {
        let r = fix_and_verify(
            r#"<?php
function lookup($db, $name) {
    return mysql_query("SELECT * FROM u WHERE n = '$name'", $db);
}
lookup($c, $_GET['n']);
"#,
            &Catalog::wape(),
        );
        // the fix lands on the sink argument inside the function
        assert!(r
            .fixed_source
            .contains(r#"mysql_real_escape_string("SELECT * FROM u WHERE n = '$name'")"#));
    }

    #[test]
    fn weapon_override_changes_fix() {
        let mut c = Corrector::new();
        c.register(
            VulnClass::Sqli,
            "san_custom",
            FixTemplateSpec::UserSanitization {
                malicious: vec!["'".into()],
                neutralizer: "\\'".into(),
            },
        );
        let fix = c.fix_for(&VulnClass::Sqli);
        assert_eq!(fix.name, "san_custom");
        assert_eq!(c.fix_for(&VulnClass::Osci).name, "san_osci");
    }

    #[test]
    fn out_of_bounds_sites_are_skipped() {
        let src = "<?php $x = 1;";
        let program = parse(src).unwrap();
        let mut found =
            analyze_program(&Catalog::wape(), &parse("<?php echo $_GET['a'];").unwrap());
        // candidate from a different (longer) file: still within bounds of
        // THAT file but we hand it the wrong source text on purpose with a
        // huge span
        if let Some(c) = found.first_mut() {
            c.fix_site = wap_php::Span::new(1000, 2000, 1);
        }
        let r = Corrector::new().fix_source(src, &found);
        assert!(r.applied.is_empty());
        assert_eq!(r.fixed_source, src);
        let _ = program;
    }

    #[test]
    fn duplicate_sites_fixed_once() {
        let src = r#"<?php
$a = $_GET['a'];
mysql_query("Q $a");
"#;
        let program = parse(src).unwrap();
        let found = analyze_program(&Catalog::wape(), &program);
        let mut doubled = found.clone();
        doubled.extend(found.clone());
        let r = Corrector::new().fix_source(src, &doubled);
        assert_eq!(r.applied.len(), 1);
        assert_eq!(
            r.fixed_source.matches("mysql_real_escape_string").count(),
            1
        );
    }

    #[test]
    fn html_leading_file_gets_php_region() {
        let src = "<h1>Form</h1><?php include 'x/' . $_GET['p']; ?>";
        let program = parse(src).unwrap();
        let found = analyze_program(&Catalog::wape(), &program);
        assert!(!found.is_empty());
        let r = Corrector::new().fix_source(src, &found);
        assert!(parse(&r.fixed_source).is_ok(), "{}", r.fixed_source);
        assert!(r.fixed_source.contains("san_read("));
    }
}
