//! Fix templates (§III-C) and the built-in fix assignments per class.
//!
//! Three templates exist: *PHP sanitization function* (wrap the tainted
//! input in a known sanitizer), *user sanitization* (replace malicious
//! characters with a neutralizer), and *user validation* (check for
//! malicious characters and issue a message). Fixes are inserted at the
//! line of the sensitive sink, as in the original WAP.

use wap_catalog::{FixTemplateSpec, VulnClass};

/// A concrete fix: a name (`san_sqli`, `san_hei`, ...), the template it
/// instantiates, and optionally the helper function source it requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Fix function name inserted at the sink.
    pub name: String,
    /// The template this fix instantiates.
    pub template: FixTemplateSpec,
}

impl Fix {
    /// Creates a fix from a template.
    pub fn new(name: impl Into<String>, template: FixTemplateSpec) -> Self {
        Fix {
            name: name.into(),
            template,
        }
    }

    /// The PHP expression that wraps `inner` with this fix.
    pub fn wrap(&self, inner: &str) -> String {
        match &self.template {
            FixTemplateSpec::PhpSanitization { sanitizer } => format!("{sanitizer}({inner})"),
            FixTemplateSpec::UserSanitization { .. } | FixTemplateSpec::UserValidation { .. } => {
                format!("{}({inner})", self.name)
            }
        }
    }

    /// The helper function definition this fix needs inserted once per
    /// file, if any (PHP-sanitization fixes reuse a built-in function).
    pub fn helper_source(&self) -> Option<String> {
        match &self.template {
            FixTemplateSpec::PhpSanitization { .. } => None,
            FixTemplateSpec::UserSanitization {
                malicious,
                neutralizer,
            } => {
                let searches = malicious
                    .iter()
                    .map(|m| php_str(m))
                    .collect::<Vec<_>>()
                    .join(", ");
                Some(format!(
                    "function {name}($v) {{\n    return str_replace(array({searches}), {neut}, $v);\n}}\n",
                    name = self.name,
                    neut = php_str(neutralizer),
                ))
            }
            FixTemplateSpec::UserValidation { malicious } => {
                let searches = malicious
                    .iter()
                    .map(|m| php_str(m))
                    .collect::<Vec<_>>()
                    .join(", ");
                Some(format!(
                    concat!(
                        "function {name}($v) {{\n",
                        "    foreach (array({searches}) as $c) {{\n",
                        "        if (strpos($v, $c) !== false) {{\n",
                        "            echo 'WAP: malicious input blocked';\n",
                        "            return '';\n",
                        "        }}\n",
                        "    }}\n",
                        "    return $v;\n",
                        "}}\n"
                    ),
                    name = self.name,
                    searches = searches,
                ))
            }
        }
    }

    /// The sanitizer name the analyzer should recognize after this fix is
    /// applied (so fixed code stops being reported).
    pub fn sanitizer_name(&self) -> String {
        match &self.template {
            FixTemplateSpec::PhpSanitization { sanitizer } => sanitizer.clone(),
            _ => self.name.clone(),
        }
    }
}

/// Escapes a string into a single-quoted PHP literal.
fn php_str(s: &str) -> String {
    let mut out = String::from("'");
    for ch in s.chars() {
        match ch {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => {
                // keep control characters readable via double-quoted form
                return format!(
                    "\"{}\"",
                    s.replace('\\', "\\\\")
                        .replace('\r', "\\r")
                        .replace('\n', "\\n")
                        .replace('"', "\\\"")
                );
            }
            '\r' => {
                return format!(
                    "\"{}\"",
                    s.replace('\\', "\\\\")
                        .replace('\r', "\\r")
                        .replace('\n', "\\n")
                        .replace('"', "\\\"")
                );
            }
            other => out.push(other),
        }
    }
    out.push('\'');
    out
}

/// The built-in fix for a vulnerability class (the original WAP's `san_*`
/// fixes plus the ones §IV assigns to the new classes).
pub fn builtin_fix(class: &VulnClass) -> Fix {
    match class {
        VulnClass::Sqli => Fix::new(
            "san_sqli",
            FixTemplateSpec::PhpSanitization {
                sanitizer: "mysql_real_escape_string".into(),
            },
        ),
        VulnClass::XssReflected => Fix::new(
            "san_out",
            FixTemplateSpec::PhpSanitization {
                sanitizer: "htmlentities".into(),
            },
        ),
        VulnClass::XssStored => Fix::new(
            "san_wdata",
            FixTemplateSpec::PhpSanitization {
                sanitizer: "htmlentities".into(),
            },
        ),
        // CS reuses the write/read fixes, extended to check hyperlinks
        VulnClass::CommentSpam => Fix::new(
            "san_write",
            FixTemplateSpec::UserValidation {
                malicious: vec![
                    "http://".into(),
                    "https://".into(),
                    "<a ".into(),
                    "[url".into(),
                    "<script".into(),
                ],
            },
        ),
        VulnClass::Rfi | VulnClass::Lfi | VulnClass::DirTraversal | VulnClass::Scd => Fix::new(
            "san_read",
            FixTemplateSpec::UserValidation {
                malicious: vec!["../".into(), "..\\".into(), "://".into(), "\0".into()],
            },
        ),
        VulnClass::Osci => Fix::new(
            "san_osci",
            FixTemplateSpec::PhpSanitization {
                sanitizer: "escapeshellarg".into(),
            },
        ),
        VulnClass::Phpci => Fix::new(
            "san_eval",
            FixTemplateSpec::UserValidation {
                malicious: vec![";".into(), "`".into(), "system".into(), "exec".into()],
            },
        ),
        // §IV-B: LDAPI and XPathI use the user validation template
        VulnClass::LdapI => Fix::new(
            "san_ldapi",
            FixTemplateSpec::UserValidation {
                malicious: vec![
                    "*".into(),
                    "(".into(),
                    ")".into(),
                    "\\".into(),
                    "|".into(),
                    "&".into(),
                ],
            },
        ),
        VulnClass::XpathI => Fix::new(
            "san_xpathi",
            FixTemplateSpec::UserValidation {
                malicious: vec!["'".into(), "\"".into(), "[".into(), "]".into(), "=".into()],
            },
        ),
        // §IV-B: a fix created from scratch for SF — reject user-supplied
        // session tokens
        VulnClass::SessionFixation => Fix::new(
            "san_sf",
            FixTemplateSpec::UserValidation {
                malicious: vec!["PHPSESSID".into(), "=".into(), ";".into()],
            },
        ),
        // §IV-C weapons' fixes
        VulnClass::NoSqlI => Fix::new(
            "san_nosqli",
            FixTemplateSpec::PhpSanitization {
                sanitizer: "mysql_real_escape_string".into(),
            },
        ),
        VulnClass::HeaderI | VulnClass::EmailI => Fix::new(
            "san_hei",
            FixTemplateSpec::UserSanitization {
                malicious: vec!["\r".into(), "\n".into(), "%0a".into(), "%0d".into()],
                neutralizer: " ".into(),
            },
        ),
        VulnClass::Custom(name) if name == "WPSQLI" => Fix::new(
            "san_wpsqli",
            FixTemplateSpec::PhpSanitization {
                sanitizer: "esc_sql".into(),
            },
        ),
        VulnClass::Custom(name) => Fix::new(
            format!("san_{}", name.to_ascii_lowercase()),
            FixTemplateSpec::UserValidation {
                malicious: vec!["'".into(), "\"".into(), ";".into()],
            },
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn php_sanitization_wraps_directly() {
        let f = builtin_fix(&VulnClass::Sqli);
        assert_eq!(f.wrap("$id"), "mysql_real_escape_string($id)");
        assert!(f.helper_source().is_none());
        assert_eq!(f.sanitizer_name(), "mysql_real_escape_string");
    }

    #[test]
    fn user_sanitization_generates_helper() {
        let f = builtin_fix(&VulnClass::HeaderI);
        assert_eq!(f.name, "san_hei");
        assert_eq!(f.wrap("$to"), "san_hei($to)");
        let helper = f.helper_source().unwrap();
        assert!(helper.contains("function san_hei"));
        assert!(helper.contains("str_replace"));
        assert!(helper.contains("\\r") && helper.contains("\\n"));
        assert!(helper.contains("'%0a'"));
        assert_eq!(f.sanitizer_name(), "san_hei");
    }

    #[test]
    fn user_validation_generates_checker() {
        let f = builtin_fix(&VulnClass::LdapI);
        let helper = f.helper_source().unwrap();
        assert!(helper.contains("function san_ldapi"));
        assert!(helper.contains("strpos"));
        assert!(helper.contains("malicious input blocked"));
    }

    #[test]
    fn helpers_are_valid_php() {
        for class in [
            VulnClass::LdapI,
            VulnClass::XpathI,
            VulnClass::HeaderI,
            VulnClass::CommentSpam,
            VulnClass::SessionFixation,
            VulnClass::Rfi,
            VulnClass::Phpci,
            VulnClass::Custom("XMLI".into()),
        ] {
            let f = builtin_fix(&class);
            if let Some(h) = f.helper_source() {
                let src = format!("<?php\n{h}");
                wap_php::parse(&src)
                    .unwrap_or_else(|e| panic!("helper for {class} does not parse: {e}\n{src}"));
            }
        }
    }

    #[test]
    fn every_class_has_a_fix() {
        for c in VulnClass::original()
            .into_iter()
            .chain(VulnClass::new_in_wape())
        {
            let f = builtin_fix(&c);
            assert!(!f.name.is_empty());
            assert!(f.wrap("$x").contains("$x"));
        }
    }

    #[test]
    fn php_str_escaping() {
        assert_eq!(php_str("abc"), "'abc'");
        assert_eq!(php_str("it's"), "'it\\'s'");
        assert_eq!(php_str("\r"), "\"\\r\"");
        assert_eq!(php_str("\n"), "\"\\n\"");
    }
}
