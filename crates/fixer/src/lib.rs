//! # wap-fixer — the code corrector
//!
//! Implements WAP's third module (Medeiros et al., DSN 2016, Fig. 1):
//! once the predictor confirms a candidate as a real vulnerability, the
//! corrector inserts a **fix** at the line of the sensitive sink. Fixes
//! are generated from the three templates of §III-C — *PHP sanitization
//! function*, *user sanitization*, and *user validation* — and weapons can
//! register their own generated fixes (`san_nosqli`, `san_hei`,
//! `san_wpsqli`).
//!
//! ## Quick start
//!
//! ```
//! use wap_fixer::Corrector;
//! use wap_catalog::Catalog;
//! use wap_php::parse;
//! use wap_taint::analyze_program;
//!
//! let src = "<?php mysql_query(\"SELECT * FROM t WHERE id = $_GET[id]\");";
//! let found = analyze_program(&Catalog::wape(), &parse(src)?);
//! let result = Corrector::new().fix_source(src, &found);
//! assert!(result.fixed_source.contains("mysql_real_escape_string("));
//! # Ok::<(), wap_php::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod corrector;
pub mod diff;
pub mod templates;

pub use corrector::{AppliedFix, Corrector, FixResult};
pub use diff::unified_diff;
pub use templates::{builtin_fix, Fix};
