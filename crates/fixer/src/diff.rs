//! Minimal unified-diff rendering for corrected files, so reports can show
//! exactly what the corrector changed.

/// Renders a unified diff between `before` and `after` with `context`
/// lines of context. Line-based, LCS backed; adequate for fix-sized edits.
pub fn unified_diff(before: &str, after: &str, context: usize) -> String {
    let a: Vec<&str> = before.lines().collect();
    let b: Vec<&str> = after.lines().collect();
    let ops = diff_ops(&a, &b);

    // group ops into hunks with context
    let mut out = String::new();
    let mut i = 0usize;
    let total = ops.len();
    while i < total {
        if ops[i].0 == 0 {
            i += 1;
            continue;
        }
        // found a change; expand to a hunk
        let hunk_start = i.saturating_sub(context);
        let mut j = i;
        let mut quiet = 0usize;
        while j < total && quiet <= context * 2 {
            if ops[j].0 == 0 {
                quiet += 1;
            } else {
                quiet = 0;
            }
            j += 1;
        }
        let hunk_end = j.min(total);
        // compute line numbers at hunk start
        let mut a_line = 1usize;
        let mut b_line = 1usize;
        for op in &ops[..hunk_start] {
            match op.0 {
                0 => {
                    a_line += 1;
                    b_line += 1;
                }
                1 => a_line += 1,
                _ => b_line += 1,
            }
        }
        let a_count = ops[hunk_start..hunk_end]
            .iter()
            .filter(|o| o.0 != 2)
            .count();
        let b_count = ops[hunk_start..hunk_end]
            .iter()
            .filter(|o| o.0 != 1)
            .count();
        out.push_str(&format!("@@ -{a_line},{a_count} +{b_line},{b_count} @@\n"));
        for (kind, text) in &ops[hunk_start..hunk_end] {
            out.push(match kind {
                0 => ' ',
                1 => '-',
                _ => '+',
            });
            out.push_str(text);
            out.push('\n');
        }
        i = hunk_end;
    }
    out
}

/// Produces `(kind, line)` ops: 0 = keep, 1 = delete (from a), 2 = add
/// (from b), via LCS dynamic programming.
fn diff_ops<'a>(a: &[&'a str], b: &[&'a str]) -> Vec<(u8, &'a str)> {
    let n = a.len();
    let m = b.len();
    // LCS table (n+1) x (m+1); fine for file-sized inputs
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] = if a[i] == b[j] {
                lcs[i + 1][j + 1] + 1
            } else {
                lcs[i + 1][j].max(lcs[i][j + 1])
            };
        }
    }
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push((0, a[i]));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            out.push((1, a[i]));
            i += 1;
        } else {
            out.push((2, b[j]));
            j += 1;
        }
    }
    while i < n {
        out.push((1, a[i]));
        i += 1;
    }
    while j < m {
        out.push((2, b[j]));
        j += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_files_no_hunks() {
        assert_eq!(unified_diff("a\nb\nc\n", "a\nb\nc\n", 3), "");
    }

    #[test]
    fn single_line_change() {
        let d = unified_diff("a\nb\nc\n", "a\nX\nc\n", 1);
        assert!(d.contains("-b"));
        assert!(d.contains("+X"));
        assert!(d.contains("@@ -1,3 +1,3 @@"));
    }

    #[test]
    fn insertion_only() {
        let d = unified_diff("a\nc\n", "a\nb\nc\n", 0);
        assert!(d.contains("+b"));
        assert!(!d.lines().any(|l| l.starts_with('-')), "{d}");
    }

    #[test]
    fn fix_shaped_diff() {
        let before = "<?php\n$id = $_GET['id'];\nmysql_query(\"Q $id\");\n";
        let after =
            "<?php\n$id = $_GET['id'];\nmysql_query(mysql_real_escape_string(\"Q $id\"));\n";
        let d = unified_diff(before, after, 1);
        assert!(d.contains("-mysql_query(\"Q $id\");"));
        assert!(d.contains("+mysql_query(mysql_real_escape_string(\"Q $id\"));"));
    }

    #[test]
    fn distant_changes_make_separate_hunks() {
        let before: String = (0..40).map(|i| format!("line{i}\n")).collect();
        let mut after_lines: Vec<String> = (0..40).map(|i| format!("line{i}")).collect();
        after_lines[2] = "changed-top".into();
        after_lines[37] = "changed-bottom".into();
        let after = after_lines.join("\n") + "\n";
        let d = unified_diff(&before, &after, 2);
        assert_eq!(d.matches("@@").count() / 2 * 2, d.matches("@@").count());
        assert!(d.matches("@@ -").count() >= 2, "{d}");
    }
}
