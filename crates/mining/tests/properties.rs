//! Property-based tests for the data-mining layer.

use proptest::prelude::*;
use wap_mining::attributes::{project_to_original, symptom_index, wape_feature_count};
use wap_mining::classifiers::ClassifierKind;
use wap_mining::metrics::{cross_validate, ConfusionMatrix, Metrics};
use wap_mining::Dataset;

fn vector_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(prop::bool::ANY.prop_map(|b| if b { 1.0 } else { 0.0 }), 60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// All metric values are finite and inside [−1, 1] for rates and
    /// [0, 1] for probabilities, for any confusion matrix.
    #[test]
    fn metrics_are_bounded(tp in 0usize..500, fp in 0usize..500, fn_ in 0usize..500, tn in 0usize..500) {
        let m = Metrics::from_confusion(&ConfusionMatrix { tp, fp, fn_, tn });
        for v in [m.tpp, m.pfp, m.prfp, m.pd, m.ppd, m.acc, m.pr, m.jacc] {
            prop_assert!(v.is_finite());
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        prop_assert!((-1.0..=1.0).contains(&m.inform));
        // the paper's identity: inform = tpp + pd − 1 = tpp − pfp
        prop_assert!((m.inform - (m.tpp + m.pd - 1.0)).abs() < 1e-9);
        if tn + fp > 0 {
            prop_assert!((m.inform - (m.tpp - m.pfp)).abs() < 1e-9);
        }
    }

    /// Projection to the original scheme is monotone: turning features ON
    /// never turns original attributes OFF.
    #[test]
    fn projection_is_monotone(base in vector_strategy(), extra in 0usize..60) {
        let mut more = base.clone();
        more[extra] = 1.0;
        let pa = project_to_original(&base);
        let pb = project_to_original(&more);
        for (a, b) in pa.iter().zip(&pb) {
            prop_assert!(b >= a, "projection lost an attribute");
        }
    }

    /// Projection output is always 15-dim binary.
    #[test]
    fn projection_shape(v in vector_strategy()) {
        let p = project_to_original(&v);
        prop_assert_eq!(p.len(), 15);
        prop_assert!(p.iter().all(|x| *x == 0.0 || *x == 1.0));
    }

    /// Every classifier is deterministic given a seed and never panics on
    /// arbitrary binary vectors after training on a real dataset.
    #[test]
    fn classifiers_total_on_arbitrary_inputs(v in vector_strategy(), kind_idx in 0usize..8) {
        let kind = ClassifierKind::all()[kind_idx];
        let d = Dataset::wape(7);
        let mut c = kind.build(7);
        c.train(&d.x, &d.y);
        let a = c.predict(&v);
        let b = c.predict(&v);
        prop_assert_eq!(a, b);
    }

    /// Cross-validation confusion counts always sum to the dataset size.
    #[test]
    fn cv_covers_dataset(folds in 2usize..8, seed in 0u64..50) {
        let d = Dataset::original(seed);
        let cm = cross_validate(ClassifierKind::OneR, &d.x, &d.y, folds, seed);
        prop_assert_eq!(cm.total(), d.len());
    }

    /// Dataset generation is stable in shape for any seed.
    #[test]
    fn dataset_shape_for_any_seed(seed in 0u64..200) {
        let d = Dataset::wape(seed);
        prop_assert_eq!(d.len(), 256);
        prop_assert_eq!(d.positives(), 128);
        prop_assert!(d.x.iter().all(|v| v.len() == wape_feature_count()));
        let o = Dataset::original(seed);
        prop_assert_eq!(o.len(), 76);
        prop_assert_eq!(o.positives(), 32);
    }
}

#[test]
fn symptom_indices_are_dense_and_stable() {
    for (i, s) in wap_mining::symptoms().iter().enumerate() {
        assert_eq!(symptom_index(s.name), Some(i));
    }
}
