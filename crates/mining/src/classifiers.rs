//! Machine-learning classifiers, implemented from scratch (the paper used
//! WEKA; this is our substitute substrate).
//!
//! The positive class ("Yes") is **false positive**, matching the paper's
//! confusion-matrix convention (Table III): the predictor's job is to
//! recognize candidates that are *not* real vulnerabilities.
//!
//! Implemented: Logistic Regression, linear SVM (Pegasos), CART decision
//! tree, Random Tree, Random Forest, Bernoulli Naive Bayes, and k-NN —
//! enough to re-run the paper's "re-evaluation of machine learning
//! classifiers" and select a top 3.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A trainable binary classifier over fixed-length feature vectors.
///
/// `Send + Sync` so a trained committee can be shared by reference across
/// the analysis runtime's workers (prediction is `&self` and pure).
pub trait Classifier: Send + Sync {
    /// Short display name (as in Table II headers).
    fn name(&self) -> &'static str;
    /// Fits the model. `y[i] == true` means instance `i` is a false
    /// positive (the "Yes" class).
    fn train(&mut self, x: &[Vec<f64>], y: &[bool]);
    /// Predicts whether an instance is a false positive.
    fn predict(&self, x: &[f64]) -> bool;
}

/// The classifier families available for evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// Support Vector Machine (linear, Pegasos-trained).
    Svm,
    /// Logistic Regression (gradient descent, L2).
    LogisticRegression,
    /// Random Forest (bagged random trees, majority vote).
    RandomForest,
    /// A single tree split on random feature subsets (original WAP's
    /// third classifier).
    RandomTree,
    /// Plain CART decision tree.
    DecisionTree,
    /// Bernoulli Naive Bayes.
    NaiveBayes,
    /// k-nearest-neighbours (k = 3, Hamming distance).
    Knn,
    /// OneR rule induction (single best attribute; the paper's "induction
    /// rules" baseline).
    OneR,
}

impl ClassifierKind {
    /// All kinds, in the order they are reported by the evaluation sweep.
    pub fn all() -> [ClassifierKind; 8] {
        [
            ClassifierKind::Svm,
            ClassifierKind::LogisticRegression,
            ClassifierKind::RandomForest,
            ClassifierKind::RandomTree,
            ClassifierKind::DecisionTree,
            ClassifierKind::NaiveBayes,
            ClassifierKind::Knn,
            ClassifierKind::OneR,
        ]
    }

    /// The paper's top 3 for the new data set (Table II).
    pub fn top3() -> [ClassifierKind; 3] {
        [
            ClassifierKind::Svm,
            ClassifierKind::LogisticRegression,
            ClassifierKind::RandomForest,
        ]
    }

    /// Builds an untrained classifier with a deterministic seed.
    pub fn build(&self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::Svm => Box::new(LinearSvm::new(seed)),
            ClassifierKind::LogisticRegression => Box::new(LogisticRegression::new()),
            ClassifierKind::RandomForest => Box::new(RandomForest::new(seed)),
            ClassifierKind::RandomTree => Box::new(RandomTree::new(seed)),
            ClassifierKind::DecisionTree => Box::new(DecisionTree::new()),
            ClassifierKind::NaiveBayes => Box::new(NaiveBayes::new()),
            ClassifierKind::Knn => Box::new(Knn::new(3)),
            ClassifierKind::OneR => Box::new(OneR::new()),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::Svm => "SVM",
            ClassifierKind::LogisticRegression => "Logistic Regression",
            ClassifierKind::RandomForest => "Random Forest",
            ClassifierKind::RandomTree => "Random Tree",
            ClassifierKind::DecisionTree => "Decision Tree",
            ClassifierKind::NaiveBayes => "Naive Bayes",
            ClassifierKind::Knn => "K-NN",
            ClassifierKind::OneR => "OneR",
        }
    }
}

// ---- logistic regression ----

/// Logistic regression trained with full-batch gradient descent + L2.
pub struct LogisticRegression {
    w: Vec<f64>,
    b: f64,
    epochs: usize,
    lr: f64,
    l2: f64,
}

impl LogisticRegression {
    /// New untrained model with default hyperparameters.
    pub fn new() -> Self {
        LogisticRegression {
            w: Vec::new(),
            b: 0.0,
            epochs: 400,
            lr: 0.5,
            l2: 1e-3,
        }
    }
}

impl Default for LogisticRegression {
    fn default() -> Self {
        Self::new()
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &'static str {
        "Logistic Regression"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let d = x.first().map(Vec::len).unwrap_or(0);
        let n = x.len().max(1) as f64;
        self.w = vec![0.0; d];
        self.b = 0.0;
        for _ in 0..self.epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (xi, yi) in x.iter().zip(y) {
                let z = self.b + xi.iter().zip(&self.w).map(|(a, b)| a * b).sum::<f64>();
                let err = sigmoid(z) - if *yi { 1.0 } else { 0.0 };
                for (g, v) in gw.iter_mut().zip(xi) {
                    *g += err * v;
                }
                gb += err;
            }
            for (w, g) in self.w.iter_mut().zip(&gw) {
                *w -= self.lr * (g / n + self.l2 * *w);
            }
            self.b -= self.lr * gb / n;
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        let z = self.b + x.iter().zip(&self.w).map(|(a, b)| a * b).sum::<f64>();
        sigmoid(z) >= 0.5
    }
}

// ---- linear SVM (Pegasos) ----

/// Linear SVM trained with the Pegasos stochastic sub-gradient method.
pub struct LinearSvm {
    w: Vec<f64>,
    b: f64,
    lambda: f64,
    epochs: usize,
    seed: u64,
}

impl LinearSvm {
    /// New untrained model; `seed` controls the sampling order.
    pub fn new(seed: u64) -> Self {
        LinearSvm {
            w: Vec::new(),
            b: 0.0,
            lambda: 1e-3,
            epochs: 80,
            seed,
        }
    }
}

impl Classifier for LinearSvm {
    fn name(&self) -> &'static str {
        "SVM"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let d = x.first().map(Vec::len).unwrap_or(0);
        self.w = vec![0.0; d];
        self.b = 0.0;
        if x.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..x.len()).collect();
        let mut t = 1.0f64;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                let eta = 1.0 / (self.lambda * t);
                let yi = if y[i] { 1.0 } else { -1.0 };
                let margin =
                    yi * (self.b + x[i].iter().zip(&self.w).map(|(a, b)| a * b).sum::<f64>());
                for w in self.w.iter_mut() {
                    *w *= 1.0 - eta * self.lambda;
                }
                if margin < 1.0 {
                    for (w, v) in self.w.iter_mut().zip(&x[i]) {
                        *w += eta * yi * v;
                    }
                    self.b += eta * yi;
                }
                t += 1.0;
            }
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        self.b + x.iter().zip(&self.w).map(|(a, b)| a * b).sum::<f64>() >= 0.0
    }
}

// ---- decision trees ----

#[derive(Debug, Clone)]
enum Node {
    Leaf(bool),
    Split {
        feature: usize,
        left: Box<Node>,
        right: Box<Node>,
    },
}

fn gini(pos: f64, total: f64) -> f64 {
    if total == 0.0 {
        return 0.0;
    }
    let p = pos / total;
    2.0 * p * (1.0 - p)
}

/// Builds a CART tree on binary features. `feature_pool` restricts the
/// candidate features per node (random trees); `None` considers all.
fn build_tree(
    x: &[Vec<f64>],
    y: &[bool],
    idx: &[usize],
    depth: usize,
    max_depth: usize,
    mut rng: Option<&mut StdRng>,
    subset: usize,
) -> Node {
    let pos = idx.iter().filter(|&&i| y[i]).count();
    if pos == 0 {
        return Node::Leaf(false);
    }
    if pos == idx.len() {
        return Node::Leaf(true);
    }
    let majority = pos * 2 >= idx.len();
    if depth >= max_depth || idx.len() < 2 {
        return Node::Leaf(majority);
    }
    let d = x[0].len();
    let candidates: Vec<usize> = match rng.as_deref_mut() {
        Some(rng) => {
            let mut fs: Vec<usize> = (0..d).collect();
            fs.shuffle(rng);
            fs.truncate(subset.max(1));
            fs
        }
        None => (0..d).collect(),
    };
    let total = idx.len() as f64;
    let base = gini(pos as f64, total);
    let mut best: Option<(usize, f64)> = None;
    for f in candidates {
        let (mut lp, mut lt, mut rp, mut rt) = (0.0, 0.0, 0.0, 0.0);
        for &i in idx {
            if x[i][f] > 0.5 {
                rt += 1.0;
                if y[i] {
                    rp += 1.0;
                }
            } else {
                lt += 1.0;
                if y[i] {
                    lp += 1.0;
                }
            }
        }
        if lt == 0.0 || rt == 0.0 {
            continue;
        }
        let g = (lt / total) * gini(lp, lt) + (rt / total) * gini(rp, rt);
        let gain = base - g;
        if gain > 1e-12 && best.map(|(_, bg)| gain > bg).unwrap_or(true) {
            best = Some((f, gain));
        }
    }
    let Some((f, _)) = best else {
        return Node::Leaf(majority);
    };
    let left_idx: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] <= 0.5).collect();
    let right_idx: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] > 0.5).collect();
    // NOTE: rng cannot be reborrowed twice mutably through Option; split
    // deterministically by deriving child RNGs when present.
    match rng {
        Some(rng) => {
            let mut left_rng = StdRng::seed_from_u64(rng.gen::<u64>());
            let mut right_rng = StdRng::seed_from_u64(rng.gen::<u64>());
            Node::Split {
                feature: f,
                left: Box::new(build_tree(
                    x,
                    y,
                    &left_idx,
                    depth + 1,
                    max_depth,
                    Some(&mut left_rng),
                    subset,
                )),
                right: Box::new(build_tree(
                    x,
                    y,
                    &right_idx,
                    depth + 1,
                    max_depth,
                    Some(&mut right_rng),
                    subset,
                )),
            }
        }
        None => Node::Split {
            feature: f,
            left: Box::new(build_tree(
                x,
                y,
                &left_idx,
                depth + 1,
                max_depth,
                None,
                subset,
            )),
            right: Box::new(build_tree(
                x,
                y,
                &right_idx,
                depth + 1,
                max_depth,
                None,
                subset,
            )),
        },
    }
}

fn tree_predict(node: &Node, x: &[f64]) -> bool {
    match node {
        Node::Leaf(v) => *v,
        Node::Split {
            feature,
            left,
            right,
        } => {
            if x.get(*feature).copied().unwrap_or(0.0) > 0.5 {
                tree_predict(right, x)
            } else {
                tree_predict(left, x)
            }
        }
    }
}

/// Plain CART decision tree (gini, depth-limited).
pub struct DecisionTree {
    root: Option<Node>,
    max_depth: usize,
}

impl DecisionTree {
    /// New untrained tree.
    pub fn new() -> Self {
        DecisionTree {
            root: None,
            max_depth: 16,
        }
    }
}

impl Default for DecisionTree {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &'static str {
        "Decision Tree"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let idx: Vec<usize> = (0..x.len()).collect();
        self.root = Some(build_tree(x, y, &idx, 0, self.max_depth, None, usize::MAX));
    }

    fn predict(&self, x: &[f64]) -> bool {
        self.root
            .as_ref()
            .map(|r| tree_predict(r, x))
            .unwrap_or(false)
    }
}

/// A single tree choosing among a random feature subset at each node
/// (WEKA's RandomTree, used by the original WAP).
pub struct RandomTree {
    root: Option<Node>,
    max_depth: usize,
    seed: u64,
}

impl RandomTree {
    /// New untrained random tree.
    pub fn new(seed: u64) -> Self {
        RandomTree {
            root: None,
            max_depth: 16,
            seed,
        }
    }
}

impl Classifier for RandomTree {
    fn name(&self) -> &'static str {
        "Random Tree"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let idx: Vec<usize> = (0..x.len()).collect();
        let d = x.first().map(Vec::len).unwrap_or(1);
        let subset = (d as f64).sqrt().ceil() as usize + 1;
        let mut rng = StdRng::seed_from_u64(self.seed);
        self.root = Some(build_tree(
            x,
            y,
            &idx,
            0,
            self.max_depth,
            Some(&mut rng),
            subset,
        ));
    }

    fn predict(&self, x: &[f64]) -> bool {
        self.root
            .as_ref()
            .map(|r| tree_predict(r, x))
            .unwrap_or(false)
    }
}

/// Random Forest: bootstrap-bagged random trees with majority voting.
pub struct RandomForest {
    trees: Vec<Node>,
    n_trees: usize,
    max_depth: usize,
    seed: u64,
}

impl RandomForest {
    /// New untrained forest.
    pub fn new(seed: u64) -> Self {
        RandomForest {
            trees: Vec::new(),
            n_trees: 60,
            max_depth: 12,
            seed,
        }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &'static str {
        "Random Forest"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let d = x[0].len();
        let subset = (d as f64).sqrt().ceil() as usize + 1;
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.n_trees {
            let idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
            let mut tree_rng = StdRng::seed_from_u64(rng.gen::<u64>());
            self.trees.push(build_tree(
                x,
                y,
                &idx,
                0,
                self.max_depth,
                Some(&mut tree_rng),
                subset,
            ));
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        if self.trees.is_empty() {
            return false;
        }
        let votes = self.trees.iter().filter(|t| tree_predict(t, x)).count();
        votes * 2 > self.trees.len()
    }
}

// ---- naive bayes ----

/// Bernoulli Naive Bayes with Laplace smoothing.
pub struct NaiveBayes {
    log_prior: [f64; 2],
    log_like: Vec<[[f64; 2]; 2]>, // [feature][class][value]
}

impl NaiveBayes {
    /// New untrained model.
    pub fn new() -> Self {
        NaiveBayes {
            log_prior: [0.0; 2],
            log_like: Vec::new(),
        }
    }
}

impl Default for NaiveBayes {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for NaiveBayes {
    fn name(&self) -> &'static str {
        "Naive Bayes"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let d = x.first().map(Vec::len).unwrap_or(0);
        let n = x.len() as f64;
        let pos = y.iter().filter(|v| **v).count() as f64;
        self.log_prior = [
            ((n - pos + 1.0) / (n + 2.0)).ln(),
            ((pos + 1.0) / (n + 2.0)).ln(),
        ];
        self.log_like = vec![[[0.0; 2]; 2]; d];
        for f in 0..d {
            let mut counts = [[1.0f64; 2]; 2]; // laplace
            for (xi, yi) in x.iter().zip(y) {
                let c = usize::from(*yi);
                let v = usize::from(xi[f] > 0.5);
                counts[c][v] += 1.0;
            }
            for (c, cnt) in counts.iter().enumerate() {
                let total = cnt[0] + cnt[1];
                self.log_like[f][c] = [(cnt[0] / total).ln(), (cnt[1] / total).ln()];
            }
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        let mut score = [self.log_prior[0], self.log_prior[1]];
        for (f, ll) in self.log_like.iter().enumerate() {
            let v = usize::from(x.get(f).copied().unwrap_or(0.0) > 0.5);
            score[0] += ll[0][v];
            score[1] += ll[1][v];
        }
        score[1] >= score[0]
    }
}

// ---- k-NN ----

/// k-nearest-neighbours with Hamming distance on binary features.
pub struct Knn {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<bool>,
}

impl Knn {
    /// New k-NN model.
    pub fn new(k: usize) -> Self {
        Knn {
            k: k.max(1),
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl Classifier for Knn {
    fn name(&self) -> &'static str {
        "K-NN"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        self.x = x.to_vec();
        self.y = y.to_vec();
    }

    fn predict(&self, x: &[f64]) -> bool {
        if self.x.is_empty() {
            return false;
        }
        let mut dist: Vec<(usize, usize)> = self
            .x
            .iter()
            .enumerate()
            .map(|(i, xi)| {
                let d = xi
                    .iter()
                    .zip(x)
                    .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
                    .count();
                (d, i)
            })
            .collect();
        dist.sort();
        let k = self.k.min(dist.len());
        let votes = dist[..k].iter().filter(|(_, i)| self.y[*i]).count();
        votes * 2 > k
    }
}

// ---- OneR ----

/// OneR: pick the single attribute whose one-level rule has the lowest
/// training error. A classic induction-rule baseline (Holte 1993).
pub struct OneR {
    feature: usize,
    when_set: bool,
    when_unset: bool,
}

impl OneR {
    /// New untrained rule.
    pub fn new() -> Self {
        OneR {
            feature: 0,
            when_set: false,
            when_unset: false,
        }
    }
}

impl Default for OneR {
    fn default() -> Self {
        Self::new()
    }
}

impl Classifier for OneR {
    fn name(&self) -> &'static str {
        "OneR"
    }

    fn train(&mut self, x: &[Vec<f64>], y: &[bool]) {
        let d = x.first().map(Vec::len).unwrap_or(0);
        let majority = y.iter().filter(|v| **v).count() * 2 >= y.len().max(1);
        self.feature = 0;
        self.when_set = majority;
        self.when_unset = majority;
        let mut best_err = usize::MAX;
        for f in 0..d {
            // majority label on each side of the split
            let mut set_pos = 0usize;
            let mut set_tot = 0usize;
            let mut unset_pos = 0usize;
            let mut unset_tot = 0usize;
            for (xi, yi) in x.iter().zip(y) {
                if xi[f] > 0.5 {
                    set_tot += 1;
                    set_pos += usize::from(*yi);
                } else {
                    unset_tot += 1;
                    unset_pos += usize::from(*yi);
                }
            }
            let when_set = set_pos * 2 >= set_tot.max(1);
            let when_unset = unset_pos * 2 >= unset_tot.max(1);
            let err = (if when_set { set_tot - set_pos } else { set_pos })
                + (if when_unset {
                    unset_tot - unset_pos
                } else {
                    unset_pos
                });
            if err < best_err {
                best_err = err;
                self.feature = f;
                self.when_set = when_set;
                self.when_unset = when_unset;
            }
        }
    }

    fn predict(&self, x: &[f64]) -> bool {
        if x.get(self.feature).copied().unwrap_or(0.0) > 0.5 {
            self.when_set
        } else {
            self.when_unset
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable toy set: feature 0 decides the class.
    fn toy() -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let fp = i % 2 == 0;
            let noise = if i % 7 == 0 { 1.0 } else { 0.0 };
            x.push(vec![if fp { 1.0 } else { 0.0 }, noise, 0.0]);
            y.push(fp);
        }
        (x, y)
    }

    fn check_learns(kind: ClassifierKind) {
        let (x, y) = toy();
        let mut c = kind.build(42);
        c.train(&x, &y);
        let mut correct = 0;
        for (xi, yi) in x.iter().zip(&y) {
            if c.predict(xi) == *yi {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / x.len() as f64 >= 0.95,
            "{} got {}/{}",
            c.name(),
            correct,
            x.len()
        );
    }

    #[test]
    fn all_classifiers_learn_separable_data() {
        for kind in ClassifierKind::all() {
            check_learns(kind);
        }
    }

    #[test]
    fn deterministic_with_same_seed() {
        let (x, y) = toy();
        for kind in ClassifierKind::all() {
            let mut a = kind.build(7);
            let mut b = kind.build(7);
            a.train(&x, &y);
            b.train(&x, &y);
            for xi in &x {
                assert_eq!(
                    a.predict(xi),
                    b.predict(xi),
                    "{} not deterministic",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn handles_empty_training_set() {
        for kind in ClassifierKind::all() {
            let mut c = kind.build(1);
            c.train(&[], &[]);
            // must not panic
            let _ = c.predict(&[0.0, 1.0]);
        }
    }

    #[test]
    fn handles_single_class_data() {
        let x = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let y = vec![true, true, true];
        for kind in ClassifierKind::all() {
            let mut c = kind.build(1);
            c.train(&x, &y);
            assert!(
                c.predict(&[1.0, 0.0]),
                "{} should predict the only class",
                c.name()
            );
        }
    }

    #[test]
    fn forest_beats_noise_on_xor() {
        // XOR is not linearly separable: trees get it, linear models don't
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for _ in 0..10 {
                    x.push(vec![a as f64, b as f64]);
                    y.push((a ^ b) == 1);
                }
            }
        }
        let mut forest = RandomForest::new(3);
        forest.train(&x, &y);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(xi, yi)| forest.predict(xi) == **yi)
            .count() as f64
            / x.len() as f64;
        assert!(acc > 0.95, "forest only reached {acc}");
    }

    #[test]
    fn top3_matches_paper() {
        let names: Vec<_> = ClassifierKind::top3().iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["SVM", "Logistic Regression", "Random Forest"]);
    }
}
