//! The false positive predictor: a committee of the top-3 classifiers.
//!
//! WAP "uses a combination of 3 classifiers to make the prediction" (§II).
//! The new top 3 selected in §III-B.1 is SVM, Logistic Regression, and
//! Random Forest (replacing the original Random Tree). A candidate is
//! predicted to be a false positive when a majority of the committee says
//! so; predicted false positives are *justified* by the symptoms found.

use crate::classifiers::{Classifier, ClassifierKind};
use crate::dataset::Dataset;
use crate::symptoms::FeatureVector;

/// Which predictor generation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorGeneration {
    /// Original WAP v2.1: (SVM, Logistic Regression, Random Tree) trained
    /// on the 76-instance / 16-attribute data set.
    WapV21,
    /// WAPe: (SVM, Logistic Regression, Random Forest) trained on the
    /// 256-instance / 61-attribute data set.
    Wape,
}

/// Verdict for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// True when the committee classifies the candidate as a false
    /// positive.
    pub is_false_positive: bool,
    /// Committee votes for "false positive", out of 3.
    pub votes: usize,
    /// Symptoms that justify the decision (present in the candidate).
    pub justification: Vec<&'static str>,
}

/// The trained committee.
pub struct FalsePositivePredictor {
    members: Vec<Box<dyn Classifier>>,
    generation: PredictorGeneration,
}

impl std::fmt::Debug for FalsePositivePredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FalsePositivePredictor")
            .field("generation", &self.generation)
            .field("members", &self.members.len())
            .finish()
    }
}

impl FalsePositivePredictor {
    /// Trains the committee for a generation with the matching data set.
    pub fn train(generation: PredictorGeneration, seed: u64) -> Self {
        let (kinds, dataset): (Vec<ClassifierKind>, Dataset) = match generation {
            PredictorGeneration::WapV21 => (
                vec![
                    ClassifierKind::Svm,
                    ClassifierKind::LogisticRegression,
                    ClassifierKind::RandomTree,
                ],
                Dataset::original(seed),
            ),
            PredictorGeneration::Wape => (ClassifierKind::top3().to_vec(), Dataset::wape(seed)),
        };
        let mut members = Vec::new();
        for (i, k) in kinds.into_iter().enumerate() {
            let mut c = k.build(seed.wrapping_add(i as u64));
            c.train(&dataset.x, &dataset.y);
            members.push(c);
        }
        FalsePositivePredictor {
            members,
            generation,
        }
    }

    /// Trains the committee on a caller-provided data set (used by the
    /// ablation experiments).
    pub fn train_on(kinds: &[ClassifierKind], dataset: &Dataset, seed: u64) -> Self {
        let mut members = Vec::new();
        for (i, k) in kinds.iter().enumerate() {
            let mut c = k.build(seed.wrapping_add(i as u64));
            c.train(&dataset.x, &dataset.y);
            members.push(c);
        }
        FalsePositivePredictor {
            members,
            generation: PredictorGeneration::Wape,
        }
    }

    /// Which generation this predictor implements.
    pub fn generation(&self) -> PredictorGeneration {
        self.generation
    }

    /// Classifies one collected feature vector.
    ///
    /// For the WAP v2.1 generation the 60-feature vector is projected to
    /// the original 15 attributes first.
    pub fn predict(&self, fv: &FeatureVector) -> Prediction {
        let features: Vec<f64> = match self.generation {
            PredictorGeneration::WapV21 => crate::attributes::project_to_original(&fv.features),
            PredictorGeneration::Wape => fv.features.clone(),
        };
        let votes = self.members.iter().filter(|m| m.predict(&features)).count();
        let is_fp = votes * 2 > self.members.len();
        Prediction {
            is_false_positive: is_fp,
            votes,
            justification: if is_fp {
                fv.present.clone()
            } else {
                Vec::new()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{symptom_index, wape_feature_count};

    fn fv_with(names: &[&str]) -> FeatureVector {
        let mut features = vec![0.0; wape_feature_count()];
        let mut present = Vec::new();
        for n in names {
            let i = symptom_index(n).expect("symptom exists");
            features[i] = 1.0;
            present.push(crate::attributes::symptoms()[i].name);
        }
        FeatureVector { features, present }
    }

    #[test]
    fn heavily_guarded_candidate_is_a_false_positive() {
        let p = FalsePositivePredictor::train(PredictorGeneration::Wape, 42);
        let fv = fv_with(&[
            "isset",
            "is_numeric",
            "intval",
            "preg_match",
            "exit",
            "concat_op",
            "from_clause",
            "numeric_entry_point",
        ]);
        let out = p.predict(&fv);
        assert!(out.is_false_positive, "votes = {}", out.votes);
        assert!(out.justification.contains(&"is_numeric"));
    }

    #[test]
    fn raw_flow_is_a_real_vulnerability() {
        let p = FalsePositivePredictor::train(PredictorGeneration::Wape, 42);
        let fv = fv_with(&["concat_op", "from_clause"]);
        let out = p.predict(&fv);
        assert!(!out.is_false_positive, "votes = {}", out.votes);
        assert!(out.justification.is_empty());
    }

    #[test]
    fn wap_v21_generation_projects_features() {
        let p = FalsePositivePredictor::train(PredictorGeneration::WapV21, 42);
        assert_eq!(p.generation(), PredictorGeneration::WapV21);
        // projection invariance: NEW symptoms are invisible to v2.1, so
        // two vectors differing only in new symptoms predict identically
        let bare = fv_with(&["concat_op", "from_clause"]);
        let with_new = fv_with(&[
            "concat_op",
            "from_clause",
            "is_scalar",
            "empty",
            "is_null",
            "rtrim",
            "preg_match_all",
        ]);
        let a = p.predict(&bare);
        let b = p.predict(&with_new);
        assert_eq!(
            a.is_false_positive, b.is_false_positive,
            "v2.1 must be blind to new symptoms"
        );
        assert_eq!(a.votes, b.votes);
        // the WAPe generation distinguishes them: the guarded vector must
        // earn at least as many FP votes as the bare one
        let pe = FalsePositivePredictor::train(PredictorGeneration::Wape, 42);
        let a = pe.predict(&bare);
        let b = pe.predict(&with_new);
        assert!(
            b.votes >= a.votes,
            "WAPe sees new symptoms: {} vs {}",
            b.votes,
            a.votes
        );
        assert!(
            b.is_false_positive,
            "heavily guarded flow is an FP for WAPe"
        );
    }

    #[test]
    fn votes_bounded_by_committee_size() {
        let p = FalsePositivePredictor::train(PredictorGeneration::Wape, 1);
        let out = p.predict(&fv_with(&["isset"]));
        assert!(out.votes <= 3);
    }

    #[test]
    fn train_on_custom_committee() {
        let d = Dataset::wape(9);
        let p = FalsePositivePredictor::train_on(&[ClassifierKind::NaiveBayes], &d, 9);
        let out = p.predict(&fv_with(&["isset", "is_numeric", "preg_match", "exit"]));
        assert!(out.votes <= 1);
    }
}
