//! The attribute/symptom taxonomy of Table I.
//!
//! The original WAP used **15 attributes + class** representing **24
//! symptoms**; the new version promotes *every* symptom to its own
//! attribute and adds new ones, giving **60 feature attributes + class =
//! 61** (§III-B.1). Symptoms are PHP functions (or code features like the
//! concatenation operator) that manipulate entry points or variables, in
//! three categories: validation, string manipulation, and SQL query
//! manipulation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Symptom category (Table I's three sections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Input validation features (type checks, pattern control, ...).
    Validation,
    /// String manipulation features (substring, concatenation, replace, ...).
    StringManipulation,
    /// SQL query manipulation features (complex query, FROM clause, ...).
    SqlManipulation,
}

impl Category {
    /// Parses the category names used in weapon configuration files.
    pub fn parse(s: &str) -> Option<Category> {
        match s.to_ascii_lowercase().as_str() {
            "validation" => Some(Category::Validation),
            "string_manipulation" | "string manipulation" => Some(Category::StringManipulation),
            "sql_query_manipulation" | "sql manipulation" | "sql query manipulation" => {
                Some(Category::SqlManipulation)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Validation => "validation",
            Category::StringManipulation => "string manipulation",
            Category::SqlManipulation => "SQL query manipulation",
        };
        f.write_str(s)
    }
}

/// The attribute *groups* of the original WAP (left column of Table I).
/// In the original tool each group was one boolean attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Group {
    /// Type checking (`is_int`, `ctype_digit`, ...).
    TypeChecking,
    /// Entry point is set (`isset`, `is_null`, `empty`).
    EntryPointIsSet,
    /// Pattern control (`preg_match`, `strcmp`, ...).
    PatternControl,
    /// User functions containing white lists.
    WhiteList,
    /// User functions containing black lists.
    BlackList,
    /// Error reporting / exit.
    ErrorAndExit,
    /// Extract substring (`substr`, `explode`, ...).
    ExtractSubstring,
    /// String concatenation (the `.` operator, `implode`, `join`).
    StringConcatenation,
    /// Add char (`addchar`, `str_pad`).
    AddChar,
    /// Replace string (`str_replace`, `preg_replace`, ...).
    ReplaceString,
    /// Remove whitespace (`trim`, `rtrim`, `ltrim`).
    RemoveWhitespace,
    /// Complex SQL query (joins, unions, subqueries).
    ComplexQuery,
    /// Numeric entry point position in the query.
    NumericEntryPoint,
    /// Query contains a FROM clause.
    FromClause,
    /// Aggregate function in the query (AVG/COUNT/SUM/MAX/MIN).
    AggregateFunction,
}

impl Group {
    /// All 15 original attribute groups in Table I order.
    pub fn all() -> [Group; 15] {
        [
            Group::TypeChecking,
            Group::EntryPointIsSet,
            Group::PatternControl,
            Group::WhiteList,
            Group::BlackList,
            Group::ErrorAndExit,
            Group::ExtractSubstring,
            Group::StringConcatenation,
            Group::AddChar,
            Group::ReplaceString,
            Group::RemoveWhitespace,
            Group::ComplexQuery,
            Group::NumericEntryPoint,
            Group::FromClause,
            Group::AggregateFunction,
        ]
    }

    /// Table I category of this group.
    pub fn category(&self) -> Category {
        match self {
            Group::TypeChecking
            | Group::EntryPointIsSet
            | Group::PatternControl
            | Group::WhiteList
            | Group::BlackList
            | Group::ErrorAndExit => Category::Validation,
            Group::ExtractSubstring
            | Group::StringConcatenation
            | Group::AddChar
            | Group::ReplaceString
            | Group::RemoveWhitespace => Category::StringManipulation,
            Group::ComplexQuery
            | Group::NumericEntryPoint
            | Group::FromClause
            | Group::AggregateFunction => Category::SqlManipulation,
        }
    }

    /// Display name as in Table I.
    pub fn name(&self) -> &'static str {
        match self {
            Group::TypeChecking => "Type checking",
            Group::EntryPointIsSet => "Entry point is set",
            Group::PatternControl => "Pattern control",
            Group::WhiteList => "White list",
            Group::BlackList => "Black list",
            Group::ErrorAndExit => "Error and exit",
            Group::ExtractSubstring => "Extract substring",
            Group::StringConcatenation => "String concatenation",
            Group::AddChar => "Add char",
            Group::ReplaceString => "Replace string",
            Group::RemoveWhitespace => "Remove whitespaces",
            Group::ComplexQuery => "Complex query",
            Group::NumericEntryPoint => "Numeric entry point",
            Group::FromClause => "FROM clause",
            Group::AggregateFunction => "Aggregated function",
        }
    }
}

/// One symptom: a code feature whose presence is a predictor attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symptom {
    /// Symptom name — a PHP function name, or a synthetic name for code
    /// features (`concat_op`, `complex_query`, ...).
    pub name: &'static str,
    /// The original-WAP attribute group this symptom belongs to.
    pub group: Group,
    /// Whether the symptom is new in WAPe (right column of Table I).
    pub new_in_wape: bool,
}

/// The full symptom inventory of Table I: 24 original + 36 new = 60.
/// Order is stable — it defines the feature vector layout.
pub fn symptoms() -> &'static [Symptom] {
    use Group::*;
    const S: &[Symptom] = &[
        // ---- validation: type checking ----
        Symptom {
            name: "is_string",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "is_int",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "is_float",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "is_numeric",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "ctype_digit",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "ctype_alpha",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "ctype_alnum",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "intval",
            group: TypeChecking,
            new_in_wape: false,
        },
        Symptom {
            name: "is_double",
            group: TypeChecking,
            new_in_wape: true,
        },
        Symptom {
            name: "is_integer",
            group: TypeChecking,
            new_in_wape: true,
        },
        Symptom {
            name: "is_long",
            group: TypeChecking,
            new_in_wape: true,
        },
        Symptom {
            name: "is_real",
            group: TypeChecking,
            new_in_wape: true,
        },
        Symptom {
            name: "is_scalar",
            group: TypeChecking,
            new_in_wape: true,
        },
        // ---- validation: entry point is set ----
        Symptom {
            name: "isset",
            group: EntryPointIsSet,
            new_in_wape: false,
        },
        Symptom {
            name: "is_null",
            group: EntryPointIsSet,
            new_in_wape: true,
        },
        Symptom {
            name: "empty",
            group: EntryPointIsSet,
            new_in_wape: true,
        },
        // ---- validation: pattern control ----
        Symptom {
            name: "preg_match",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "ereg",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "eregi",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "strnatcmp",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "strcmp",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "strncmp",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "strncasecmp",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "strcasecmp",
            group: PatternControl,
            new_in_wape: false,
        },
        Symptom {
            name: "preg_match_all",
            group: PatternControl,
            new_in_wape: true,
        },
        // ---- validation: white/black lists (user functions) ----
        Symptom {
            name: "white_list",
            group: WhiteList,
            new_in_wape: false,
        },
        Symptom {
            name: "black_list",
            group: BlackList,
            new_in_wape: false,
        },
        // ---- validation: error and exit ----
        Symptom {
            name: "error",
            group: ErrorAndExit,
            new_in_wape: true,
        },
        Symptom {
            name: "exit",
            group: ErrorAndExit,
            new_in_wape: true,
        },
        // ---- string manipulation: extract substring ----
        Symptom {
            name: "substr",
            group: ExtractSubstring,
            new_in_wape: false,
        },
        Symptom {
            name: "preg_split",
            group: ExtractSubstring,
            new_in_wape: true,
        },
        Symptom {
            name: "str_split",
            group: ExtractSubstring,
            new_in_wape: true,
        },
        Symptom {
            name: "explode",
            group: ExtractSubstring,
            new_in_wape: true,
        },
        Symptom {
            name: "split",
            group: ExtractSubstring,
            new_in_wape: true,
        },
        Symptom {
            name: "spliti",
            group: ExtractSubstring,
            new_in_wape: true,
        },
        // ---- string manipulation: concatenation ----
        Symptom {
            name: "concat_op",
            group: StringConcatenation,
            new_in_wape: false,
        },
        Symptom {
            name: "implode",
            group: StringConcatenation,
            new_in_wape: true,
        },
        Symptom {
            name: "join",
            group: StringConcatenation,
            new_in_wape: true,
        },
        // ---- string manipulation: add char ----
        Symptom {
            name: "addchar",
            group: AddChar,
            new_in_wape: false,
        },
        Symptom {
            name: "str_pad",
            group: AddChar,
            new_in_wape: true,
        },
        // ---- string manipulation: replace ----
        Symptom {
            name: "str_replace",
            group: ReplaceString,
            new_in_wape: false,
        },
        Symptom {
            name: "preg_replace",
            group: ReplaceString,
            new_in_wape: true,
        },
        Symptom {
            name: "substr_replace",
            group: ReplaceString,
            new_in_wape: true,
        },
        Symptom {
            name: "preg_filter",
            group: ReplaceString,
            new_in_wape: true,
        },
        Symptom {
            name: "ereg_replace",
            group: ReplaceString,
            new_in_wape: true,
        },
        Symptom {
            name: "eregi_replace",
            group: ReplaceString,
            new_in_wape: true,
        },
        Symptom {
            name: "str_ireplace",
            group: ReplaceString,
            new_in_wape: true,
        },
        Symptom {
            name: "str_shuffle",
            group: ReplaceString,
            new_in_wape: true,
        },
        Symptom {
            name: "chunk_split",
            group: ReplaceString,
            new_in_wape: true,
        },
        // ---- string manipulation: remove whitespace ----
        Symptom {
            name: "trim",
            group: RemoveWhitespace,
            new_in_wape: false,
        },
        Symptom {
            name: "rtrim",
            group: RemoveWhitespace,
            new_in_wape: true,
        },
        Symptom {
            name: "ltrim",
            group: RemoveWhitespace,
            new_in_wape: true,
        },
        // ---- SQL query manipulation (computed features) ----
        Symptom {
            name: "complex_query",
            group: ComplexQuery,
            new_in_wape: true,
        },
        Symptom {
            name: "numeric_entry_point",
            group: NumericEntryPoint,
            new_in_wape: true,
        },
        Symptom {
            name: "from_clause",
            group: FromClause,
            new_in_wape: true,
        },
        Symptom {
            name: "agg_avg",
            group: AggregateFunction,
            new_in_wape: true,
        },
        Symptom {
            name: "agg_count",
            group: AggregateFunction,
            new_in_wape: true,
        },
        Symptom {
            name: "agg_sum",
            group: AggregateFunction,
            new_in_wape: true,
        },
        Symptom {
            name: "agg_max",
            group: AggregateFunction,
            new_in_wape: true,
        },
        Symptom {
            name: "agg_min",
            group: AggregateFunction,
            new_in_wape: true,
        },
    ];
    S
}

/// Number of feature attributes in the WAPe scheme (one per symptom).
/// With the class attribute this gives the paper's 61.
pub fn wape_feature_count() -> usize {
    symptoms().len()
}

/// Number of feature attributes in the original scheme (one per group).
/// With the class attribute this gives the paper's 16.
pub fn original_feature_count() -> usize {
    Group::all().len()
}

/// Index of a symptom by name (the feature vector position).
pub fn symptom_index(name: &str) -> Option<usize> {
    symptoms()
        .iter()
        .position(|s| s.name.eq_ignore_ascii_case(name))
}

/// Maps a symptom name back to the `&'static str` in the symptom table.
///
/// Deserialized reports carry symptom names as owned strings; interning
/// them through this exact-match lookup restores the static lifetime the
/// in-memory structures use. Returns `None` for names not in the table
/// (e.g. an entry written by an incompatible build), which callers treat
/// as a corrupt entry.
pub fn intern_symptom_name(name: &str) -> Option<&'static str> {
    symptoms().iter().find(|s| s.name == name).map(|s| s.name)
}

/// Projects a 60-feature WAPe vector down to the original 15-attribute
/// scheme: an original attribute is 1 if any of its group's *original*
/// symptoms is 1.
pub fn project_to_original(features: &[f64]) -> Vec<f64> {
    let groups = Group::all();
    let mut out = vec![0.0; groups.len()];
    for (i, s) in symptoms().iter().enumerate() {
        if s.new_in_wape {
            continue; // the original tool did not see these symptoms
        }
        if features.get(i).copied().unwrap_or(0.0) > 0.5 {
            let gi = groups
                .iter()
                .position(|g| *g == s.group)
                .expect("group exists");
            out[gi] = 1.0;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_the_paper() {
        // 60 symptom attributes + class = 61 (§III-B.1)
        assert_eq!(wape_feature_count(), 60);
        // 15 attributes + class = 16
        assert_eq!(original_feature_count(), 15);
        // 24 original symptoms
        let original = symptoms().iter().filter(|s| !s.new_in_wape).count();
        assert_eq!(original, 24);
        // 36 new symptoms
        assert_eq!(symptoms().len() - original, 36);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = symptoms().iter().map(|s| s.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), symptoms().len());
    }

    #[test]
    fn symptom_index_lookup() {
        assert_eq!(symptom_index("is_string"), Some(0));
        assert!(symptom_index("PREG_MATCH").is_some());
        assert!(symptom_index("nonexistent").is_none());
    }

    #[test]
    fn every_group_has_a_symptom() {
        for g in Group::all() {
            assert!(
                symptoms().iter().any(|s| s.group == g),
                "group {g:?} has no symptoms"
            );
        }
    }

    #[test]
    fn categories_partition_groups() {
        let v = Group::all()
            .iter()
            .filter(|g| g.category() == Category::Validation)
            .count();
        let s = Group::all()
            .iter()
            .filter(|g| g.category() == Category::StringManipulation)
            .count();
        let q = Group::all()
            .iter()
            .filter(|g| g.category() == Category::SqlManipulation)
            .count();
        assert_eq!((v, s, q), (6, 5, 4));
    }

    #[test]
    fn projection_collapses_group_members() {
        let mut features = vec![0.0; wape_feature_count()];
        features[symptom_index("is_int").unwrap()] = 1.0;
        features[symptom_index("is_numeric").unwrap()] = 1.0;
        let orig = project_to_original(&features);
        assert_eq!(orig.len(), 15);
        assert_eq!(orig.iter().sum::<f64>(), 1.0, "both map to TypeChecking");
    }

    #[test]
    fn projection_ignores_new_symptoms() {
        let mut features = vec![0.0; wape_feature_count()];
        features[symptom_index("is_scalar").unwrap()] = 1.0; // new in WAPe
        features[symptom_index("rtrim").unwrap()] = 1.0; // new in WAPe
        let orig = project_to_original(&features);
        assert_eq!(orig.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn category_parse() {
        assert_eq!(Category::parse("validation"), Some(Category::Validation));
        assert_eq!(
            Category::parse("string_manipulation"),
            Some(Category::StringManipulation)
        );
        assert_eq!(Category::parse("bogus"), None);
    }
}
