//! Training data sets.
//!
//! The paper's data sets were built by running WAP on open-source
//! applications and manually labelling each candidate (§III-B.1): 76
//! instances × 16 attributes for the original WAP, and 256 instances × 61
//! attributes (balanced, noise-filtered) for WAPe. Those annotations are
//! not public, so we substitute a **generative model of candidate flows**:
//! false-positive instances carry the validation/string-manipulation
//! symptoms a careful developer leaves behind, real-vulnerability
//! instances mostly do not, with calibrated overlap so the learned
//! decision boundary (and the resulting Table II/III numbers) matches the
//! paper's ~94–95 % regime. The substitution is recorded in DESIGN.md.

use crate::attributes::{project_to_original, symptom_index, wape_feature_count, Group};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A labelled data set: `x[i]` is a binary feature vector, `y[i] == true`
/// means instance `i` is a false positive.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Feature matrix.
    pub x: Vec<Vec<f64>>,
    /// Labels (true = false positive, the "Yes" class).
    pub y: Vec<bool>,
    /// Attribute names, aligned with the feature columns.
    pub names: Vec<String>,
}

impl Dataset {
    /// Number of instances.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Whether the data set is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of false-positive instances.
    pub fn positives(&self) -> usize {
        self.y.iter().filter(|v| **v).count()
    }

    /// The WAPe data set: 256 instances × 60 feature attributes, evenly
    /// balanced (128 FP / 128 RV), duplicates and ambiguous instances
    /// removed — the shape described in §III-B.1.
    pub fn wape(seed: u64) -> Dataset {
        let mut gen = InstanceGen::new(seed);
        let (x, y) = gen.balanced(128, 128, false, false);
        Dataset {
            x,
            y,
            names: crate::attributes::symptoms()
                .iter()
                .map(|s| s.name.to_string())
                .collect(),
        }
    }

    /// The original WAP data set: 76 instances × 15 attributes
    /// (32 false positives, 44 real vulnerabilities).
    pub fn original(seed: u64) -> Dataset {
        let mut gen = InstanceGen::new(seed);
        // the 15-attribute space is tiny: deduplicating here would select
        // for rare (atypical) vectors and invert the class signal, so the
        // original data set keeps duplicates and only drops ambiguity
        let (x61, y) = gen.balanced(32, 44, true, true);
        let x = x61.iter().map(|v| project_to_original(v)).collect();
        Dataset {
            x,
            y,
            names: Group::all().iter().map(|g| g.name().to_string()).collect(),
        }
    }

    /// Projects a WAPe data set down to the original 15-attribute scheme
    /// (for the attribute-granularity ablation).
    pub fn project_to_original_scheme(&self) -> Dataset {
        Dataset {
            x: self.x.iter().map(|v| project_to_original(v)).collect(),
            y: self.y.clone(),
            names: Group::all().iter().map(|g| g.name().to_string()).collect(),
        }
    }
}

/// Generative model for candidate-vulnerability attribute vectors.
struct InstanceGen {
    rng: StdRng,
}

impl InstanceGen {
    fn new(seed: u64) -> Self {
        InstanceGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates `n_fp` false positives and `n_rv` real vulnerabilities,
    /// removing duplicate/ambiguous vectors (the paper's noise
    /// elimination). `original_symptoms_only` restricts the generator to
    /// symptoms the original tool could observe.
    fn balanced(
        &mut self,
        n_fp: usize,
        n_rv: usize,
        original_symptoms_only: bool,
        allow_duplicates: bool,
    ) -> (Vec<Vec<f64>>, Vec<bool>) {
        let mut seen: HashMap<Vec<u8>, bool> = HashMap::new();
        let mut x = Vec::new();
        let mut y = Vec::new();
        let mut fp = 0;
        let mut rv = 0;
        let mut guard = 0;
        while (fp < n_fp || rv < n_rv) && guard < 100_000 {
            guard += 1;
            let want_fp = fp < n_fp && (rv >= n_rv || self.rng.gen_bool(0.5));
            let v = self.instance(want_fp, original_symptoms_only);
            let key: Vec<u8> = v.iter().map(|f| u8::from(*f > 0.5)).collect();
            match seen.get(&key) {
                Some(&label) if label != want_fp => continue, // ambiguous: drop
                Some(_) if !allow_duplicates => continue,     // duplicate: drop
                _ => {
                    seen.insert(key, want_fp);
                }
            }
            x.push(v);
            y.push(want_fp);
            if want_fp {
                fp += 1;
            } else {
                rv += 1;
            }
        }
        (x, y)
    }

    fn set(&mut self, v: &mut [f64], name: &str, p: f64) {
        if self.rng.gen_bool(p) {
            if let Some(i) = symptom_index(name) {
                v[i] = 1.0;
            }
        }
    }

    /// One synthetic candidate. False positives are guarded flows:
    /// developers who validate leave type checks, pattern checks,
    /// isset/exit guards, or list-based validators around the flow. Real
    /// vulnerabilities mostly lack defenses, with a small overlap band
    /// (mis-applied validation / suspicious-looking-but-safe code) that
    /// produces the paper's ~5 % residual error.
    fn instance(&mut self, fp: bool, original_only: bool) -> Vec<f64> {
        let mut v = vec![0.0; wape_feature_count()];

        // -- shared query-shape features (both classes are mostly SQLI/XSS
        // candidates flowing into queries and output)
        self.set(&mut v, "concat_op", 0.85);
        self.set(&mut v, "from_clause", 0.55);
        self.set(&mut v, "complex_query", 0.18);
        self.set(&mut v, "agg_count", 0.08);
        self.set(&mut v, "agg_sum", 0.04);
        self.set(&mut v, "agg_avg", 0.03);
        self.set(&mut v, "agg_max", 0.04);
        self.set(&mut v, "agg_min", 0.03);

        if fp {
            // choose the dominant defense idiom of this false positive
            match self.rng.gen_range(0..6) {
                0 => {
                    // numeric type checking: always at least one check
                    let anchor =
                        ["is_numeric", "is_int", "ctype_digit", "intval"][self.rng.gen_range(0..4)];
                    self.set(&mut v, anchor, 1.0);
                    for (name, p) in [
                        ("is_numeric", 0.5),
                        ("is_int", 0.35),
                        ("ctype_digit", 0.3),
                        ("intval", 0.35),
                        ("is_float", 0.1),
                        ("is_string", 0.15),
                        ("is_integer", 0.12),
                        ("is_double", 0.06),
                        ("is_long", 0.05),
                        ("is_real", 0.04),
                        ("is_scalar", 0.06),
                    ] {
                        self.set(&mut v, name, p);
                    }
                    self.set(&mut v, "numeric_entry_point", 0.75);
                }
                1 => {
                    // pattern control: always at least one check
                    let anchor =
                        ["preg_match", "strcmp", "preg_match_all"][self.rng.gen_range(0..3)];
                    self.set(&mut v, anchor, 1.0);
                    for (name, p) in [
                        ("preg_match", 0.75),
                        ("preg_match_all", 0.15),
                        ("ereg", 0.1),
                        ("eregi", 0.06),
                        ("strcmp", 0.3),
                        ("strncmp", 0.1),
                        ("strcasecmp", 0.12),
                        ("strncasecmp", 0.05),
                        ("strnatcmp", 0.04),
                    ] {
                        self.set(&mut v, name, p);
                    }
                }
                2 => {
                    // presence guards + error handling
                    self.set(&mut v, "isset", 1.0);
                    self.set(&mut v, "exit", 0.85);
                    self.set(&mut v, "empty", 0.45);
                    self.set(&mut v, "is_null", 0.2);
                    self.set(&mut v, "exit", 0.6);
                    self.set(&mut v, "error", 0.3);
                }
                3 => {
                    // white/black list user validators: always one list
                    if self.rng.gen_bool(0.6) {
                        self.set(&mut v, "white_list", 1.0);
                        self.set(&mut v, "black_list", 0.2);
                    } else {
                        self.set(&mut v, "black_list", 1.0);
                        self.set(&mut v, "white_list", 0.2);
                    }
                    self.set(&mut v, "exit", 0.4);
                }
                4 => {
                    // WAPe-only validation: presence/type guards using the
                    // symptoms new in Table I (invisible to the original
                    // 16-attribute scheme)
                    self.set(&mut v, "empty", 1.0);
                    self.set(&mut v, "is_null", 0.4);
                    self.set(&mut v, "is_scalar", 0.35);
                    self.set(&mut v, "preg_match_all", 0.3);
                    self.set(&mut v, "rtrim", 0.3);
                    self.set(&mut v, "ltrim", 0.12);
                    self.set(&mut v, "str_pad", 0.2);
                    self.set(&mut v, "ereg_replace", 0.2);
                    self.set(&mut v, "is_integer", 0.15);
                    self.set(&mut v, "exit", 0.5);
                }
                _ => {
                    // string surgery that neutralizes the payload:
                    // always at least one replacement
                    let anchor =
                        ["str_replace", "preg_replace", "substr"][self.rng.gen_range(0..3)];
                    self.set(&mut v, anchor, 1.0);
                    for (name, p) in [
                        ("str_replace", 0.6),
                        ("preg_replace", 0.4),
                        ("substr", 0.45),
                        ("substr_replace", 0.1),
                        ("explode", 0.25),
                        ("preg_split", 0.08),
                        ("str_split", 0.05),
                        ("split", 0.05),
                        ("spliti", 0.02),
                        ("trim", 0.5),
                        ("rtrim", 0.1),
                        ("ltrim", 0.08),
                        ("str_pad", 0.06),
                        ("addchar", 0.04),
                        ("chunk_split", 0.03),
                        ("str_ireplace", 0.05),
                        ("str_shuffle", 0.02),
                        ("ereg_replace", 0.05),
                        ("eregi_replace", 0.03),
                        ("preg_filter", 0.03),
                        ("implode", 0.15),
                        ("join", 0.05),
                    ] {
                        self.set(&mut v, name, p);
                    }
                }
            }
            // secondary defenses sprinkled on top
            self.set(&mut v, "isset", 0.45);
            self.set(&mut v, "trim", 0.25);
            self.set(&mut v, "exit", 0.25);
            self.set(&mut v, "error", 0.12);
        } else {
            // real vulnerabilities: mostly raw flows; light string handling
            self.set(&mut v, "trim", 0.12);
            self.set(&mut v, "substr", 0.06);
            self.set(&mut v, "explode", 0.06);
            self.set(&mut v, "implode", 0.04);
            self.set(&mut v, "str_replace", 0.05);
            self.set(&mut v, "isset", 0.12);
            self.set(&mut v, "empty", 0.05);
            self.set(&mut v, "numeric_entry_point", 0.3);
            // the ~5% confusion band: validation applied to the wrong
            // variable or insufficient checks
            if self.rng.gen_bool(0.05) {
                self.set(&mut v, "preg_match", 0.6);
                self.set(&mut v, "is_numeric", 0.4);
                self.set(&mut v, "exit", 0.3);
            }
        }

        if original_only {
            for (i, s) in crate::attributes::symptoms().iter().enumerate() {
                if s.new_in_wape {
                    v[i] = 0.0;
                }
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wape_dataset_shape_matches_paper() {
        let d = Dataset::wape(42);
        assert_eq!(d.len(), 256);
        assert_eq!(d.positives(), 128, "balanced data set");
        assert!(d.x.iter().all(|v| v.len() == 60));
        assert_eq!(d.names.len(), 60);
    }

    #[test]
    fn original_dataset_shape_matches_paper() {
        let d = Dataset::original(42);
        assert_eq!(d.len(), 76);
        assert_eq!(d.positives(), 32);
        assert!(d.x.iter().all(|v| v.len() == 15));
    }

    #[test]
    fn no_duplicate_vectors() {
        let d = Dataset::wape(42);
        let mut keys: Vec<Vec<u8>> =
            d.x.iter()
                .map(|v| v.iter().map(|f| u8::from(*f > 0.5)).collect())
                .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "noise elimination removes duplicates");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(Dataset::wape(7), Dataset::wape(7));
        assert_ne!(Dataset::wape(7), Dataset::wape(8));
    }

    #[test]
    fn features_are_binary() {
        let d = Dataset::wape(1);
        assert!(d.x.iter().flatten().all(|v| *v == 0.0 || *v == 1.0));
    }

    #[test]
    fn fp_instances_carry_more_validation() {
        let d = Dataset::wape(3);
        let validation_idx: Vec<usize> = crate::attributes::symptoms()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.group.category() == crate::attributes::Category::Validation)
            .map(|(i, _)| i)
            .collect();
        let avg = |label: bool| {
            let rows: Vec<&Vec<f64>> =
                d.x.iter()
                    .zip(&d.y)
                    .filter(|(_, y)| **y == label)
                    .map(|(x, _)| x)
                    .collect();
            rows.iter()
                .map(|r| validation_idx.iter().map(|&i| r[i]).sum::<f64>())
                .sum::<f64>()
                / rows.len() as f64
        };
        assert!(
            avg(true) > avg(false) + 0.5,
            "FPs should show clearly more validation symptoms: fp={} rv={}",
            avg(true),
            avg(false)
        );
    }

    #[test]
    fn projection_keeps_labels() {
        let d = Dataset::wape(5);
        let p = d.project_to_original_scheme();
        assert_eq!(p.y, d.y);
        assert!(p.x.iter().all(|v| v.len() == 15));
    }
}
