//! ARFF (WEKA) import/export for training data sets.
//!
//! The paper performed the data-mining process "using the WEKA tool"
//! (§III-B.1). This module speaks WEKA's Attribute-Relation File Format so
//! data sets can round-trip with WEKA: export our generated sets for
//! external experimentation, or train the committee on an externally
//! annotated ARFF file.

use crate::dataset::Dataset;
use std::error::Error;
use std::fmt;

/// Error produced when parsing an ARFF file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArffError {
    message: String,
    line: usize,
}

impl ArffError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ArffError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ArffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {}", self.message, self.line)
    }
}

impl Error for ArffError {}

/// Serializes a data set as ARFF. Features become `{0,1}` nominal
/// attributes; the class attribute is `{FP,RV}` with `FP` the positive
/// ("Yes") class, matching the paper's convention.
pub fn to_arff(dataset: &Dataset, relation: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("@RELATION {}\n\n", quote_if_needed(relation)));
    for name in &dataset.names {
        out.push_str(&format!("@ATTRIBUTE {} {{0,1}}\n", quote_if_needed(name)));
    }
    out.push_str("@ATTRIBUTE class {FP,RV}\n\n@DATA\n");
    for (x, y) in dataset.x.iter().zip(&dataset.y) {
        for v in x {
            out.push(if *v > 0.5 { '1' } else { '0' });
            out.push(',');
        }
        out.push_str(if *y { "FP" } else { "RV" });
        out.push('\n');
    }
    out
}

fn quote_if_needed(s: &str) -> String {
    if s.chars()
        .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        && !s.is_empty()
    {
        s.to_string()
    } else {
        format!("'{}'", s.replace('\'', "\\'"))
    }
}

/// Parses an ARFF file into a data set.
///
/// Supports the subset this module writes: nominal `{0,1}` attributes plus
/// a final `class` attribute with two values (first value = positive/FP).
/// Comment lines (`%`) and blank lines are skipped; attribute and keyword
/// matching is case-insensitive, as WEKA's is.
///
/// # Errors
///
/// Returns [`ArffError`] for missing sections, arity mismatches, and
/// values outside the declared domains.
pub fn from_arff(text: &str) -> Result<Dataset, ArffError> {
    let mut names: Vec<String> = Vec::new();
    let mut class_values: Option<(String, String)> = None;
    let mut x: Vec<Vec<f64>> = Vec::new();
    let mut y: Vec<bool> = Vec::new();
    let mut in_data = false;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('%') {
            continue;
        }
        if !in_data {
            let lower = line.to_ascii_lowercase();
            if lower.starts_with("@relation") {
                continue;
            }
            if lower.starts_with("@attribute") {
                let rest = line["@attribute".len()..].trim();
                let (name, domain) = split_attribute(rest)
                    .ok_or_else(|| ArffError::new("malformed @ATTRIBUTE", n))?;
                let values: Vec<String> = domain
                    .trim_start_matches('{')
                    .trim_end_matches('}')
                    .split(',')
                    .map(|v| v.trim().trim_matches('\'').to_string())
                    .collect();
                if values.len() != 2 {
                    return Err(ArffError::new(
                        format!("attribute {name} must be binary, got {domain}"),
                        n,
                    ));
                }
                if name.eq_ignore_ascii_case("class") {
                    class_values = Some((values[0].clone(), values[1].clone()));
                } else {
                    if class_values.is_some() {
                        return Err(ArffError::new("class attribute must be declared last", n));
                    }
                    names.push(name);
                }
                continue;
            }
            if lower.starts_with("@data") {
                if class_values.is_none() {
                    return Err(ArffError::new("no class attribute declared", n));
                }
                in_data = true;
                continue;
            }
            return Err(ArffError::new(format!("unexpected header line: {line}"), n));
        }
        // data row
        let cells: Vec<&str> = line.split(',').map(str::trim).collect();
        if cells.len() != names.len() + 1 {
            return Err(ArffError::new(
                format!("expected {} values, got {}", names.len() + 1, cells.len()),
                n,
            ));
        }
        let mut row = Vec::with_capacity(names.len());
        for c in &cells[..names.len()] {
            match *c {
                "0" => row.push(0.0),
                "1" => row.push(1.0),
                other => return Err(ArffError::new(format!("non-binary value `{other}`"), n)),
            }
        }
        let (pos, neg) = class_values.as_ref().expect("checked at @data");
        let label = cells[names.len()].trim_matches('\'');
        if label.eq_ignore_ascii_case(pos) {
            y.push(true);
        } else if label.eq_ignore_ascii_case(neg) {
            y.push(false);
        } else {
            return Err(ArffError::new(format!("unknown class label `{label}`"), n));
        }
        x.push(row);
    }
    if !in_data {
        return Err(ArffError::new("no @DATA section", text.lines().count()));
    }
    Ok(Dataset { x, y, names })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_wape_dataset() {
        let d = Dataset::wape(42);
        let arff = to_arff(&d, "wap-instances");
        let back = from_arff(&arff).expect("round trip");
        assert_eq!(back.x, d.x);
        assert_eq!(back.y, d.y);
        assert_eq!(back.names, d.names);
    }

    #[test]
    fn round_trip_original_dataset() {
        let d = Dataset::original(7);
        let arff = to_arff(&d, "wap v2.1 instances");
        assert!(arff.contains("@RELATION 'wap v2.1 instances'"));
        let back = from_arff(&arff).expect("round trip");
        assert_eq!(back.len(), 76);
        assert_eq!(back.positives(), 32);
    }

    #[test]
    fn export_shape() {
        let d = Dataset::wape(1);
        let arff = to_arff(&d, "r");
        assert_eq!(
            arff.matches("@ATTRIBUTE").count(),
            61,
            "60 features + class"
        );
        assert!(arff.contains("@ATTRIBUTE class {FP,RV}"));
        assert_eq!(
            arff.lines()
                .filter(|l| l.ends_with(",FP") || l.ends_with(",RV"))
                .count(),
            256
        );
    }

    #[test]
    fn parse_hand_written_arff() {
        let arff = "\
% a comment
@RELATION tiny
@ATTRIBUTE isset {0,1}
@ATTRIBUTE concat_op {0,1}
@attribute class {FP,RV}

@data
1,0,FP
0,1,RV
1,1,FP
";
        let d = from_arff(arff).expect("parses");
        assert_eq!(d.len(), 3);
        assert_eq!(d.positives(), 2);
        assert_eq!(d.names, vec!["isset".to_string(), "concat_op".to_string()]);
    }

    #[test]
    fn parse_errors_are_located() {
        let missing_data = "@RELATION x\n@ATTRIBUTE a {0,1}\n@ATTRIBUTE class {FP,RV}\n";
        assert!(from_arff(missing_data).is_err());

        let bad_arity =
            "@RELATION x\n@ATTRIBUTE a {0,1}\n@ATTRIBUTE class {FP,RV}\n@DATA\n1,0,FP\n";
        let err = from_arff(bad_arity).unwrap_err();
        assert!(err.to_string().contains("expected 2 values"));

        let bad_value = "@RELATION x\n@ATTRIBUTE a {0,1}\n@ATTRIBUTE class {FP,RV}\n@DATA\n7,FP\n";
        assert!(from_arff(bad_value)
            .unwrap_err()
            .to_string()
            .contains("non-binary"));

        let bad_label =
            "@RELATION x\n@ATTRIBUTE a {0,1}\n@ATTRIBUTE class {FP,RV}\n@DATA\n1,MAYBE\n";
        assert!(from_arff(bad_label)
            .unwrap_err()
            .to_string()
            .contains("unknown class"));
    }

    #[test]
    fn trained_committee_from_arff_works() {
        use crate::classifiers::ClassifierKind;
        use crate::predictor::FalsePositivePredictor;
        let d = Dataset::wape(42);
        let arff = to_arff(&d, "x");
        let imported = from_arff(&arff).unwrap();
        let p = FalsePositivePredictor::train_on(&ClassifierKind::top3(), &imported, 42);
        // the imported-data committee behaves like the native one
        let mut features = vec![0.0; 60];
        features[crate::attributes::symptom_index("isset").unwrap()] = 1.0;
        features[crate::attributes::symptom_index("is_numeric").unwrap()] = 1.0;
        features[crate::attributes::symptom_index("exit").unwrap()] = 1.0;
        features[crate::attributes::symptom_index("preg_match").unwrap()] = 1.0;
        let fv = crate::symptoms::FeatureVector {
            features,
            present: vec![],
        };
        assert!(p.predict(&fv).is_false_positive);
    }
}

fn split_attribute(rest: &str) -> Option<(String, String)> {
    let rest = rest.trim();
    if let Some(stripped) = rest.strip_prefix('\'') {
        let end = stripped.find('\'')?;
        let name = stripped[..end].to_string();
        let domain = stripped[end + 1..].trim().to_string();
        Some((name, domain))
    } else {
        let mut it = rest.splitn(2, char::is_whitespace);
        let name = it.next()?.to_string();
        let domain = it.next()?.trim().to_string();
        Some((name, domain))
    }
}
