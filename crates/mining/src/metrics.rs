//! Evaluation metrics and cross-validation (Tables II and III).
//!
//! The positive ("Yes") class is *false positive*; `fp` in the confusion
//! matrix therefore means "a real vulnerability classified as a false
//! positive" — in vulnerability-detection terms, a missed vulnerability
//! (the paper makes this point under Table III).

use crate::classifiers::ClassifierKind;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A 2×2 confusion matrix using the paper's notation (Table III, last two
/// columns): rows are predictions, columns are observations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Predicted Yes (FP), observed Yes.
    pub tp: usize,
    /// Predicted Yes (FP), observed No — a missed real vulnerability.
    pub fp: usize,
    /// Predicted No, observed Yes.
    pub fn_: usize,
    /// Predicted No, observed No.
    pub tn: usize,
}

impl ConfusionMatrix {
    /// Records one prediction.
    pub fn record(&mut self, predicted: bool, observed: bool) {
        match (predicted, observed) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total number of instances.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Merges another matrix into this one (fold accumulation).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
    }
}

/// The nine metrics of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// `tpp = recall = tp / (tp + fn)` — rate of FPs predicted correctly.
    pub tpp: f64,
    /// `pfp = fallout = fp / (tn + fp)` — vulnerabilities wrongly
    /// classified as FPs (goal 2: keep this low).
    pub pfp: f64,
    /// `prfp = tp / (tp + fp)` — precision on the FP class.
    pub prfp: f64,
    /// `pd = specificity = tn / (tn + fp)`.
    pub pd: f64,
    /// `ppd = inverse precision = tn / (tn + fn)`.
    pub ppd: f64,
    /// `accuracy = (tp + tn) / N`.
    pub acc: f64,
    /// `precision = (prfp + ppd) / 2`.
    pub pr: f64,
    /// `informedness = tpp + pd − 1 = tpp − pfp` (new in this paper).
    pub inform: f64,
    /// `jaccard = tp / (tp + fn + fp)` (new in this paper).
    pub jacc: f64,
}

impl Metrics {
    /// Computes all metrics from a confusion matrix.
    pub fn from_confusion(m: &ConfusionMatrix) -> Metrics {
        let (tp, fp, fn_, tn) = (m.tp as f64, m.fp as f64, m.fn_ as f64, m.tn as f64);
        let div = |a: f64, b: f64| if b == 0.0 { 0.0 } else { a / b };
        let tpp = div(tp, tp + fn_);
        let pfp = div(fp, tn + fp);
        let prfp = div(tp, tp + fp);
        let pd = div(tn, tn + fp);
        let ppd = div(tn, tn + fn_);
        let acc = div(tp + tn, tp + tn + fp + fn_);
        Metrics {
            tpp,
            pfp,
            prfp,
            pd,
            ppd,
            acc,
            pr: (prfp + ppd) / 2.0,
            inform: tpp + pd - 1.0,
            jacc: div(tp, tp + fn_ + fp),
        }
    }
}

/// Stratified k-fold cross-validation of one classifier kind.
///
/// Returns the accumulated confusion matrix over all folds, which is how
/// WEKA reports CV results (and how Table III is built).
pub fn cross_validate(
    kind: ClassifierKind,
    x: &[Vec<f64>],
    y: &[bool],
    folds: usize,
    seed: u64,
) -> ConfusionMatrix {
    assert!(folds >= 2, "cross-validation needs at least 2 folds");
    assert_eq!(x.len(), y.len(), "features and labels must align");
    let mut rng = StdRng::seed_from_u64(seed);

    // stratify: shuffle positives and negatives separately, then deal them
    // round-robin into folds
    let mut pos: Vec<usize> = (0..y.len()).filter(|&i| y[i]).collect();
    let mut neg: Vec<usize> = (0..y.len()).filter(|&i| !y[i]).collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let mut fold_of = vec![0usize; y.len()];
    for (j, &i) in pos.iter().chain(neg.iter()).enumerate() {
        fold_of[i] = j % folds;
    }

    let mut cm = ConfusionMatrix::default();
    for fold in 0..folds {
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_idx = Vec::new();
        for i in 0..x.len() {
            if fold_of[i] == fold {
                test_idx.push(i);
            } else {
                train_x.push(x[i].clone());
                train_y.push(y[i]);
            }
        }
        let mut clf = kind.build(seed.wrapping_add(fold as u64));
        clf.train(&train_x, &train_y);
        for i in test_idx {
            cm.record(clf.predict(&x[i]), y[i]);
        }
    }
    cm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_svm() -> ConfusionMatrix {
        // Table III, SVM column: predicted-yes row (121, 6),
        // predicted-no row (7, 122)
        ConfusionMatrix {
            tp: 121,
            fp: 6,
            fn_: 7,
            tn: 122,
        }
    }

    #[test]
    fn metrics_match_paper_svm_column() {
        let m = Metrics::from_confusion(&paper_svm());
        // Table II, SVM column
        assert!((m.tpp - 0.945).abs() < 0.001, "tpp = {}", m.tpp);
        assert!((m.pfp - 0.047).abs() < 0.001, "pfp = {}", m.pfp);
        assert!((m.prfp - 0.953).abs() < 0.001, "prfp = {}", m.prfp);
        assert!((m.pd - 0.953).abs() < 0.001, "pd = {}", m.pd);
        assert!((m.ppd - 0.946).abs() < 0.001, "ppd = {}", m.ppd);
        assert!((m.acc - 0.949).abs() < 0.001, "acc = {}", m.acc);
        assert!((m.pr - 0.949).abs() < 0.001, "pr = {}", m.pr);
        assert!((m.jacc - 0.903).abs() < 0.001, "jacc = {}", m.jacc);
    }

    #[test]
    fn metrics_match_paper_rf_column() {
        // Table III, Random Forest column: (116, 3) / (12, 125)
        let m = Metrics::from_confusion(&ConfusionMatrix {
            tp: 116,
            fp: 3,
            fn_: 12,
            tn: 125,
        });
        assert!((m.tpp - 0.906).abs() < 0.001);
        assert!((m.pfp - 0.023).abs() < 0.001);
        assert!((m.prfp - 0.975).abs() < 0.001);
        assert!((m.pd - 0.977).abs() < 0.001);
        assert!((m.acc - 0.941).abs() < 0.001);
    }

    #[test]
    fn informedness_identity() {
        let m = Metrics::from_confusion(&paper_svm());
        assert!((m.inform - (m.tpp - m.pfp)).abs() < 1e-12);
        assert!((m.inform - (m.tpp + m.pd - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn record_and_total() {
        let mut cm = ConfusionMatrix::default();
        cm.record(true, true);
        cm.record(true, false);
        cm.record(false, true);
        cm.record(false, false);
        assert_eq!(cm.total(), 4);
        assert_eq!((cm.tp, cm.fp, cm.fn_, cm.tn), (1, 1, 1, 1));
    }

    #[test]
    fn empty_matrix_yields_zero_metrics_not_nan() {
        let m = Metrics::from_confusion(&ConfusionMatrix::default());
        for v in [m.tpp, m.pfp, m.prfp, m.pd, m.ppd, m.acc, m.pr, m.jacc] {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn cross_validation_covers_every_instance_once() {
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 2) as f64, ((i / 2) % 2) as f64])
            .collect();
        let y: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let cm = cross_validate(ClassifierKind::DecisionTree, &x, &y, 10, 1);
        assert_eq!(cm.total(), 50);
    }

    #[test]
    fn cross_validation_is_deterministic() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 2) as f64]).collect();
        let y: Vec<bool> = (0..40).map(|i| i % 2 == 0).collect();
        let a = cross_validate(ClassifierKind::Svm, &x, &y, 5, 99);
        let b = cross_validate(ClassifierKind::Svm, &x, &y, 5, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ConfusionMatrix {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        a.merge(&ConfusionMatrix {
            tp: 10,
            fp: 20,
            fn_: 30,
            tn: 40,
        });
        assert_eq!(
            a,
            ConfusionMatrix {
                tp: 11,
                fp: 22,
                fn_: 33,
                tn: 44
            }
        );
    }
}
