//! # wap-mining — data-mining false positive predictor
//!
//! Implements the *false positives predictor* module of WAP (Medeiros et
//! al., DSN 2016, Fig. 3): symptoms are collected from the source code
//! around each candidate vulnerability, folded into the 61-attribute
//! vector of Table I (60 features + class), and classified by a committee
//! of the top-3 machine-learning classifiers (SVM, Logistic Regression,
//! Random Forest). All classifiers, the metrics of Table II, and the
//! cross-validation harness are implemented from scratch (the paper used
//! WEKA).
//!
//! ## Quick start
//!
//! ```
//! use wap_mining::{FalsePositivePredictor, PredictorGeneration, Dataset};
//! use wap_mining::classifiers::ClassifierKind;
//! use wap_mining::metrics::{cross_validate, Metrics};
//!
//! // Table II: evaluate a classifier on the 256-instance data set
//! let data = Dataset::wape(42);
//! let cm = cross_validate(ClassifierKind::Svm, &data.x, &data.y, 10, 42);
//! let m = Metrics::from_confusion(&cm);
//! assert!(m.acc > 0.85);
//!
//! // The production committee
//! let predictor = FalsePositivePredictor::train(PredictorGeneration::Wape, 42);
//! let _ = predictor;
//! ```

#![warn(missing_docs)]

pub mod arff;
pub mod attributes;
pub mod classifiers;
pub mod dataset;
pub mod metrics;
pub mod predictor;
pub mod symptoms;

pub use arff::{from_arff, to_arff};
pub use attributes::{intern_symptom_name, symptoms, Category, Group, Symptom};
pub use classifiers::{Classifier, ClassifierKind};
pub use dataset::Dataset;
pub use metrics::{cross_validate, ConfusionMatrix, Metrics};
pub use predictor::{FalsePositivePredictor, Prediction, PredictorGeneration};
pub use symptoms::{
    collect, refine_with_guards, refine_with_sink_context, DynamicSymptomMap, FeatureVector,
};
