//! Symptom collection: from a candidate vulnerability's code context to the
//! 60-feature attribute vector of Table I.
//!
//! Mirrors the reorganized false-positive predictor (Fig. 3): static
//! symptoms are collected from source code around the flagged data flow,
//! dynamic symptoms (user functions registered by weapons) are mapped onto
//! their static equivalents, and everything is folded into one attribute
//! vector for classification.

use crate::attributes::{symptom_index, symptoms, wape_feature_count, Group};
use std::collections::{BTreeSet, HashMap};
use wap_php::ast::*;
use wap_php::visitor::{walk_expr, walk_stmt, Visitor};
use wap_taint::Candidate;

/// Maps user-function names to static symptom names (dynamic symptoms,
/// §III-B.2). Built from weapon configurations.
#[derive(Debug, Clone, Default)]
pub struct DynamicSymptomMap {
    map: HashMap<String, String>,
}

impl DynamicSymptomMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `function` as behaving like static symptom `equivalent`.
    /// Use the pseudo-symptoms `white_list` / `black_list` for list-based
    /// user validators.
    pub fn insert(&mut self, function: &str, equivalent: &str) {
        self.map
            .insert(function.to_ascii_lowercase(), equivalent.to_string());
    }

    /// Builds the map from catalog dynamic symptoms.
    pub fn from_catalog(catalog: &wap_catalog::Catalog) -> Self {
        let mut m = Self::new();
        for ds in catalog.dynamic_symptoms() {
            m.insert(&ds.function, &ds.equivalent);
        }
        m
    }

    fn resolve(&self, function: &str) -> Option<&str> {
        self.map
            .get(&function.to_ascii_lowercase())
            .map(String::as_str)
    }

    /// Number of registered dynamic symptoms.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no dynamic symptoms are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The collected attribute vector for one candidate vulnerability.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureVector {
    /// 60 binary features in [`symptoms`] order (0.0 / 1.0).
    pub features: Vec<f64>,
    /// Names of the symptoms that were present (for FP justification).
    pub present: Vec<&'static str>,
}

impl FeatureVector {
    /// Whether a named symptom was observed.
    pub fn has(&self, name: &str) -> bool {
        symptom_index(name)
            .map(|i| self.features[i] > 0.5)
            .unwrap_or(false)
    }
}

/// Collects the Table I symptoms for `candidate` from its `program`.
///
/// The collector considers code that touches the flow's *carrier
/// variables* or its entry points: validation calls guarding them, string
/// manipulation applied to them, and the query text they are embedded in.
pub fn collect(
    program: &Program,
    candidate: &Candidate,
    dynamic: &DynamicSymptomMap,
) -> FeatureVector {
    let relevant: BTreeSet<String> = candidate.carriers.iter().cloned().collect();
    // exact entry-point expressions like `$_GET['id']` — matching whole
    // superglobals would let guards of *other* flows contaminate this one
    let entries: BTreeSet<String> = candidate.sources.iter().cloned().collect();

    let mut c = Collector {
        relevant: &relevant,
        entries: &entries,
        dynamic,
        hits: BTreeSet::new(),
        guard_depth: 0,
    };
    c.visit_program(program);
    let mut hits = c.hits;

    // concatenation / interpolation along the flow path
    if candidate
        .path
        .iter()
        .any(|s| {
            s.what.as_str().contains("concat") || s.what.as_str().contains("interpolation")
        })
    {
        hits.insert("concat_op");
    }

    // SQL query manipulation features from the literal fragments
    let text = candidate.literal_text().to_ascii_uppercase();
    if text.contains(" FROM ") || text.starts_with("FROM ") || text.contains(" FROM") {
        hits.insert("from_clause");
    }
    if text.contains("JOIN ")
        || text.contains("UNION")
        || text.contains("GROUP BY")
        || text.matches("SELECT").count() >= 2
    {
        hits.insert("complex_query");
    }
    for (agg, name) in [
        ("AVG(", "agg_avg"),
        ("COUNT(", "agg_count"),
        ("SUM(", "agg_sum"),
        ("MAX(", "agg_max"),
        ("MIN(", "agg_min"),
    ] {
        if text.contains(agg) {
            hits.insert(name);
        }
    }
    // numeric entry point: the fragment before the payload ends in `=`
    // without an opening quote, e.g. `... WHERE id = ` + $input
    if candidate.literal_fragments.iter().any(|f| {
        let t = f.trim_end();
        t.ends_with('=') && !t.ends_with("'=") && !f.trim_end_matches(' ').ends_with('\'')
    }) {
        hits.insert("numeric_entry_point");
    }

    let mut features = vec![0.0; wape_feature_count()];
    let mut present = Vec::new();
    for (i, s) in symptoms().iter().enumerate() {
        if hits.contains(s.name) {
            features[i] = 1.0;
            present.push(s.name);
        }
    }
    FeatureVector { features, present }
}

/// Refines a collected vector with CFG guard facts: *type checking* and
/// *pattern control* symptoms that the dominator-based guard analysis
/// could **not** prove to dominate the sink are cleared.
///
/// The plain collector counts any validation call that touches the flow's
/// variables, even on a branch the sink never takes; `guarded` holds the
/// validator names (`wap_cfg::GuardFact::validator`) actually proven to
/// dominate the sink. Cast guards map onto their function-call symptom
/// (`cast_int` → `intval`). The vector keeps its 60-feature shape — only
/// existing bits are cleared, never set, so the predictor's attribute
/// layout is untouched.
pub fn refine_with_guards(fv: &mut FeatureVector, guarded: &BTreeSet<String>) {
    let proven = |name: &str| {
        guarded.contains(name)
            || match name {
                "intval" => guarded.contains("cast_int"),
                "is_float" => guarded.contains("cast_float"),
                _ => false,
            }
    };
    for (i, s) in symptoms().iter().enumerate() {
        let refinable = matches!(s.group, Group::TypeChecking | Group::PatternControl);
        if refinable && fv.features[i] > 0.5 && !proven(s.name) {
            fv.features[i] = 0.0;
        }
    }
    fv.present = symptoms()
        .iter()
        .enumerate()
        .filter(|(i, _)| fv.features[*i] > 0.5)
        .map(|(_, s)| s.name)
        .collect();
}

/// Rewrites value-context symptoms from the sink context the
/// interprocedural value analysis derived (`--values` mode). `context`
/// is the kebab-case `wap_cfg::SinkContext` name:
///
/// * `numeric-cast` — the carrier is provably numeric at the sink; the
///   same signal as an `intval()` on the flow, the committee's strongest
///   false-positive cue, so the `intval` symptom is set.
/// * `quoted-string` — the lattice disproves the collector's syntactic
///   "numeric entry point" heuristic (payload lands inside quotes), so
///   that symptom is cleared.
/// * `identifier-position` — the payload provably lands unquoted, so
///   `numeric_entry_point` is set even when the syntactic heuristic
///   missed it.
///
/// The vector keeps its fixed feature shape — only named bits change —
/// and `present` is rebuilt like [`refine_with_guards`].
pub fn refine_with_sink_context(fv: &mut FeatureVector, context: &str) {
    let set = |fv: &mut FeatureVector, name: &str, on: bool| {
        if let Some(i) = crate::attributes::symptom_index(name) {
            fv.features[i] = if on { 1.0 } else { 0.0 };
        }
    };
    match context {
        "numeric-cast" => set(fv, "intval", true),
        "quoted-string" => set(fv, "numeric_entry_point", false),
        "identifier-position" => set(fv, "numeric_entry_point", true),
        _ => return,
    }
    fv.present = symptoms()
        .iter()
        .enumerate()
        .filter(|(i, _)| fv.features[*i] > 0.5)
        .map(|(_, s)| s.name)
        .collect();
}

struct Collector<'a> {
    relevant: &'a BTreeSet<String>,
    entries: &'a BTreeSet<String>,
    dynamic: &'a DynamicSymptomMap,
    hits: BTreeSet<&'static str>,
    /// Nonzero while walking statements guarded by a condition that
    /// references the flow — exit/error only count inside such guards.
    guard_depth: usize,
}

impl Collector<'_> {
    fn expr_is_relevant(&self, e: &Expr) -> bool {
        let mut found = false;
        let mut stack = vec![e];
        while let Some(e) = stack.pop() {
            match &e.kind {
                ExprKind::Var(n)
                    if self.relevant.contains(n.as_str())
                        || self.entries.contains(&format!("${n}")) =>
                {
                    found = true;
                    break;
                }
                ExprKind::ArrayDim { base, index } => {
                    // exact entry-point element, e.g. $_GET['id']
                    if let (ExprKind::Var(n), Some(i)) = (&base.kind, index.as_deref()) {
                        if let Some(key) = i.as_str_lit() {
                            if self.entries.contains(&format!("${n}['{key}']")) {
                                found = true;
                                break;
                            }
                        }
                    }
                    stack.push(base);
                    if let Some(i) = index {
                        stack.push(i);
                    }
                }
                ExprKind::Prop { base, .. } => stack.push(base),
                ExprKind::Binary { lhs, rhs, .. } => {
                    stack.push(lhs);
                    stack.push(rhs);
                }
                ExprKind::Unary { expr, .. }
                | ExprKind::Cast { expr, .. }
                | ExprKind::ErrorSuppress(expr)
                | ExprKind::Empty(expr) => stack.push(expr),
                ExprKind::Isset(args) => stack.extend(args.iter()),
                ExprKind::Call { args, .. } => stack.extend(args.iter()),
                ExprKind::MethodCall { target, args, .. } => {
                    stack.push(target);
                    stack.extend(args.iter());
                }
                ExprKind::Ternary {
                    cond,
                    then,
                    otherwise,
                } => {
                    stack.push(cond);
                    if let Some(t) = then {
                        stack.push(t);
                    }
                    stack.push(otherwise);
                }
                _ => {}
            }
        }
        found
    }

    fn record_call(&mut self, name: &str, args: &[Expr]) {
        if !args.iter().any(|a| self.expr_is_relevant(a)) {
            return;
        }
        // error-reporting helpers map to the `error` symptom
        let canonical: Option<&'static str> = match name.to_ascii_lowercase().as_str() {
            "trigger_error" | "error_log" | "user_error" => Some("error"),
            "str_pad" => Some("str_pad"),
            _ => None,
        };
        if let Some(c) = canonical {
            self.hits.insert(c);
            return;
        }
        // static symptom?
        if let Some(i) = symptom_index(name) {
            self.hits.insert(symptoms()[i].name);
            return;
        }
        // dynamic symptom?
        if let Some(equiv) = self.dynamic.resolve(name) {
            match equiv {
                "white_list" => {
                    self.hits.insert("white_list");
                }
                "black_list" => {
                    self.hits.insert("black_list");
                }
                other => {
                    if let Some(i) = symptom_index(other) {
                        self.hits.insert(symptoms()[i].name);
                    }
                }
            }
        }
    }
}

impl Visitor for Collector<'_> {
    fn visit_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Call { callee, args } => {
                if let ExprKind::Name(n) = &callee.kind {
                    self.record_call(n.as_str(), args);
                }
            }
            ExprKind::MethodCall { method, args, .. } => {
                self.record_call(method.as_str(), args);
            }
            ExprKind::Isset(args) if args.iter().any(|a| self.expr_is_relevant(a)) => {
                self.hits.insert("isset");
            }
            ExprKind::Empty(inner) if self.expr_is_relevant(inner) => {
                self.hits.insert("empty");
            }
            ExprKind::Exit(_) if self.guard_depth > 0 => {
                self.hits.insert("exit");
            }
            // `relevant_check($x) || exit` style guards
            ExprKind::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } if self.expr_is_relevant(lhs) || self.expr_is_relevant(rhs) => {
                self.guard_depth += 1;
                walk_expr(self, e);
                self.guard_depth -= 1;
                return;
            }
            ExprKind::Binary {
                op: BinOp::Concat,
                lhs,
                rhs,
            } if self.expr_is_relevant(lhs) || self.expr_is_relevant(rhs) => {
                self.hits.insert("concat_op");
            }
            _ => {}
        }
        walk_expr(self, e);
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        if let StmtKind::If { cond, .. } = &s.kind {
            if self.expr_is_relevant(cond) {
                self.guard_depth += 1;
                walk_stmt(self, s);
                self.guard_depth -= 1;
                return;
            }
        }
        walk_stmt(self, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_catalog::Catalog;
    use wap_php::parse;
    use wap_taint::analyze_program;

    fn candidate_and_program(src: &str) -> (Program, Candidate) {
        let program = parse(src).expect("parse");
        let found = analyze_program(&Catalog::wape(), &program);
        assert!(!found.is_empty(), "no candidate found in test source");
        let c = found[0].clone();
        (program, c)
    }

    #[test]
    fn collects_validation_guards() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $id = $_GET['id'];
            if (isset($_GET['id']) && is_numeric($id)) {
                mysql_query("SELECT * FROM users WHERE id = $id");
            } else {
                exit;
            }"#,
        );
        let fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(fv.has("isset"), "present: {:?}", fv.present);
        assert!(fv.has("is_numeric"));
        assert!(fv.has("exit"));
        assert!(fv.has("from_clause"));
        assert!(fv.has("concat_op"), "interpolation counts as concatenation");
    }

    #[test]
    fn collects_string_manipulation() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $name = trim(substr($_POST['name'], 0, 32));
            $name = str_replace('--', '', $name);
            mysql_query("SELECT * FROM t WHERE name = '$name'");"#,
        );
        let fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(fv.has("trim"));
        assert!(fv.has("substr"));
        assert!(fv.has("str_replace"));
    }

    #[test]
    fn collects_sql_features() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $id = $_GET['id'];
            mysql_query("SELECT COUNT(*) FROM a JOIN b ON a.x = b.x WHERE a.id = $id");"#,
        );
        let fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(fv.has("from_clause"));
        assert!(fv.has("complex_query"));
        assert!(fv.has("agg_count"));
        assert!(
            fv.has("numeric_entry_point"),
            "id = <payload> is numeric position"
        );
    }

    #[test]
    fn quoted_entry_is_not_numeric_position() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $n = $_GET['n'];
            mysql_query("SELECT * FROM t WHERE name = '$n'");"#,
        );
        let fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(!fv.has("numeric_entry_point"), "present: {:?}", fv.present);
    }

    #[test]
    fn unrelated_code_is_ignored() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $other = trim($_POST['other']);
            if (is_numeric($other)) { echo 'ok'; }
            $id = $_GET['id'];
            mysql_query("SELECT * FROM t WHERE id = $id");"#,
        );
        let fv = collect(&p, &c, &DynamicSymptomMap::new());
        // trim/is_numeric guard $other, which is part of ANOTHER flow —
        // but $other is itself a carrier of the echoed XSS candidate, not
        // of this SQLI candidate
        assert!(!fv.has("trim"), "present: {:?}", fv.present);
        assert!(!fv.has("is_numeric"));
    }

    #[test]
    fn dynamic_symptoms_resolve_to_equivalents() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $id = $_GET['id'];
            if (!val_int($id)) { die('bad'); }
            mysql_query("SELECT * FROM t WHERE id = $id");"#,
        );
        // without the mapping, val_int is unknown
        let fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(!fv.has("is_int"));
        // with the mapping (the paper's val_int example)
        let mut dm = DynamicSymptomMap::new();
        dm.insert("val_int", "is_int");
        let fv = collect(&p, &c, &dm);
        assert!(fv.has("is_int"));
        assert!(fv.has("exit"), "die() is the exit symptom");
    }

    #[test]
    fn white_list_pseudo_symptom() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $page = $_GET['page'];
            if (!allowed_page($page)) { exit; }
            include 'pages/' . $page;"#,
        );
        let mut dm = DynamicSymptomMap::new();
        dm.insert("allowed_page", "white_list");
        let fv = collect(&p, &c, &dm);
        assert!(fv.has("white_list"));
    }

    #[test]
    fn feature_vector_shape() {
        let (p, c) = candidate_and_program(r#"<?php echo $_GET['x'];"#);
        let fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert_eq!(fv.features.len(), 60);
        assert!(fv.features.iter().all(|v| *v == 0.0 || *v == 1.0));
        assert_eq!(
            fv.present.len(),
            fv.features.iter().filter(|v| **v > 0.5).count()
        );
    }

    #[test]
    fn guard_refinement_clears_unproven_validation() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $id = $_GET['id'];
            if (is_numeric($id)) { echo 'numeric'; }
            mysql_query("SELECT * FROM t WHERE id = $id");"#,
        );
        let mut fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(fv.has("is_numeric"), "collector sees the branch guard");
        assert!(fv.has("from_clause"));
        // no guard dominates the sink (guard is on a side branch)
        refine_with_guards(&mut fv, &BTreeSet::new());
        assert!(!fv.has("is_numeric"), "present: {:?}", fv.present);
        assert!(fv.has("from_clause"), "non-validation symptoms survive");
        assert_eq!(fv.features.len(), 60);
        assert_eq!(
            fv.present.len(),
            fv.features.iter().filter(|v| **v > 0.5).count()
        );
    }

    #[test]
    fn guard_refinement_keeps_proven_validators() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $id = $_GET['id'];
            if (!is_numeric($id)) { exit; }
            mysql_query("SELECT * FROM t WHERE id = $id");"#,
        );
        let mut fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(fv.has("is_numeric"));
        let guarded: BTreeSet<String> = ["is_numeric".to_string()].into();
        refine_with_guards(&mut fv, &guarded);
        assert!(fv.has("is_numeric"), "dominating guard is kept");
    }

    #[test]
    fn guard_refinement_maps_cast_guards() {
        let (p, c) = candidate_and_program(
            r#"<?php
            $id = $_GET['id'];
            $n = intval($id);
            mysql_query("SELECT * FROM t WHERE id = $id");"#,
        );
        let mut fv = collect(&p, &c, &DynamicSymptomMap::new());
        assert!(fv.has("intval"));
        let guarded: BTreeSet<String> = ["cast_int".to_string()].into();
        refine_with_guards(&mut fv, &guarded);
        assert!(fv.has("intval"), "cast_int proves the intval symptom");
    }

    #[test]
    fn catalog_dynamic_symptoms() {
        let mut cat = Catalog::wape();
        cat.add_weapon(wap_catalog::WeaponConfig::wpsqli());
        let dm = DynamicSymptomMap::from_catalog(&cat);
        assert!(!dm.is_empty());
        assert_eq!(dm.resolve("absint"), Some("intval"));
    }
}
