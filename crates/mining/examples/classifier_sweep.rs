//! Re-evaluation of machine learning classifiers (§III-B.1): 10-fold
//! cross-validation of every classifier family on the 256-instance data
//! set, printing the Table II metrics.

use wap_mining::{cross_validate, ClassifierKind, Dataset, Metrics};

fn main() {
    let d = Dataset::wape(42);
    println!(
        "{:<22} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "classifier", "acc", "tpp", "pfp", "prfp", "inform"
    );
    for k in ClassifierKind::all() {
        let cm = cross_validate(k, &d.x, &d.y, 10, 42);
        let m = Metrics::from_confusion(&cm);
        println!(
            "{:<22} {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>6.3}",
            k.name(),
            m.acc,
            m.tpp,
            m.pfp,
            m.prfp,
            m.inform
        );
    }
}
