//! In-memory source overlays: unsaved editor buffers as first-class
//! scan input.
//!
//! The pipeline already analyzes `(name, contents)` pairs, so nothing in
//! `WapTool` cares whether bytes came from disk. What an LSP front-end
//! needs on top is the *merge*: scan a directory tree while some files'
//! contents come from open editor buffers instead of disk (and some
//! buffers name files that do not exist on disk yet).
//! [`collect_sources_with_overlay`] produces exactly the source list a
//! cold CLI scan would see if every buffer were saved — same walk, same
//! ordering, same display names — so live diagnostics converge
//! byte-identically to a batch scan once buffer and disk agree.
//!
//! Cache keying needs no changes: incremental-cache keys hash file
//! *content* (plus the config fingerprint), never paths or mtimes, so an
//! overlaid buffer hits or misses the cache exactly as its saved
//! counterpart would.

use crate::cli::collect_php_files;
use crate::error::WapError;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// A set of `path → contents` entries that shadow the filesystem during
/// source collection. Paths are the display-path strings the pipeline
/// uses as file names (what `Path::display` yields for the scanned
/// tree), so an overlay entry and its on-disk counterpart collide on the
/// same name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourceOverlay {
    entries: BTreeMap<String, String>,
}

impl SourceOverlay {
    /// An empty overlay (collection falls through to disk everywhere).
    pub fn new() -> SourceOverlay {
        SourceOverlay::default()
    }

    /// Inserts or replaces the buffer for `path`.
    pub fn insert(&mut self, path: impl Into<String>, contents: impl Into<String>) {
        self.entries.insert(path.into(), contents.into());
    }

    /// Removes the buffer for `path` (subsequent collection reads disk
    /// again); returns the removed contents.
    pub fn remove(&mut self, path: &str) -> Option<String> {
        self.entries.remove(path)
    }

    /// The buffer for `path`, when one is held.
    pub fn get(&self, path: &str) -> Option<&str> {
        self.entries.get(path).map(String::as_str)
    }

    /// Whether no buffers are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of buffers held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Every overlaid path, in sorted order.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }
}

/// Collects `.php` sources under `paths` with `overlay` shadowing the
/// filesystem: overlaid contents win over disk for matching names, and
/// overlay-only `.php` paths join the scan as if they existed on disk.
/// The result uses the same recursive walk, sort order, and display
/// names as the CLI's collection, so analyzing it is byte-identical to a
/// cold scan of a tree where every buffer has been saved.
///
/// # Errors
///
/// Returns [`WapError::Io`]/[`WapError::Usage`] from the directory walk
/// or an unreadable non-overlaid file.
pub fn collect_sources_with_overlay(
    paths: &[PathBuf],
    overlay: &SourceOverlay,
) -> Result<Vec<(String, String)>, WapError> {
    let mut files = collect_php_files(paths)?;
    for p in overlay.paths() {
        let pb = PathBuf::from(p);
        if pb.extension().map(|e| e == "php").unwrap_or(false) {
            files.push(pb);
        }
    }
    // same ordering contract as a plain collection: PathBuf sort + dedup,
    // so an overlay-only file lands exactly where its saved version would
    files.sort();
    files.dedup();
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        let name = f.display().to_string();
        let contents = match overlay.get(&name) {
            Some(buf) => buf.to_string(),
            None => std::fs::read_to_string(f).map_err(|e| WapError::io(f, e))?,
        };
        sources.push((name, contents));
    }
    Ok(sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wap-overlay-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn overlay_shadows_disk_and_adds_new_files() {
        let dir = tmpdir("shadow");
        std::fs::write(dir.join("a.php"), "<?php echo 'disk';\n").unwrap();
        std::fs::write(dir.join("b.php"), "<?php echo 'kept';\n").unwrap();
        let mut overlay = SourceOverlay::new();
        overlay.insert(
            dir.join("a.php").display().to_string(),
            "<?php echo 'buffer';\n",
        );
        overlay.insert(
            dir.join("new.php").display().to_string(),
            "<?php echo 'fresh';\n",
        );
        overlay.insert(
            dir.join("notes.txt").display().to_string(),
            "not php, never collected",
        );
        let sources = collect_sources_with_overlay(&[dir.clone()], &overlay).unwrap();
        let names: Vec<&str> = sources.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names.len(), 3, "{names:?}");
        assert!(names[0].ends_with("a.php"));
        assert!(names[1].ends_with("b.php"));
        assert!(names[2].ends_with("new.php"));
        assert_eq!(sources[0].1, "<?php echo 'buffer';\n");
        assert_eq!(sources[1].1, "<?php echo 'kept';\n");
        assert_eq!(sources[2].1, "<?php echo 'fresh';\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn saved_overlay_matches_plain_collection() {
        let dir = tmpdir("saved");
        std::fs::write(dir.join("x.php"), "<?php echo $_GET['v'];\n").unwrap();
        std::fs::write(dir.join("y.php"), "<?php echo 1;\n").unwrap();
        let mut overlay = SourceOverlay::new();
        // buffer content identical to disk: collection must be identical
        overlay.insert(
            dir.join("x.php").display().to_string(),
            "<?php echo $_GET['v'];\n",
        );
        let with = collect_sources_with_overlay(&[dir.clone()], &overlay).unwrap();
        let without = collect_sources_with_overlay(&[dir.clone()], &SourceOverlay::new()).unwrap();
        assert_eq!(with, without);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_falls_back_to_disk() {
        let dir = tmpdir("remove");
        let path = dir.join("f.php").display().to_string();
        std::fs::write(dir.join("f.php"), "<?php echo 'disk';\n").unwrap();
        let mut overlay = SourceOverlay::new();
        overlay.insert(&path, "<?php echo 'buffer';\n");
        assert_eq!(overlay.get(&path), Some("<?php echo 'buffer';\n"));
        assert_eq!(overlay.len(), 1);
        assert!(!overlay.is_empty());
        overlay.remove(&path);
        assert!(overlay.is_empty());
        let sources = collect_sources_with_overlay(&[dir.clone()], &overlay).unwrap();
        assert_eq!(sources[0].1, "<?php echo 'disk';\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overlay_only_scan_needs_no_disk() {
        let dir = tmpdir("nodisk");
        let mut overlay = SourceOverlay::new();
        overlay.insert(
            dir.join("mem.php").display().to_string(),
            "<?php echo $_GET['q'];\n",
        );
        // scanning the (empty) dir still picks up the unsaved buffer
        let sources = collect_sources_with_overlay(&[dir.clone()], &overlay).unwrap();
        assert_eq!(sources.len(), 1);
        assert!(sources[0].0.ends_with("mem.php"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
