//! Incremental analysis: the cached counterpart of
//! [`WapTool::analyze_sources`].
//!
//! A warm run must produce findings **bit-identical** to a cold run at any
//! job count. The module achieves that by caching exactly the artifacts the
//! cold pipeline joins on, never intermediate heuristics:
//!
//! - **decl entries** — keyed by file *content* only: the declared function
//!   names and per-function fingerprints (or the parse error). These let a
//!   warm run know every file's contribution to the global function index
//!   without parsing anything.
//! - **pass entries** — one per (file, pass) holding the file's
//!   [`PassArtifacts`]: its canonical function summaries and phase-A/B
//!   candidates. Keyed by the file content, the file's *dependency
//!   digest* (the span-source fingerprints of exactly the declarations
//!   the file transitively references, so editing one function
//!   invalidates only its own file and the files that actually depend on
//!   it), and the tool configuration.
//! - **findings entries** — one per file with candidates, holding the
//!   prediction + symptom vector for each of the file's candidates, in
//!   candidate-stream order, guarded by a digest of those candidates.
//!
//! Every payload decoder is total and every validation failure degrades to
//! a recompute (or, for structural surprises such as duplicate file names,
//! to a plain cold run) — a corrupted cache can cost time, never
//! correctness.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Instant;

use wap_cache::{CacheStore, CacheTier, CodecError, Reader, Writer};
use wap_mining::{collect, intern_symptom_name, FeatureVector, Prediction};
use wap_php::fingerprint::fields_hash;
use wap_php::{content_hash, parse, Blake2s, ParseError, Program, Span, Symbol};
use wap_runtime::Runtime;
use wap_taint::serial::write_candidate;
use wap_taint::{
    declared_names, dedup_and_sort, function_fingerprint, function_refs, pass_candidates,
    referenced_names, run_pass_incremental_with_resolutions, Candidate, FileResolution,
    PassArtifacts, PassInput,
};

use wap_obs::{JobHandle, Phase};

use crate::pipeline::{elapsed_ns, scan_stats, AppReport, Finding, WapTool};

/// Bumped whenever key derivation or any payload layout in this module
/// changes; combined with the tool version so entries never cross builds.
const CACHE_SCHEMA: &str = "core-cache-v3";

/// The tool-version component of every cache key. This is the same
/// constant stamped into reports and the SARIF `tool.driver`, so a
/// version bump invalidates cached artifacts and changes the advertised
/// tool version atomically — the two can never drift apart.
const TOOL_VERSION_KEY: &str = wap_report::TOOL_VERSION;

/// The observability event name for a cache hit served by `tier`.
/// Peer-served hits are labeled distinctly so fleet traces show which
/// warmth came over the wire; the probe sites themselves stay
/// backend-agnostic — they never learn what storage answered.
pub(crate) fn hit_event(tier: CacheTier) -> &'static str {
    match tier {
        CacheTier::Remote => "remote_cache_hit",
        CacheTier::Memory | CacheTier::Local => "cache_hit",
    }
}

fn decl_key(hash: &str) -> String {
    fields_hash(["decl", CACHE_SCHEMA, TOOL_VERSION_KEY, hash])
}

fn pass_key(second: bool, file: &str, hash: &str, deps_digest: &str, config_fp: &str) -> String {
    fields_hash([
        "pass",
        CACHE_SCHEMA,
        TOOL_VERSION_KEY,
        if second { "2" } else { "1" },
        file,
        hash,
        deps_digest,
        config_fp,
    ])
}

fn findings_key(
    file: &str,
    hash: &str,
    deps_digest: &str,
    config_fp: &str,
    ran_pass2: bool,
) -> String {
    fields_hash([
        "find",
        CACHE_SCHEMA,
        TOOL_VERSION_KEY,
        file,
        hash,
        deps_digest,
        config_fp,
        if ran_pass2 { "1" } else { "0" },
    ])
}

/// Everything cached runs need to know about what analysis they are
/// running: catalog contents (weapons included), generation, training
/// seed, analysis options, and whether CFG guard refinement is on. Any
/// difference must yield disjoint keys.
pub(crate) fn config_fingerprint(tool: &WapTool) -> String {
    let base = [
        tool.catalog.fingerprint_material(),
        format!("{:?}", tool.config.generation),
        tool.config.seed.to_string(),
        format!("{:?}", tool.config.analysis),
        format!("guards:{}", tool.config.guard_attributes),
    ];
    // the field joins only when value analysis is on, so value-less
    // fingerprints stay identical to the historical four-field scheme
    if tool.config.values {
        fields_hash(base.into_iter().chain(["values:true".to_string()]))
    } else {
        fields_hash(base)
    }
}

/// Key of one `cfg` entry: the lint findings of one file. Content-
/// addressed by the file bytes and the configuration fingerprint, so a
/// catalog change (new weapon lint rule, different sink set) invalidates
/// cached lint results exactly like it invalidates findings. `rules_fp`
/// joins the key only when rule packs are active, so installing or
/// upgrading a pack re-keys exactly the `cfg` entries while pack-less
/// keys stay byte-identical to the historical scheme.
pub(crate) fn cfg_lint_key(file: &str, hash: &str, config_fp: &str, rules_fp: &str) -> String {
    if rules_fp.is_empty() {
        fields_hash(["cfg", CACHE_SCHEMA, TOOL_VERSION_KEY, file, hash, config_fp])
    } else {
        fields_hash([
            "cfg",
            CACHE_SCHEMA,
            TOOL_VERSION_KEY,
            file,
            hash,
            config_fp,
            rules_fp,
        ])
    }
}

pub(crate) fn encode_lint(findings: &[wap_cfg::LintFinding]) -> Vec<u8> {
    let mut w = Writer::new();
    w.seq(findings.len());
    for f in findings {
        w.str(&f.rule_id);
        w.str(f.severity.as_str());
        w.str(&f.file);
        w.u32(f.line);
        w.u32(f.span.start());
        w.u32(f.span.end());
        w.u32(f.span.line());
        w.str(&f.message);
    }
    w.into_bytes()
}

pub(crate) fn decode_lint(bytes: &[u8]) -> Result<Vec<wap_cfg::LintFinding>, CodecError> {
    let mut r = Reader::new(bytes);
    let n = r.seq()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let rule_id = r.str()?;
        let severity = r.str()?;
        let severity = wap_cfg::Severity::parse(&severity)
            .ok_or_else(|| CodecError(format!("unknown lint severity {severity:?}")))?;
        let file = r.str()?;
        let line = r.u32()?;
        let (start, end, span_line) = (r.u32()?, r.u32()?, r.u32()?);
        if end < start {
            return Err(CodecError(format!("span end {end} before start {start}")));
        }
        let message = r.str()?;
        out.push(wap_cfg::LintFinding {
            rule_id,
            severity,
            file,
            line,
            span: Span::new(start, end, span_line),
            message,
        });
    }
    if !r.is_empty() {
        return Err(CodecError(format!(
            "{} trailing bytes after lint entry",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Key of one `values` entry: the value-analysis resolution facts of one
/// file (`--values`). Keyed by the file content, the scan-set membership
/// digest (include resolution only targets scan-set file names, so adding
/// or removing a file can change what resolves), the file's dependency
/// digest (value summaries derive from the same declaration closure the
/// taint digest covers), and the configuration.
fn values_key(file: &str, hash: &str, scanset: &str, deps_digest: &str, config_fp: &str) -> String {
    fields_hash([
        "values",
        CACHE_SCHEMA,
        TOOL_VERSION_KEY,
        file,
        hash,
        scanset,
        deps_digest,
        config_fp,
    ])
}

fn encode_values(r: &wap_cfg::ValueResolution) -> Vec<u8> {
    let mut w = Writer::new();
    let targets_seq = |w: &mut Writer, map: &std::collections::BTreeMap<u32, Vec<String>>| {
        w.seq(map.len());
        for (off, targets) in map {
            w.u32(*off);
            w.seq(targets.len());
            for t in targets {
                w.str(t);
            }
        }
    };
    targets_seq(&mut w, &r.includes);
    w.seq(r.unresolved_includes.len());
    for s in &r.unresolved_includes {
        w.u32(s.start());
        w.u32(s.end());
        w.u32(s.line());
    }
    targets_seq(&mut w, &r.calls);
    w.usize(r.dynamic_includes_resolved);
    w.usize(r.dynamic_calls_resolved);
    w.usize(r.dynamic_calls_unresolved);
    w.into_bytes()
}

fn decode_values(bytes: &[u8]) -> Result<wap_cfg::ValueResolution, CodecError> {
    let mut r = Reader::new(bytes);
    let targets_map = |r: &mut Reader| -> Result<_, CodecError> {
        let n = r.seq()?;
        let mut map = std::collections::BTreeMap::new();
        for _ in 0..n {
            let off = r.u32()?;
            let tn = r.seq()?;
            let mut targets = Vec::with_capacity(tn.min(1024));
            for _ in 0..tn {
                targets.push(r.str()?);
            }
            map.insert(off, targets);
        }
        Ok(map)
    };
    let includes = targets_map(&mut r)?;
    let n = r.seq()?;
    let mut unresolved_includes = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let (start, end, line) = (r.u32()?, r.u32()?, r.u32()?);
        if end < start {
            return Err(CodecError(format!("span end {end} before start {start}")));
        }
        unresolved_includes.push(Span::new(start, end, line));
    }
    let calls = targets_map(&mut r)?;
    let out = wap_cfg::ValueResolution {
        includes,
        unresolved_includes,
        calls,
        dynamic_includes_resolved: r.usize()?,
        dynamic_calls_resolved: r.usize()?,
        dynamic_calls_unresolved: r.usize()?,
    };
    if !r.is_empty() {
        return Err(CodecError(format!(
            "{} trailing bytes after values entry",
            r.remaining()
        )));
    }
    Ok(out)
}

/// One declared function in a decl entry.
#[derive(Clone)]
struct DeclRecord {
    /// Lowercased function name.
    name: String,
    /// Span-source fingerprint of the declaration.
    fp: String,
    /// Lowercased call targets the declaration references, sorted.
    refs: Vec<String>,
}

/// What a decl entry records about one source file.
enum DeclInfo {
    /// A parseable file: its declarations in declaration order, plus the
    /// lowercased call targets referenced anywhere in the file (sorted).
    Decls {
        decls: Vec<DeclRecord>,
        refs: Vec<String>,
    },
    /// The file does not parse.
    Unparsed { message: String, span: Span },
}

fn encode_decl(info: &DeclInfo) -> Vec<u8> {
    let mut w = Writer::new();
    match info {
        DeclInfo::Decls { decls, refs } => {
            w.bool(true);
            w.seq(decls.len());
            for d in decls {
                w.str(&d.name);
                w.str(&d.fp);
                w.seq(d.refs.len());
                for r in &d.refs {
                    w.str(r);
                }
            }
            w.seq(refs.len());
            for r in refs {
                w.str(r);
            }
        }
        DeclInfo::Unparsed { message, span } => {
            w.bool(false);
            w.str(message);
            w.u32(span.start());
            w.u32(span.end());
            w.u32(span.line());
        }
    }
    w.into_bytes()
}

fn decode_decl(bytes: &[u8]) -> Result<DeclInfo, CodecError> {
    let mut r = Reader::new(bytes);
    let info = if r.bool()? {
        let n = r.seq()?;
        let mut decls = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let fp = r.str()?;
            let rn = r.seq()?;
            let mut refs = Vec::with_capacity(rn.min(1024));
            for _ in 0..rn {
                refs.push(r.str()?);
            }
            decls.push(DeclRecord { name, fp, refs });
        }
        let rn = r.seq()?;
        let mut refs = Vec::with_capacity(rn.min(4096));
        for _ in 0..rn {
            refs.push(r.str()?);
        }
        DeclInfo::Decls { decls, refs }
    } else {
        let message = r.str()?;
        let (start, end, line) = (r.u32()?, r.u32()?, r.u32()?);
        if end < start {
            return Err(CodecError(format!("span end {end} before start {start}")));
        }
        DeclInfo::Unparsed {
            message,
            span: Span::new(start, end, line),
        }
    };
    if !r.is_empty() {
        return Err(CodecError(format!(
            "{} trailing bytes after decl entry",
            r.remaining()
        )));
    }
    Ok(info)
}

/// One parsed-ok source file in input order — the unit the taint passes
/// and the findings cache operate on (mirrors the cold path's `parsed`).
struct FileMeta {
    /// Index into the original `sources` slice.
    src: usize,
    name: String,
    hash: String,
    /// Declarations in declaration order.
    decls: Vec<DeclRecord>,
    /// Lowercased call targets referenced anywhere in the file, sorted.
    refs: Vec<String>,
}

fn encode_findings(digest: &str, findings: &[Option<Finding>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.str(digest);
    w.seq(findings.len());
    for f in findings {
        let f = f.as_ref().expect("findings group fully computed");
        w.bool(f.prediction.is_false_positive);
        w.usize(f.prediction.votes);
        w.seq(f.prediction.justification.len());
        for j in &f.prediction.justification {
            w.str(j);
        }
        w.seq(f.symptoms.features.len());
        for v in &f.symptoms.features {
            w.f64(*v);
        }
        w.seq(f.symptoms.present.len());
        for p in &f.symptoms.present {
            w.str(p);
        }
    }
    w.into_bytes()
}

/// Re-interns a symptom name against the static table. Names that are not
/// in this build's table mark the entry as foreign → corrupt.
fn intern(name: &str) -> Result<&'static str, CodecError> {
    intern_symptom_name(name).ok_or_else(|| CodecError(format!("unknown symptom name {name:?}")))
}

fn decode_findings(
    bytes: &[u8],
    expected_digest: &str,
    cands: &[Candidate],
) -> Result<Vec<Finding>, CodecError> {
    let mut r = Reader::new(bytes);
    let digest = r.str()?;
    if digest != expected_digest {
        return Err(CodecError("candidate digest mismatch".into()));
    }
    let n = r.seq()?;
    if n != cands.len() {
        return Err(CodecError(format!(
            "entry has {n} findings, group has {}",
            cands.len()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for c in cands {
        let is_false_positive = r.bool()?;
        let votes = r.usize()?;
        let jn = r.seq()?;
        let mut justification = Vec::with_capacity(jn);
        for _ in 0..jn {
            justification.push(intern(&r.str()?)?);
        }
        let fc = r.seq()?;
        let mut features = Vec::with_capacity(fc);
        for _ in 0..fc {
            features.push(r.f64()?);
        }
        let pc = r.seq()?;
        let mut present = Vec::with_capacity(pc);
        for _ in 0..pc {
            present.push(intern(&r.str()?)?);
        }
        out.push(Finding {
            candidate: c.clone(),
            prediction: Prediction {
                is_false_positive,
                votes,
                justification,
            },
            symptoms: FeatureVector { features, present },
        });
    }
    if !r.is_empty() {
        return Err(CodecError(format!(
            "{} trailing bytes after findings entry",
            r.remaining()
        )));
    }
    Ok(out)
}

/// Parses every file in `want` that has no program yet, in parallel.
///
/// Returns `None` when a file the decl cache recorded as parseable fails
/// to parse — the entry lied (hand-edited, hash collision); it is
/// rejected and the whole run falls back to the cold path.
#[allow(clippy::too_many_arguments)]
fn ensure_parsed(
    runtime: &Runtime,
    store: &CacheStore,
    sources: &[(String, String)],
    files: &[FileMeta],
    programs: &mut [Option<Program>],
    want: &[usize],
    parse_ns: &mut u64,
    obs: JobHandle<'_>,
) -> Option<()> {
    let need: Vec<usize> = want
        .iter()
        .copied()
        .filter(|&i| programs[i].is_none())
        .collect();
    if need.is_empty() {
        return Some(());
    }
    let t = Instant::now();
    let results = runtime.map(need.clone(), |_, i| {
        let _span = obs.span_file(Phase::Parse, &files[i].name);
        parse(&sources[files[i].src].1)
    });
    *parse_ns += elapsed_ns(t);
    for (&i, result) in need.iter().zip(results) {
        match result {
            Ok(p) => programs[i] = Some(p),
            Err(_) => {
                store.reject(&decl_key(&files[i].hash));
                return None;
            }
        }
    }
    Some(())
}

/// The value stage's products (`--values`), shared by the taint-pass and
/// findings stages of a cached run.
struct ValuesState {
    /// Per-file resolution facts, index-aligned with the run's `files`.
    per_file: Vec<wap_cfg::ValueResolution>,
    /// Full value facts (snapshots included) for files analyzed fresh
    /// this run; hit files re-derive them only if a findings group needs
    /// sink contexts.
    file_values: HashMap<usize, wap_cfg::FileValues>,
    /// Merged function value summaries, once some stage computed them.
    summaries: Option<HashMap<Symbol, wap_cfg::ValueSummary>>,
    /// Scan-set file names — the include-resolution target universe.
    known: BTreeSet<String>,
}

/// Merges per-file value summaries first-declaration-wins in file order —
/// the same canonical owner rule the taint function index applies. Files
/// without declarations contribute nothing, so only decl-bearing files
/// need programs.
fn compute_value_summaries(
    runtime: &Runtime,
    files: &[FileMeta],
    programs: &[Option<Program>],
) -> HashMap<Symbol, wap_cfg::ValueSummary> {
    let lists: Vec<Vec<(Symbol, wap_cfg::ValueSummary)>> =
        runtime.run(files.len(), |i| match &programs[i] {
            Some(p) if !files[i].decls.is_empty() => wap_cfg::summarize_values(p),
            _ => Vec::new(),
        });
    let mut summaries = HashMap::new();
    for list in lists {
        for (name, s) in list {
            summaries.entry(name).or_insert(s);
        }
    }
    summaries
}

/// Looks up every file's `values` entry, re-interprets only the misses
/// (which needs the merged summaries, hence every decl-bearing program),
/// and writes fresh resolution facts back.
#[allow(clippy::too_many_arguments)]
fn run_values_cached(
    store: &CacheStore,
    runtime: &Runtime,
    sources: &[(String, String)],
    files: &[FileMeta],
    programs: &mut [Option<Program>],
    deps_digests: &[String],
    config_fp: &str,
    parse_ns: &mut u64,
    values_ns: &mut u64,
    cache_ns: &mut u64,
    obs: JobHandle<'_>,
) -> Option<ValuesState> {
    let scanset = fields_hash(files.iter().map(|f| f.name.as_str()));
    let keys: Vec<String> = files
        .iter()
        .enumerate()
        .map(|(i, f)| values_key(&f.name, &f.hash, &scanset, &deps_digests[i], config_fp))
        .collect();
    let t = Instant::now();
    let mut cached: Vec<Option<wap_cfg::ValueResolution>> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| match store.probe(k) {
            Some((p, tier)) => match decode_values(&p) {
                Ok(r) => {
                    obs.event_file(hit_event(tier), &files[i].name);
                    Some(r)
                }
                Err(_) => {
                    obs.event_file("cache_corrupt", &files[i].name);
                    store.reject(k);
                    None
                }
            },
            None => {
                obs.event_file("cache_miss", &files[i].name);
                None
            }
        })
        .collect();
    *cache_ns += elapsed_ns(t);

    let mut state = ValuesState {
        per_file: vec![wap_cfg::ValueResolution::default(); files.len()],
        file_values: HashMap::new(),
        summaries: None,
        known: files.iter().map(|f| f.name.clone()).collect(),
    };
    let miss: Vec<usize> = cached
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_none())
        .map(|(i, _)| i)
        .collect();
    if !miss.is_empty() {
        let want: Vec<usize> = files
            .iter()
            .enumerate()
            .filter(|(i, f)| cached[*i].is_none() || !f.decls.is_empty())
            .map(|(i, _)| i)
            .collect();
        ensure_parsed(
            runtime, store, sources, files, programs, &want, parse_ns, obs,
        )?;
        let t = Instant::now();
        let summaries = compute_value_summaries(runtime, files, programs);
        let computed: Vec<wap_cfg::FileValues> = runtime.map(miss.clone(), |_, i| {
            let _span = obs.span_file(Phase::Values, &files[i].name);
            wap_cfg::analyze_file_values(
                &files[i].name,
                programs[i].as_ref().expect("parsed for values"),
                &summaries,
                &state.known,
            )
        });
        *values_ns += elapsed_ns(t);
        let t = Instant::now();
        for (&i, fv) in miss.iter().zip(computed) {
            store.put(&keys[i], encode_values(&fv.resolution));
            state.per_file[i] = fv.resolution.clone();
            state.file_values.insert(i, fv);
        }
        *cache_ns += elapsed_ns(t);
        state.summaries = Some(summaries);
    }
    for (i, c) in cached.iter_mut().enumerate() {
        if let Some(r) = c.take() {
            state.per_file[i] = r;
        }
    }
    Some(state)
}

/// Looks up one pass's artifacts for every file, re-analyzes only the
/// misses (parsing exactly the files the incremental contract requires),
/// and writes fresh artifacts back.
#[allow(clippy::too_many_arguments)]
fn run_cached_pass(
    tool: &WapTool,
    store: &CacheStore,
    runtime: &Runtime,
    sources: &[(String, String)],
    files: &[FileMeta],
    programs: &mut [Option<Program>],
    deps_digests: &[String],
    config_fp: &str,
    resolutions: &HashMap<String, FileResolution>,
    include_targets: &[usize],
    second: bool,
    parse_ns: &mut u64,
    taint_ns: &mut u64,
    cache_ns: &mut u64,
    obs: JobHandle<'_>,
) -> Option<Vec<PassArtifacts>> {
    let t = Instant::now();
    let keys: Vec<String> = files
        .iter()
        .enumerate()
        .map(|(i, f)| pass_key(second, &f.name, &f.hash, &deps_digests[i], config_fp))
        .collect();
    let mut cached: Vec<Option<PassArtifacts>> = keys
        .iter()
        .enumerate()
        .map(|(i, k)| match store.probe(k) {
            Some((p, tier)) => match PassArtifacts::from_bytes(&p) {
                Ok(a) => {
                    obs.event_file(hit_event(tier), &files[i].name);
                    Some(a)
                }
                Err(_) => {
                    obs.event_file("cache_corrupt", &files[i].name);
                    store.reject(k);
                    None
                }
            },
            None => {
                obs.event_file("cache_miss", &files[i].name);
                None
            }
        })
        .collect();
    *cache_ns += elapsed_ns(t);

    if cached.iter().any(|c| c.is_none()) {
        // fresh files must be parsed; so must every decl-bearing file, so
        // lazy foreign-function walks see exactly what a cold run sees —
        // and, with value analysis on, every resolved include target, so
        // inlined include execution sees the same programs a cold run does
        let want: Vec<usize> = files
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                cached[*i].is_none()
                    || !f.decls.is_empty()
                    || include_targets.binary_search(i).is_ok()
            })
            .map(|(i, _)| i)
            .collect();
        ensure_parsed(
            runtime, store, sources, files, programs, &want, parse_ns, obs,
        )?;
    }

    let inputs: Vec<PassInput<'_>> = files
        .iter()
        .enumerate()
        .map(|(i, f)| PassInput {
            name: f.name.clone(),
            program: programs[i].as_ref(),
            decl_names: f.decls.iter().map(|d| Symbol::intern(&d.name)).collect(),
            cached: cached[i].take(),
        })
        .collect();

    let t = Instant::now();
    let outcome = run_pass_incremental_with_resolutions(
        &tool.catalog,
        &tool.config.analysis,
        &inputs,
        resolutions,
        runtime,
        second,
        obs,
    );
    *taint_ns += elapsed_ns(t);

    let t = Instant::now();
    for (i, is_fresh) in outcome.fresh.iter().enumerate() {
        if *is_fresh {
            store.put(&keys[i], outcome.artifacts[i].to_bytes());
        }
    }
    *cache_ns += elapsed_ns(t);
    Some(outcome.artifacts)
}

/// The cached pipeline. Returns `None` when the input or the cache turns
/// out unsuitable (duplicate file names, a decl entry contradicting the
/// parser, a candidate without a file) — the caller then runs cold.
pub(crate) fn analyze_sources_cached(
    tool: &WapTool,
    store: &CacheStore,
    sources: &[(String, String)],
    obs: JobHandle<'_>,
) -> Option<AppReport> {
    let start = Instant::now();
    let alloc_start = wap_obs::allocations_now();
    let runtime = tool.runtime();
    let stats_before = store.stats().snapshot();
    let mut parse_ns = 0u64;
    let mut taint_ns = 0u64;
    let mut predict_ns = 0u64;
    let mut cache_ns = 0u64;
    let mut cfg_ns = 0u64;
    let mut values_ns = 0u64;

    // per-file grouping assumes names identify files uniquely
    {
        let mut names = HashSet::new();
        if !sources.iter().all(|(n, _)| names.insert(n.as_str())) {
            return None;
        }
    }

    let config_fp = config_fingerprint(tool);

    // ---- decl stage: content hash every file, learn its declarations ----
    let t = Instant::now();
    let hashes: Vec<String> = runtime.run(sources.len(), |i| content_hash(&sources[i].1));
    let decl_keys: Vec<String> = hashes.iter().map(|h| decl_key(h)).collect();
    let mut infos: Vec<Option<DeclInfo>> = decl_keys
        .iter()
        .enumerate()
        .map(|(i, key)| match store.probe(key) {
            Some((payload, tier)) => match decode_decl(&payload) {
                Ok(info) => {
                    obs.event_file(hit_event(tier), &sources[i].0);
                    Some(info)
                }
                Err(_) => {
                    obs.event_file("cache_corrupt", &sources[i].0);
                    store.reject(key);
                    None
                }
            },
            None => {
                obs.event_file("cache_miss", &sources[i].0);
                None
            }
        })
        .collect();
    cache_ns += elapsed_ns(t);

    let miss: Vec<usize> = infos
        .iter()
        .enumerate()
        .filter(|(_, x)| x.is_none())
        .map(|(i, _)| i)
        .collect();
    let t = Instant::now();
    let parsed_miss: Vec<Result<Program, ParseError>> = runtime.map(miss.clone(), |_, i| {
        let _span = obs.span_file(Phase::Parse, &sources[i].0);
        parse(&sources[i].1)
    });
    parse_ns += elapsed_ns(t);

    let mut programs_by_src: Vec<Option<Program>> = (0..sources.len()).map(|_| None).collect();
    let t = Instant::now();
    for (&i, result) in miss.iter().zip(parsed_miss) {
        let info = match result {
            Ok(program) => {
                let names = declared_names(&program);
                let decls = names
                    .into_iter()
                    .zip(program.functions())
                    .map(|(n, f)| DeclRecord {
                        name: n.as_str().to_string(),
                        fp: function_fingerprint(&sources[i].1, f),
                        refs: function_refs(f)
                            .into_iter()
                            .map(|r| r.as_str().to_string())
                            .collect(),
                    })
                    .collect();
                let refs = referenced_names(&program)
                    .into_iter()
                    .map(|r| r.as_str().to_string())
                    .collect();
                programs_by_src[i] = Some(program);
                DeclInfo::Decls { decls, refs }
            }
            Err(e) => DeclInfo::Unparsed {
                message: e.message().to_string(),
                span: e.span(),
            },
        };
        store.put(&decl_keys[i], encode_decl(&info));
        infos[i] = Some(info);
    }
    cache_ns += elapsed_ns(t);

    // ---- split into parsed-ok files (analysis inputs) and parse errors ----
    let mut parse_errors: Vec<(String, ParseError)> = Vec::new();
    let mut loc = 0usize;
    let mut files: Vec<FileMeta> = Vec::new();
    let mut programs: Vec<Option<Program>> = Vec::new();
    for (i, info) in infos.iter().enumerate() {
        match info.as_ref().expect("decl info resolved above") {
            DeclInfo::Decls { decls, refs } => {
                // only successfully parsed files count as analyzed LoC
                loc += sources[i].1.lines().count();
                files.push(FileMeta {
                    src: i,
                    name: sources[i].0.clone(),
                    hash: hashes[i].clone(),
                    decls: decls.clone(),
                    refs: refs.clone(),
                });
                programs.push(programs_by_src[i].take());
            }
            DeclInfo::Unparsed { message, span } => {
                parse_errors.push((
                    sources[i].0.clone(),
                    ParseError::new(message.clone(), *span),
                ));
            }
        }
    }

    // ---- per-file dependency digests ----
    // The canonical declaration for each name is the first in (file
    // order, declaration order) — the same owner rule the engine's
    // function index applies. A file's pass output depends on exactly the
    // canonical declarations reachable from its own declarations and its
    // call targets, so its digest covers that transitive closure and
    // nothing else: editing one function re-keys only its own file and
    // the files that can actually observe the change.
    let t = Instant::now();
    struct Canon<'a> {
        owner: &'a str,
        fp: &'a str,
        refs: &'a [String],
    }
    let mut canon: HashMap<&str, Canon<'_>> = HashMap::new();
    for f in &files {
        for d in &f.decls {
            canon.entry(d.name.as_str()).or_insert(Canon {
                owner: f.name.as_str(),
                fp: d.fp.as_str(),
                refs: &d.refs,
            });
        }
    }
    let deps_digests: Vec<String> = runtime.run(files.len(), |i| {
        let f = &files[i];
        let mut seen: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        let mut work: Vec<&str> = Vec::new();
        for d in &f.decls {
            if seen.insert(d.name.as_str()) {
                work.push(d.name.as_str());
            }
        }
        for r in &f.refs {
            if seen.insert(r.as_str()) {
                work.push(r.as_str());
            }
        }
        while let Some(n) = work.pop() {
            if let Some(c) = canon.get(n) {
                for r in c.refs {
                    if seen.insert(r.as_str()) {
                        work.push(r.as_str());
                    }
                }
            }
        }
        // undeclared targets are built-ins; their semantics are part of
        // the config fingerprint, not of any file
        let rows = seen
            .iter()
            .filter_map(|n| canon.get(n).map(|c| [*n, c.owner, c.fp]));
        fields_hash(rows.flatten())
    });
    cache_ns += elapsed_ns(t);

    let file_index: HashMap<&str, usize> = files
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i))
        .collect();

    // ---- value analysis (`--values`): cached per-file resolutions ----
    let mut values_state = if tool.config.values {
        Some(run_values_cached(
            store,
            &runtime,
            sources,
            &files,
            &mut programs,
            &deps_digests,
            &config_fp,
            &mut parse_ns,
            &mut values_ns,
            &mut cache_ns,
            obs,
        )?)
    } else {
        None
    };

    // the taint engine's resolution view: only files with at least one
    // resolved include or call appear (mirrors the cold path)
    let taint_resolutions: HashMap<String, FileResolution> = values_state
        .as_ref()
        .map(|vs| {
            vs.per_file
                .iter()
                .enumerate()
                .filter(|(_, r)| !r.includes.is_empty() || !r.calls.is_empty())
                .map(|(i, r)| {
                    (
                        files[i].name.clone(),
                        FileResolution {
                            includes: r.includes.iter().map(|(k, v)| (*k, v.clone())).collect(),
                            calls: r.calls.iter().map(|(k, v)| (*k, v.clone())).collect(),
                        },
                    )
                })
                .collect()
        })
        .unwrap_or_default();
    // files some resolved include points at: parsed alongside any pass
    // miss so inlined include execution matches a cold run
    let include_targets: Vec<usize> = values_state
        .as_ref()
        .map(|vs| {
            let set: BTreeSet<usize> = vs
                .per_file
                .iter()
                .flat_map(|r| r.includes.values())
                .flatten()
                .filter_map(|t| file_index.get(t.as_str()).copied())
                .collect();
            set.into_iter().collect()
        })
        .unwrap_or_default();

    // With value analysis on, a file's pass output additionally depends
    // on everything a resolved edge lets it observe: the contents (and
    // dependency digests) of its transitive include targets, and the
    // declaration closures of every resolved dynamic-call target in that
    // include closure. Extend the digests keying pass and findings
    // entries accordingly; value-less runs keep the base digests (their
    // key space is disjoint anyway via the config fingerprint).
    let deps_digests: Vec<String> = if let Some(vs) = &values_state {
        let t = Instant::now();
        let extended = runtime.run(files.len(), |i| {
            let mut visited: BTreeSet<usize> = BTreeSet::new();
            visited.insert(i);
            let mut work = vec![i];
            while let Some(fi) = work.pop() {
                for targets in vs.per_file[fi].includes.values() {
                    for t in targets {
                        if let Some(&ti) = file_index.get(t.as_str()) {
                            if visited.insert(ti) {
                                work.push(ti);
                            }
                        }
                    }
                }
            }
            let mut call_seen: BTreeSet<&str> = BTreeSet::new();
            let mut call_work: Vec<&str> = Vec::new();
            for &fi in &visited {
                for targets in vs.per_file[fi].calls.values() {
                    for t in targets {
                        if call_seen.insert(t.as_str()) {
                            call_work.push(t.as_str());
                        }
                    }
                }
            }
            while let Some(n) = call_work.pop() {
                if let Some(c) = canon.get(n) {
                    for r in c.refs {
                        if call_seen.insert(r.as_str()) {
                            call_work.push(r.as_str());
                        }
                    }
                }
            }
            let mut fields: Vec<String> = vec![deps_digests[i].clone()];
            for &fi in &visited {
                if fi == i {
                    continue;
                }
                fields.push(files[fi].name.clone());
                fields.push(files[fi].hash.clone());
                fields.push(deps_digests[fi].clone());
            }
            for n in &call_seen {
                if let Some(c) = canon.get(n) {
                    fields.push((*n).to_string());
                    fields.push(c.owner.to_string());
                    fields.push(c.fp.to_string());
                }
            }
            fields_hash(fields)
        });
        cache_ns += elapsed_ns(t);
        extended
    } else {
        deps_digests
    };

    // ---- taint passes ----
    let p1 = run_cached_pass(
        tool,
        store,
        &runtime,
        sources,
        &files,
        &mut programs,
        &deps_digests,
        &config_fp,
        &taint_resolutions,
        &include_targets,
        false,
        &mut parse_ns,
        &mut taint_ns,
        &mut cache_ns,
        obs,
    )?;
    let store_seen = p1.iter().any(PassArtifacts::store_seen);
    let ran_pass2 = tool.config.analysis.second_order && store_seen;
    let mut candidates = pass_candidates(&p1);
    if ran_pass2 {
        let p2 = run_cached_pass(
            tool,
            store,
            &runtime,
            sources,
            &files,
            &mut programs,
            &deps_digests,
            &config_fp,
            &taint_resolutions,
            &include_targets,
            true,
            &mut parse_ns,
            &mut taint_ns,
            &mut cache_ns,
            obs,
        )?;
        candidates.extend(pass_candidates(&p2));
    }
    let candidates = dedup_and_sort(candidates);

    // ---- findings: per-file groups over the sorted candidate stream ----
    // the stream is file-major after dedup_and_sort, so groups are
    // contiguous runs of one file
    struct Group {
        file: usize,
        start: usize,
        end: usize,
        key: String,
        digest: String,
    }
    let t = Instant::now();
    let mut groups: Vec<Group> = Vec::new();
    {
        let mut k = 0;
        while k < candidates.len() {
            let name = candidates[k].file.as_deref()?;
            let file = *file_index.get(name)?;
            let start = k;
            while k < candidates.len() && candidates[k].file.as_deref() == Some(name) {
                k += 1;
            }
            let mut w = Writer::new();
            w.seq(k - start);
            for c in &candidates[start..k] {
                write_candidate(&mut w, c);
            }
            groups.push(Group {
                file,
                start,
                end: k,
                key: findings_key(
                    name,
                    &files[file].hash,
                    &deps_digests[file],
                    &config_fp,
                    ran_pass2,
                ),
                digest: Blake2s::hash_hex(&w.into_bytes()),
            });
        }
    }

    let mut slots: Vec<Option<Finding>> = candidates.iter().map(|_| None).collect();
    let mut miss_groups: Vec<usize> = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let decoded = match store.probe(&g.key) {
            Some((payload, tier)) => {
                match decode_findings(&payload, &g.digest, &candidates[g.start..g.end]) {
                    Ok(fs) => {
                        obs.event_file(hit_event(tier), &files[g.file].name);
                        Some(fs)
                    }
                    Err(_) => {
                        obs.event_file("cache_corrupt", &files[g.file].name);
                        store.reject(&g.key);
                        None
                    }
                }
            }
            None => {
                obs.event_file("cache_miss", &files[g.file].name);
                None
            }
        };
        match decoded {
            Some(fs) => {
                for (k, f) in fs.into_iter().enumerate() {
                    slots[g.start + k] = Some(f);
                }
            }
            None => miss_groups.push(gi),
        }
    }
    cache_ns += elapsed_ns(t);

    if !miss_groups.is_empty() {
        let mut want: Vec<usize> = miss_groups.iter().map(|&gi| groups[gi].file).collect();
        // sink-context refinement re-derives value facts for hit files;
        // the merged summaries need every decl-bearing program
        let values_todo: Vec<usize> = values_state
            .as_ref()
            .map(|vs| {
                want.iter()
                    .copied()
                    .filter(|fi| !vs.file_values.contains_key(fi))
                    .collect()
            })
            .unwrap_or_default();
        if !values_todo.is_empty() {
            want.extend(
                files
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| !f.decls.is_empty())
                    .map(|(i, _)| i),
            );
        }
        ensure_parsed(
            &runtime,
            store,
            sources,
            &files,
            &mut programs,
            &want,
            &mut parse_ns,
            obs,
        )?;
        if let Some(vs) = &mut values_state {
            if !values_todo.is_empty() {
                if vs.summaries.is_none() {
                    vs.summaries = Some(compute_value_summaries(&runtime, &files, &programs));
                }
                let summaries = vs.summaries.as_ref().expect("summaries just ensured");
                let t = Instant::now();
                let computed: Vec<wap_cfg::FileValues> =
                    runtime.map(values_todo.clone(), |_, fi| {
                        let _span = obs.span_file(Phase::Values, &files[fi].name);
                        wap_cfg::analyze_file_values(
                            &files[fi].name,
                            programs[fi].as_ref().expect("parsed for findings"),
                            summaries,
                            &vs.known,
                        )
                    });
                values_ns += elapsed_ns(t);
                for (fi, fv) in values_todo.into_iter().zip(computed) {
                    vs.file_values.insert(fi, fv);
                }
            }
        }
        let todo: Vec<usize> = miss_groups
            .iter()
            .flat_map(|&gi| groups[gi].start..groups[gi].end)
            .collect();
        let by_candidate: HashMap<usize, usize> = miss_groups
            .iter()
            .flat_map(|&gi| (groups[gi].start..groups[gi].end).map(move |k| (k, gi)))
            .collect();
        // CFG lowering for guard refinement, one graph set per miss
        // file — exactly the files the cold path would lower
        let cfgs_by_file: HashMap<usize, wap_cfg::FileCfgs> = if tool.config.guard_attributes {
            let t = Instant::now();
            let mut uniq = want.clone();
            uniq.sort_unstable();
            uniq.dedup();
            let built = runtime.map(uniq.clone(), |_, fi| {
                let _span = obs.span_file(Phase::Cfg, &files[fi].name);
                wap_cfg::lower_program(programs[fi].as_ref().expect("parsed for findings"))
            });
            cfg_ns += elapsed_ns(t);
            uniq.into_iter().zip(built).collect()
        } else {
            HashMap::new()
        };
        // symptom collection + committee voting, one task per candidate,
        // exactly as the cold path fans out
        let t = Instant::now();
        let computed = runtime.map(todo.clone(), |_, k| {
            let gi = by_candidate[&k];
            let _span = obs.span_file(Phase::Vote, &files[groups[gi].file].name);
            let program = programs[groups[gi].file]
                .as_ref()
                .expect("parsed for findings");
            let candidate = candidates[k].clone();
            let mut symptoms = collect(program, &candidate, &tool.dynamic_symptoms);
            if tool.config.guard_attributes {
                if let Some(file_cfgs) = cfgs_by_file.get(&groups[gi].file) {
                    crate::pipeline::refine_with_cfg(&mut symptoms, file_cfgs, &candidate);
                }
            }
            if let Some(vs) = &values_state {
                if let Some(fv) = vs.file_values.get(&groups[gi].file) {
                    crate::pipeline::refine_with_values(&mut symptoms, fv, &candidate);
                }
            }
            let prediction = tool.predictor.predict(&symptoms);
            Finding {
                candidate,
                prediction,
                symptoms,
            }
        });
        predict_ns += elapsed_ns(t);
        for (k, f) in todo.into_iter().zip(computed) {
            slots[k] = Some(f);
        }
        let t = Instant::now();
        for &gi in &miss_groups {
            let g = &groups[gi];
            store.put(&g.key, encode_findings(&g.digest, &slots[g.start..g.end]));
        }
        cache_ns += elapsed_ns(t);
    }

    let findings: Vec<Finding> = slots
        .into_iter()
        .map(|f| f.expect("every candidate resolved"))
        .collect();

    let (edges_resolved, edges_unresolved) = values_state
        .as_ref()
        .map(|vs| {
            vs.per_file.iter().fold((0, 0), |(res, unres), r| {
                let (a, b) = r.edge_counts();
                (res + a, unres + b)
            })
        })
        .unwrap_or((0, 0));

    let mut stats = scan_stats(obs, parse_ns, taint_ns, predict_ns, cache_ns);
    stats.set_phase_ns(Phase::Cfg, cfg_ns);
    if values_state.is_some() {
        stats.set_phase_ns(Phase::Values, values_ns);
    }
    stats.allocations = wap_obs::allocations_now().saturating_sub(alloc_start);
    stats.peak_rss_bytes = wap_obs::peak_rss_bytes();
    Some(AppReport {
        findings,
        files_analyzed: files.len(),
        loc,
        parse_errors,
        duration: start.elapsed(),
        stats,
        cache: store.stats().snapshot().since(&stats_before),
        lint_ran: false,
        lint: Vec::new(),
        lint_rules: Vec::new(),
        values_ran: values_state.is_some(),
        dynamic_edges_resolved: edges_resolved,
        dynamic_edges_unresolved: edges_unresolved,
        tool_name: wap_report::TOOL_NAME,
        tool_version: wap_report::TOOL_VERSION,
    })
}
