//! The single error type crossing the cli ↔ core ↔ serve boundaries.
//!
//! Everything the front ends can fail on — bad arguments, I/O, weapon
//! configuration, cache trouble, fatal parse failures — is one enum, so
//! exit codes (CLI) and HTTP statuses (`wap-serve`) derive from the error
//! itself instead of being re-invented at each boundary. PHP inputs that
//! fail to parse are *not* errors: the pipeline degrades them to
//! `AppReport::parse_errors` and keeps scanning.

use std::fmt;
use std::path::{Path, PathBuf};

/// An error from the WAP pipeline or one of its front ends.
///
/// Each variant carries the file or subject it concerns, so messages can
/// always say *what* failed, not just *how*.
#[derive(Debug)]
pub enum WapError {
    /// The caller asked for something malformed (unknown flag, bad
    /// format name, missing value). CLI exit code 2, HTTP 400.
    Usage(String),
    /// An I/O operation failed on a specific path.
    Io {
        /// The path being read or written.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A file that *must* parse (a weapon configuration, a trace
    /// destination's parent, …) did not.
    Parse {
        /// The offending file.
        file: String,
        /// What the parser objected to.
        detail: String,
    },
    /// The incremental cache store misbehaved beyond its self-healing.
    Cache {
        /// The cache root involved.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// A configuration input (weapon JSON, sanitizer spec) is invalid.
    Config {
        /// Which configuration item.
        what: String,
        /// Why it was rejected.
        detail: String,
    },
}

impl WapError {
    /// Convenience constructor for usage errors.
    pub fn usage(msg: impl Into<String>) -> WapError {
        WapError::Usage(msg.into())
    }

    /// Wraps an I/O error with the path it happened on.
    pub fn io(path: impl AsRef<Path>, source: std::io::Error) -> WapError {
        WapError::Io {
            path: path.as_ref().to_path_buf(),
            source,
        }
    }

    /// The process exit code the CLI maps this error to. Distinct per
    /// variant so scripts can tell usage mistakes (2) from environment
    /// failures (3+); analysis findings use 0/1 and never come here.
    pub fn exit_code(&self) -> i32 {
        match self {
            WapError::Usage(_) => 2,
            WapError::Io { .. } => 3,
            WapError::Parse { .. } => 4,
            WapError::Cache { .. } => 5,
            WapError::Config { .. } => 6,
        }
    }

    /// The HTTP status `wap-serve` answers with for this error: client
    /// mistakes map to 4xx, environment failures to 500.
    pub fn http_status(&self) -> u16 {
        match self {
            WapError::Usage(_) | WapError::Config { .. } => 400,
            WapError::Parse { .. } => 422,
            WapError::Io { .. } | WapError::Cache { .. } => 500,
        }
    }
}

impl fmt::Display for WapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WapError::Usage(msg) => write!(f, "{msg}"),
            WapError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            WapError::Parse { file, detail } => write!(f, "{file}: {detail}"),
            WapError::Cache { path, detail } => {
                write!(f, "cache at {}: {detail}", path.display())
            }
            WapError::Config { what, detail } => write!(f, "{what}: {detail}"),
        }
    }
}

impl std::error::Error for WapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WapError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<String> for WapError {
    fn from(msg: String) -> WapError {
        WapError::Usage(msg)
    }
}

impl From<&str> for WapError {
    fn from(msg: &str) -> WapError {
        WapError::Usage(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let errors = [
            WapError::usage("bad flag"),
            WapError::io("/nope", std::io::Error::new(std::io::ErrorKind::NotFound, "x")),
            WapError::Parse {
                file: "w.json".into(),
                detail: "truncated".into(),
            },
            WapError::Cache {
                path: "/tmp/c".into(),
                detail: "unwritable".into(),
            },
            WapError::Config {
                what: "--sanitizer".into(),
                detail: "no classes".into(),
            },
        ];
        let mut codes: Vec<i32> = errors.iter().map(WapError::exit_code).collect();
        assert!(codes.iter().all(|&c| c >= 2), "{codes:?}");
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "exit codes collide");
    }

    #[test]
    fn http_statuses_split_client_from_server() {
        assert_eq!(WapError::usage("x").http_status(), 400);
        assert_eq!(
            WapError::Config {
                what: "w".into(),
                detail: "d".into()
            }
            .http_status(),
            400
        );
        assert_eq!(
            WapError::Parse {
                file: "f".into(),
                detail: "d".into()
            }
            .http_status(),
            422
        );
        assert_eq!(
            WapError::io("/x", std::io::Error::new(std::io::ErrorKind::Other, "y")).http_status(),
            500
        );
    }

    #[test]
    fn display_includes_file_context() {
        let e = WapError::io(
            "/etc/app.php",
            std::io::Error::new(std::io::ErrorKind::NotFound, "no such file"),
        );
        let msg = e.to_string();
        assert!(msg.contains("/etc/app.php"), "{msg}");
        let e = WapError::Parse {
            file: "weapon.json".into(),
            detail: "unexpected end of input".into(),
        };
        assert!(e.to_string().starts_with("weapon.json: "), "{e}");
    }
}
