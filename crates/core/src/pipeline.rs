//! The WAPe pipeline: detect candidates → predict false positives →
//! correct real vulnerabilities (Fig. 1).

use crate::weapon::Weapon;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use wap_cache::{CacheStatsSnapshot, CacheStore};
use wap_catalog::{Catalog, WeaponConfig};
use wap_fixer::{Corrector, FixResult};
use wap_mining::{
    collect, DynamicSymptomMap, FalsePositivePredictor, FeatureVector, PredictorGeneration,
};
use wap_obs::{Collector, JobHandle, Phase};
use wap_php::{parse, ParseError, Program, Symbol};
use wap_runtime::Runtime;
use wap_taint::{AnalysisOptions, Candidate, SourceFile};

/// Which tool generation to run — the paper compares both.
pub use wap_mining::PredictorGeneration as Generation;

/// The report model, re-exported from the shared renderer crate so every
/// historical `wap_core::pipeline::AppReport` path keeps working.
pub use wap_report::{AppReport, Finding};

/// Configuration for a [`WapTool`] instance.
#[derive(Debug, Clone)]
pub struct ToolConfig {
    /// WAP v2.1 (8 classes, 16 attributes) or WAPe (15 classes, 61).
    pub generation: PredictorGeneration,
    /// Weapons to link (ignored by the v2.1 generation, which predates
    /// them).
    pub weapons: Vec<WeaponConfig>,
    /// Taint analysis options.
    pub analysis: AnalysisOptions,
    /// Training/shuffling seed (deterministic runs).
    pub seed: u64,
    /// Worker threads for every parallel phase (parse, taint, prediction).
    /// `None` uses [`std::thread::available_parallelism`]; output is
    /// bit-identical for any value.
    pub jobs: Option<usize>,
    /// Root directory of the persistent incremental cache; `None` runs
    /// without a cache. Warm runs re-analyze only changed files and are
    /// bit-identical to cold runs.
    pub cache_dir: Option<PathBuf>,
    /// Record spans and events into the tool's `wap-obs` collector
    /// (`--trace`/`--stats`). Observation only: findings and machine
    /// report bytes are bit-identical with tracing on or off.
    pub trace: bool,
    /// Refine collected symptom vectors with CFG guard analysis
    /// (`wap-cfg`): validation symptoms the dominator analysis cannot
    /// prove to guard the sink are cleared before prediction. Off by
    /// default — the headline reproduction keeps the paper's plain
    /// symptom collector bit-for-bit.
    pub guard_attributes: bool,
    /// Rule packs whose rules join the lint pass (`--rules`). The joined
    /// pack fingerprints key the cached per-file lint results, so
    /// installing or upgrading a pack invalidates exactly the `cfg`
    /// cache entries; with no packs the keys (and all output bytes) are
    /// identical to a build without pack support.
    pub rule_packs: Vec<wap_rules::RulePack>,
    /// Interprocedural constant/string value analysis (`--values`,
    /// `wap-cfg::values`): resolves dynamic `include`/`require` paths and
    /// variable-function/`call_user_func` targets into extra taint
    /// call-graph edges, and refines symptom vectors with the sink's
    /// value context (quoted string, numeric cast, identifier position).
    /// Off by default — the headline reproduction keeps the syntactic
    /// call graph bit-for-bit, and the flag is config-fingerprinted so
    /// cached results never cross configurations.
    pub values: bool,
}

impl ToolConfig {
    /// The original tool: 8 classes, original attribute scheme.
    pub fn wap_v21() -> Self {
        ToolConfig {
            generation: PredictorGeneration::WapV21,
            weapons: Vec::new(),
            analysis: AnalysisOptions::default(),
            seed: 42,
            jobs: None,
            cache_dir: None,
            trace: false,
            guard_attributes: false,
            rule_packs: Vec::new(),
            values: false,
        }
    }

    /// The new tool with the Table IV sub-module extensions but no
    /// weapons.
    pub fn wape() -> Self {
        ToolConfig {
            generation: PredictorGeneration::Wape,
            weapons: Vec::new(),
            analysis: AnalysisOptions::default(),
            seed: 42,
            jobs: None,
            cache_dir: None,
            trace: false,
            guard_attributes: false,
            rule_packs: Vec::new(),
            values: false,
        }
    }

    /// WAPe with the paper's three weapons linked (`-nosqli`, `-hei`,
    /// `-wpsqli`).
    pub fn wape_full() -> Self {
        ToolConfig {
            generation: PredictorGeneration::Wape,
            weapons: vec![
                WeaponConfig::nosqli(),
                WeaponConfig::hei(),
                WeaponConfig::wpsqli(),
            ],
            analysis: AnalysisOptions::default(),
            seed: 42,
            jobs: None,
            cache_dir: None,
            trace: false,
            guard_attributes: false,
            rule_packs: Vec::new(),
            values: false,
        }
    }

    /// A [`ToolConfigBuilder`] starting from [`ToolConfig::wape_full`]
    /// (the CLI and service default).
    pub fn builder() -> ToolConfigBuilder {
        ToolConfigBuilder {
            config: ToolConfig::wape_full(),
        }
    }
}

/// Fluent builder for [`ToolConfig`], replacing the ad-hoc `with_*`
/// setters:
///
/// ```
/// use wap_core::ToolConfig;
///
/// let config = ToolConfig::builder()
///     .jobs(4)
///     .cache_dir("/tmp/wap-cache")
///     .trace(true)
///     .build();
/// assert_eq!(config.jobs, Some(4));
/// assert!(config.trace);
/// ```
#[derive(Debug, Clone)]
pub struct ToolConfigBuilder {
    config: ToolConfig,
}

impl ToolConfigBuilder {
    /// Switch to the WAP v2.1 generation (8 classes, no weapons).
    #[must_use]
    pub fn v21(mut self) -> Self {
        self.config.generation = PredictorGeneration::WapV21;
        self.config.weapons.clear();
        self
    }

    /// WAPe without any weapons linked ([`ToolConfig::wape`]).
    #[must_use]
    pub fn no_weapons(mut self) -> Self {
        self.config.weapons.clear();
        self
    }

    /// Replace the linked weapon set.
    #[must_use]
    pub fn weapons(mut self, weapons: Vec<WeaponConfig>) -> Self {
        self.config.weapons = weapons;
        self
    }

    /// Replace the taint analysis options wholesale.
    #[must_use]
    pub fn analysis(mut self, analysis: AnalysisOptions) -> Self {
        self.config.analysis = analysis;
        self
    }

    /// Toggle the second-order (stored injection) pass.
    #[must_use]
    pub fn second_order(mut self, on: bool) -> Self {
        self.config.analysis.second_order = on;
        self
    }

    /// Training/shuffling seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Explicit worker count for every parallel phase.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = Some(jobs);
        self
    }

    /// Worker count when known, automatic parallelism when `None`.
    #[must_use]
    pub fn maybe_jobs(mut self, jobs: Option<usize>) -> Self {
        self.config.jobs = jobs;
        self
    }

    /// Persistent incremental cache rooted at `dir`.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.cache_dir = Some(dir.into());
        self
    }

    /// Cache directory when known, no cache when `None`.
    #[must_use]
    pub fn maybe_cache_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.config.cache_dir = dir;
        self
    }

    /// Enable (or disable) span/event collection for this tool.
    #[must_use]
    pub fn trace(mut self, on: bool) -> Self {
        self.config.trace = on;
        self
    }

    /// Enable (or disable) CFG guard refinement of symptom vectors
    /// ([`ToolConfig::guard_attributes`]).
    #[must_use]
    pub fn guard_attributes(mut self, on: bool) -> Self {
        self.config.guard_attributes = on;
        self
    }

    /// Replace the rule packs joined into the lint pass
    /// ([`ToolConfig::rule_packs`]).
    #[must_use]
    pub fn rule_packs(mut self, packs: Vec<wap_rules::RulePack>) -> Self {
        self.config.rule_packs = packs;
        self
    }

    /// Enable (or disable) the interprocedural value analysis
    /// ([`ToolConfig::values`]).
    #[must_use]
    pub fn values(mut self, on: bool) -> Self {
        self.config.values = on;
        self
    }

    /// The finished configuration.
    pub fn build(self) -> ToolConfig {
        self.config
    }
}

/// The assembled tool: catalog + trained predictor + corrector.
///
/// # Examples
///
/// ```
/// use wap_core::{WapTool, ToolConfig};
///
/// let tool = WapTool::new(ToolConfig::wape_full());
/// let report = tool.analyze_sources(&[(
///     "index.php".to_string(),
///     "<?php mysql_query(\"SELECT * FROM t WHERE id = $_GET[id]\");".to_string(),
/// )]);
/// assert_eq!(report.findings.len(), 1);
/// assert!(report.findings[0].is_real());
/// ```
pub struct WapTool {
    pub(crate) catalog: Catalog,
    pub(crate) predictor: Arc<FalsePositivePredictor>,
    corrector: Corrector,
    pub(crate) dynamic_symptoms: DynamicSymptomMap,
    pub(crate) config: ToolConfig,
    cache: Option<CacheStore>,
    obs: Collector,
}

impl std::fmt::Debug for WapTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WapTool")
            .field("generation", &self.config.generation)
            .field("weapons", &self.config.weapons.len())
            .finish()
    }
}

/// Returns the trained committee for `(generation, seed)`, training it at
/// most once per process. Training is deterministic in those two inputs,
/// so every `WapTool` built with the same pair can share one committee —
/// without this, each construction re-trains the classifiers (~30 ms),
/// which dominates cold-start time for short scans and for the resident
/// service spawning per-request tools.
fn trained_predictor(generation: PredictorGeneration, seed: u64) -> Arc<FalsePositivePredictor> {
    type Memo = Mutex<HashMap<(PredictorGeneration, u64), Arc<FalsePositivePredictor>>>;
    static MEMO: OnceLock<Memo> = OnceLock::new();
    let memo = MEMO.get_or_init(Memo::default);
    if let Some(p) = memo
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&(generation, seed))
    {
        return Arc::clone(p);
    }
    // Train outside the lock: concurrent first callers may both train,
    // but the results are identical and one simply wins the insert.
    let trained = Arc::new(FalsePositivePredictor::train(generation, seed));
    Arc::clone(
        memo.lock()
            .unwrap_or_else(|e| e.into_inner())
            .entry((generation, seed))
            .or_insert(trained),
    )
}

impl WapTool {
    /// Builds (and trains) a tool from a configuration.
    pub fn new(config: ToolConfig) -> Self {
        let mut catalog = match config.generation {
            PredictorGeneration::WapV21 => Catalog::wap_v21(),
            PredictorGeneration::Wape => Catalog::wape(),
        };
        let mut corrector = Corrector::new();
        if config.generation == PredictorGeneration::Wape {
            for w in &config.weapons {
                let weapon = Weapon::generate(w.clone()).expect("built-in weapons are valid");
                weapon.link(&mut catalog, &mut corrector);
            }
        }
        let predictor = trained_predictor(config.generation, config.seed);
        let dynamic_symptoms = DynamicSymptomMap::from_catalog(&catalog);
        let cache = config.cache_dir.as_ref().map(CacheStore::open);
        let obs = Collector::new(config.trace);
        WapTool {
            catalog,
            predictor,
            corrector,
            dynamic_symptoms,
            config,
            cache,
            obs,
        }
    }

    /// The active catalog (sinks, sanitizers, entry points).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access — the §V-A study: feeding user sanitization
    /// functions (e.g. vfront's `escape`) to the tool.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The tool's corrector.
    pub fn corrector(&self) -> &Corrector {
        &self.corrector
    }

    /// Links one more weapon at runtime.
    pub fn add_weapon(&mut self, weapon: Weapon) {
        weapon.link(&mut self.catalog, &mut self.corrector);
        self.dynamic_symptoms = DynamicSymptomMap::from_catalog(&self.catalog);
        self.config.weapons.push(weapon.into_config());
    }

    /// The active configuration.
    pub fn config(&self) -> &ToolConfig {
        &self.config
    }

    /// The analysis runtime this tool fans work out on.
    pub fn runtime(&self) -> Runtime {
        Runtime::new(self.config.jobs)
    }

    /// Attaches a process-lifetime in-memory cache (no disk backing):
    /// repeated [`WapTool::analyze_sources`] calls on this tool instance
    /// re-analyze only changed files.
    pub fn enable_memory_cache(&mut self) {
        self.cache = Some(CacheStore::in_memory());
    }

    /// Replaces the incremental cache store wholesale. This is how
    /// embedders (notably `wap serve` with a `--cache-peer`) hand the
    /// tool a store composed of non-default backends — tiered local +
    /// remote, or a custom [`wap_cache::CacheBackend`]. The pipeline
    /// never learns what backends exist; it only probes the store.
    pub fn set_cache_store(&mut self, store: CacheStore) {
        self.cache = Some(store);
    }

    /// The incremental cache store, when caching is enabled.
    pub fn cache(&self) -> Option<&CacheStore> {
        self.cache.as_ref()
    }

    /// The tool's span/event collector. Disabled (inert) unless the
    /// configuration asked for tracing ([`ToolConfig::trace`]); render
    /// its NDJSON trace with `wap_obs::Collector::render_ndjson`.
    pub fn obs(&self) -> &Collector {
        &self.obs
    }

    /// Analyzes an application given as `(file name, source)` pairs:
    /// parses, runs taint analysis across all files, collects symptoms,
    /// and classifies every candidate.
    ///
    /// Every phase fans out over [`WapTool::runtime`]; findings come back
    /// sorted by (file, line, class) regardless of the worker count.
    ///
    /// With a cache configured ([`ToolConfig::cache_dir`] or
    /// [`WapTool::enable_memory_cache`]) only files whose content, callee
    /// set, or configuration changed since the cached run are re-analyzed;
    /// the findings are bit-identical to an uncached run either way.
    pub fn analyze_sources(&self, sources: &[(String, String)]) -> AppReport {
        let obs = self.obs.job();
        if let Some(store) = &self.cache {
            if let Some(report) =
                crate::incremental::analyze_sources_cached(self, store, sources, obs)
            {
                return report;
            }
        }
        self.analyze_sources_cold(sources, obs)
    }

    /// The uncached pipeline — also the fallback when the cached path
    /// declines an input (e.g. duplicate file names).
    fn analyze_sources_cold(&self, sources: &[(String, String)], obs: JobHandle<'_>) -> AppReport {
        let start = Instant::now();
        let alloc_start = wap_obs::allocations_now();
        let runtime = self.runtime();

        // parse files in parallel; analysis itself is cross-file
        let programs: Vec<Result<Program, ParseError>> = runtime.run(sources.len(), |i| {
            let _span = obs.span_file(Phase::Parse, &sources[i].0);
            parse(&sources[i].1)
        });
        let parse_ns = elapsed_ns(start);

        let mut parsed: Vec<SourceFile> = Vec::new();
        let mut parse_errors = Vec::new();
        let mut loc = 0usize;
        for (result, (name, src)) in programs.into_iter().zip(sources) {
            match result {
                Ok(program) => {
                    // only successfully parsed files count as analyzed LoC
                    loc += src.lines().count();
                    parsed.push(SourceFile {
                        name: name.clone(),
                        program,
                    });
                }
                Err(e) => parse_errors.push((name.clone(), e)),
            }
        }

        // interprocedural value analysis (`--values`): summaries + per-file
        // facts, feeding extra taint call-graph edges and sink contexts.
        // Skipped entirely unless the flag is on, so default runs match
        // value-less builds byte for byte.
        let values = self.config.values.then(|| {
            let inputs: Vec<(&str, &Program)> = parsed
                .iter()
                .map(|f| (f.name.as_str(), &f.program))
                .collect();
            run_values_stage(&inputs, &runtime, obs)
        });
        let no_resolutions = HashMap::new();
        let resolutions = values
            .as_ref()
            .map(|v| &v.resolutions)
            .unwrap_or(&no_resolutions);

        let taint_start = Instant::now();
        let candidates = wap_taint::analyze_with_resolutions(
            &self.catalog,
            &self.config.analysis,
            &parsed,
            resolutions,
            &runtime,
            obs,
        );
        let taint_ns = elapsed_ns(taint_start);

        let by_name: HashMap<&str, &Program> = parsed
            .iter()
            .map(|f| (f.name.as_str(), &f.program))
            .collect();

        // CFG lowering for guard refinement — skipped entirely (zero
        // graphs, zero nanoseconds) unless the flag is on, so default
        // runs match pre-CFG builds byte for byte
        let cfg_start = Instant::now();
        let cfgs: Vec<wap_cfg::FileCfgs> = if self.config.guard_attributes {
            runtime.run(parsed.len(), |i| {
                let _span = obs.span_file(Phase::Cfg, &parsed[i].name);
                wap_cfg::lower_program(&parsed[i].program)
            })
        } else {
            Vec::new()
        };
        let cfg_ns = if self.config.guard_attributes {
            elapsed_ns(cfg_start)
        } else {
            0
        };
        let cfgs_by_name: HashMap<&str, &wap_cfg::FileCfgs> = parsed
            .iter()
            .zip(&cfgs)
            .map(|(f, c)| (f.name.as_str(), c))
            .collect();

        // symptom collection + committee voting, one task per candidate;
        // the join keeps the analyzer's (file, line, class) order
        let predict_start = Instant::now();
        let findings = runtime.map(candidates, |_, candidate| {
            let _span = candidate
                .file
                .as_deref()
                .map(|f| obs.span_file(Phase::Vote, f));
            let program = candidate
                .file
                .as_deref()
                .and_then(|f| by_name.get(f))
                .copied();
            let mut symptoms = match program {
                Some(p) => collect(p, &candidate, &self.dynamic_symptoms),
                None => FeatureVector {
                    features: vec![0.0; wap_mining::attributes::wape_feature_count()],
                    present: Vec::new(),
                },
            };
            if self.config.guard_attributes {
                if let Some(file_cfgs) = candidate.file.as_deref().and_then(|f| cfgs_by_name.get(f))
                {
                    refine_with_cfg(&mut symptoms, file_cfgs, &candidate);
                }
            }
            if let Some(v) = &values {
                if let Some(fv) = candidate.file.as_deref().and_then(|f| v.by_file.get(f)) {
                    refine_with_values(&mut symptoms, fv, &candidate);
                }
            }
            let prediction = self.predictor.predict(&symptoms);
            Finding {
                candidate,
                prediction,
                symptoms,
            }
        });
        let predict_ns = elapsed_ns(predict_start);

        let mut stats = scan_stats(obs, parse_ns, taint_ns, predict_ns, 0);
        stats.set_phase_ns(Phase::Cfg, cfg_ns);
        if let Some(v) = &values {
            stats.set_phase_ns(Phase::Values, v.values_ns);
        }
        stats.allocations = wap_obs::allocations_now().saturating_sub(alloc_start);
        stats.peak_rss_bytes = wap_obs::peak_rss_bytes();
        AppReport {
            findings,
            files_analyzed: parsed.len(),
            loc,
            parse_errors,
            duration: start.elapsed(),
            stats,
            cache: CacheStatsSnapshot::default(),
            lint_ran: false,
            lint: Vec::new(),
            lint_rules: Vec::new(),
            values_ran: values.is_some(),
            dynamic_edges_resolved: values.as_ref().map_or(0, |v| v.edges_resolved),
            dynamic_edges_unresolved: values.as_ref().map_or(0, |v| v.edges_unresolved),
            tool_name: wap_report::TOOL_NAME,
            tool_version: wap_report::TOOL_VERSION,
        }
    }

    /// Runs the CFG lint pass over `sources` and attaches its findings,
    /// rule table, and phase timings to `report`.
    ///
    /// Call it after [`WapTool::analyze_sources`] on the same sources —
    /// the tainted-sink rule reads the report's taint candidates, so a
    /// sink whose tainted variables carry a dominating validation guard
    /// is suppressed while an unguarded one becomes an error-severity
    /// finding. The rule table combines the built-in rules with every
    /// weapon-declared rule in the active catalog. With a cache
    /// configured, per-file lint results are stored under
    /// content-addressed `cfg` entries keyed on the catalog fingerprint,
    /// so warm lint runs re-lint only changed files.
    pub fn apply_lint(&self, report: &mut AppReport, sources: &[(String, String)]) {
        self.apply_lint_with(report, sources, &self.config.rule_packs)
            .expect("builtin and weapon-declared lint rules always compile");
    }

    /// [`WapTool::apply_lint`] with an explicit set of rule packs joined
    /// into the rule set — the built-in lints, the weapon-declared
    /// rules, and every pack rule all compile into one
    /// [`wap_cfg::RuleSet`] and run through the same engine.
    ///
    /// Pack fingerprints are hashed into the per-file `cfg` cache keys,
    /// so results produced under one pack set are never served to
    /// another; with no packs the keys match the pack-less scheme
    /// exactly. Returns `Err` only when a pack rule fails to compile
    /// (packs validated at install time never do).
    pub fn apply_lint_with(
        &self,
        report: &mut AppReport,
        sources: &[(String, String)],
        packs: &[wap_rules::RulePack],
    ) -> Result<(), wap_cfg::RuleError> {
        use wap_cfg::{LintFinding, RuleSpec, SinkEvent};

        let obs = self.obs.job();
        let runtime = self.runtime();
        let config_fp = crate::incremental::config_fingerprint(self);
        let rules_fp = packs
            .iter()
            .map(|p| p.fingerprint())
            .collect::<Vec<_>>()
            .join(",");

        let mut sink_functions: Vec<String> = self
            .catalog
            .sinks()
            .filter_map(|s| match &s.kind {
                wap_catalog::SinkKind::Function(name) => Some(name.to_ascii_lowercase()),
                _ => None,
            })
            .collect();
        sink_functions.sort();
        sink_functions.dedup();

        // one rule set from all three sources: built-ins, weapon-declared
        // rules, installed packs
        let rule_set = {
            let _span = (!packs.is_empty()).then(|| obs.span(Phase::Rules));
            let t = Instant::now();
            let mut specs = wap_cfg::builtin_specs(sink_functions);
            specs.extend(self.catalog.lint_rules().map(|spec| {
                RuleSpec::legacy(
                    &spec.id,
                    &spec.kind,
                    &spec.function,
                    &spec.severity,
                    &spec.message,
                )
            }));
            for pack in packs {
                specs.extend(pack.rules.iter().cloned());
            }
            let rule_set = wap_cfg::RuleSet::compile(&specs)?;
            if !packs.is_empty() {
                report.stats.add_phase_ns(Phase::Rules, elapsed_ns(t));
            }
            rule_set
        };
        let rules = rule_set.rule_table();

        // value-analysis facts (`--values`): dynamic include sites the
        // value pass resolves are suppressed from the unresolved-include
        // lint, and the full per-file values back predicate `where`
        // constraints. Computed fresh each lint run, so the per-file
        // digests below keep cached lint entries from going stale when
        // another file's presence changes what resolves.
        let values_facts: Option<HashMap<String, wap_cfg::FileValues>> =
            self.config.values.then(|| {
                let parsed: Vec<(String, Program)> = sources
                    .iter()
                    .filter_map(|(n, s)| parse(s).ok().map(|p| (n.clone(), p)))
                    .collect();
                let inputs: Vec<(&str, &Program)> =
                    parsed.iter().map(|(n, p)| (n.as_str(), p)).collect();
                let outcome = run_values_stage(&inputs, &runtime, obs);
                report.stats.add_phase_ns(Phase::Values, outcome.values_ns);
                outcome.by_file.into_iter().collect()
            });

        // this report's taint candidates, grouped per file for the
        // tainted-sink rule; carriers also feed the `tainted` predicate
        let mut events: HashMap<&str, Vec<SinkEvent>> = HashMap::new();
        let mut tainted_by_file: HashMap<&str, std::collections::BTreeSet<String>> =
            HashMap::new();
        for f in &report.findings {
            if let Some(file) = f.candidate.file.as_deref() {
                events.entry(file).or_default().push(SinkEvent {
                    span: f.candidate.sink_span,
                    line: f.candidate.line,
                    class: f.candidate.class.acronym().to_string(),
                    vars: f
                        .candidate
                        .carriers
                        .iter()
                        .map(|c| Symbol::intern(c))
                        .collect(),
                });
                tainted_by_file
                    .entry(file)
                    .or_default()
                    .extend(f.candidate.carriers.iter().cloned());
            }
        }
        let needs_facts = rule_set.needs_facts();

        // one task per file: cache lookup, else parse → lower → lint
        let per_file: Vec<(Vec<LintFinding>, u64, u64)> = runtime.run(sources.len(), |i| {
            let (name, src) = &sources[i];
            // fact digests join the key only when the facts can change
            // the findings: resolved-include offsets in values mode (a
            // new scan-set file can make an include resolve), taint
            // carriers and the full value fingerprint when predicate
            // rules consume them. Facts are recomputed every run, so
            // a cross-file change always re-keys this file's entry.
            let fv = values_facts.as_ref().and_then(|m| m.get(name.as_str()));
            let entry_salt = if values_facts.is_some() || needs_facts {
                let mut salt = rules_fp.clone();
                if values_facts.is_some() {
                    let offsets = fv
                        .map(|fv| {
                            fv.resolution
                                .includes
                                .keys()
                                .map(|v| v.to_string())
                                .collect::<Vec<_>>()
                                .join(",")
                        })
                        .unwrap_or_default();
                    salt.push_str(&format!("\u{1f}values:{offsets}"));
                }
                if needs_facts {
                    let tainted = tainted_by_file
                        .get(name.as_str())
                        .map(|t| t.iter().cloned().collect::<Vec<_>>().join(","))
                        .unwrap_or_default();
                    salt.push_str(&format!("\u{1f}tainted:{tainted}"));
                    if let Some(fv) = fv {
                        salt.push_str(&format!("\u{1f}facts:{}", fv.facts_fingerprint()));
                    }
                }
                salt
            } else {
                rules_fp.clone()
            };
            let key = self.cache.as_ref().map(|_| {
                crate::incremental::cfg_lint_key(
                    name,
                    &wap_php::content_hash(src),
                    &config_fp,
                    &entry_salt,
                )
            });
            if let (Some(store), Some(key)) = (&self.cache, &key) {
                match store.probe(key) {
                    Some((payload, tier)) => match crate::incremental::decode_lint(&payload) {
                        Ok(findings) => {
                            obs.event_file(crate::incremental::hit_event(tier), name);
                            return (findings, 0, 0);
                        }
                        Err(_) => {
                            obs.event_file("cache_corrupt", name);
                            store.reject(key);
                        }
                    },
                    None => obs.event_file("cache_miss", name),
                }
            }
            let t = Instant::now();
            let (program, cfgs) = {
                let _span = obs.span_file(Phase::Cfg, name);
                match parse(src) {
                    Ok(program) => {
                        let cfgs = wap_cfg::lower_program(&program);
                        (program, cfgs)
                    }
                    // parse failures are already reported by the analysis
                    Err(_) => return (Vec::new(), elapsed_ns(t), 0),
                }
            };
            let cfg_ns = elapsed_ns(t);
            let t = Instant::now();
            let mut findings = {
                let _span = obs.span_file(Phase::Lint, name);
                let facts = wap_cfg::FileFacts {
                    tainted_vars: tainted_by_file.get(name.as_str()),
                    values: fv,
                };
                let mut fs = rule_set.run_with_facts(name, &cfgs, Some(src), &facts);
                if let Some(sinks) = events.get(name.as_str()) {
                    fs.extend(rule_set.run_tainted(name, &cfgs, sinks));
                }
                // dynamic includes nothing resolved are analysis coverage
                // gaps; with `--values` off every dynamic include is one
                let sites: Vec<(wap_php::Span, u32)> = wap_cfg::dynamic_include_sites(&program)
                    .into_iter()
                    .filter(|s| !fv.is_some_and(|fv| fv.is_resolved_include(s.start())))
                    .map(|s| (s, s.line()))
                    .collect();
                fs.extend(rule_set.run_unresolved_includes(name, &sites));
                fs
            };
            wap_cfg::sort_findings(&mut findings);
            findings.dedup();
            let lint_ns = elapsed_ns(t);
            if let (Some(store), Some(key)) = (&self.cache, &key) {
                store.put(key, crate::incremental::encode_lint(&findings));
            }
            (findings, cfg_ns, lint_ns)
        });
        drop(events);

        let mut lint: Vec<LintFinding> = Vec::new();
        let (mut cfg_ns, mut lint_ns) = (0u64, 0u64);
        for (findings, c, l) in per_file {
            lint.extend(findings);
            cfg_ns += c;
            lint_ns += l;
        }
        wap_cfg::sort_findings(&mut lint);
        lint.dedup();
        report.lint = lint;
        report.lint_rules = rules;
        report.lint_ran = true;
        report.stats.add_phase_ns(Phase::Cfg, cfg_ns);
        report.stats.add_phase_ns(Phase::Lint, lint_ns);
        Ok(())
    }

    /// Corrects one file: applies fixes for every *real* finding located
    /// in `file_name`.
    pub fn fix_file(&self, file_name: &str, source: &str, report: &AppReport) -> FixResult {
        let _span = self.obs.job().span_file(Phase::Fix, file_name);
        let vulns: Vec<Candidate> = report
            .real_vulnerabilities()
            .filter(|f| f.candidate.file.as_deref() == Some(file_name))
            .map(|f| f.candidate.clone())
            .collect();
        self.corrector.fix_source(source, &vulns)
    }
}

pub(crate) fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Everything the value-analysis stage (`--values`) hands the rest of
/// the pipeline: per-file value facts, the taint engine's resolution
/// view of them, and the dynamic-edge counters the report surfaces.
pub(crate) struct ValuesOutcome {
    /// Per-file value facts, for sink-context symptom refinement.
    pub(crate) by_file: HashMap<String, wap_cfg::FileValues>,
    /// The taint engine's view: only files with at least one resolved
    /// include or call appear.
    pub(crate) resolutions: HashMap<String, wap_taint::FileResolution>,
    /// Dynamic edges resolved to known targets, summed across files.
    pub(crate) edges_resolved: usize,
    /// Dynamic edges left opaque, summed across files.
    pub(crate) edges_unresolved: usize,
    /// Wall-clock nanoseconds of the whole stage.
    pub(crate) values_ns: u64,
}

/// Runs the interprocedural value analysis over every parsed file: value
/// summaries are merged first-declaration-wins (matching the taint
/// engine's canonical function index), then each file's top-level flow
/// is interpreted over the value lattice in parallel. Deterministic for
/// any job count — the joins are index-ordered.
pub(crate) fn run_values_stage(
    files: &[(&str, &Program)],
    runtime: &Runtime,
    obs: JobHandle<'_>,
) -> ValuesOutcome {
    let start = Instant::now();
    let summary_lists: Vec<Vec<(Symbol, wap_cfg::ValueSummary)>> =
        runtime.run(files.len(), |i| wap_cfg::summarize_values(files[i].1));
    let mut summaries: HashMap<Symbol, wap_cfg::ValueSummary> = HashMap::new();
    for list in summary_lists {
        for (name, s) in list {
            summaries.entry(name).or_insert(s);
        }
    }
    let known: std::collections::BTreeSet<String> =
        files.iter().map(|(n, _)| n.to_string()).collect();
    let per_file: Vec<wap_cfg::FileValues> = runtime.run(files.len(), |i| {
        let (name, program) = files[i];
        let _span = obs.span_file(Phase::Values, name);
        wap_cfg::analyze_file_values(name, program, &summaries, &known)
    });
    let mut out = ValuesOutcome {
        by_file: HashMap::new(),
        resolutions: HashMap::new(),
        edges_resolved: 0,
        edges_unresolved: 0,
        values_ns: 0,
    };
    for ((name, _), fv) in files.iter().zip(per_file) {
        let (resolved, unresolved) = fv.resolution.edge_counts();
        out.edges_resolved += resolved;
        out.edges_unresolved += unresolved;
        if !fv.resolution.includes.is_empty() || !fv.resolution.calls.is_empty() {
            out.resolutions.insert(
                name.to_string(),
                wap_taint::FileResolution {
                    includes: fv
                        .resolution
                        .includes
                        .iter()
                        .map(|(k, v)| (*k, v.clone()))
                        .collect(),
                    calls: fv
                        .resolution
                        .calls
                        .iter()
                        .map(|(k, v)| (*k, v.clone()))
                        .collect(),
                },
            );
        }
        out.by_file.insert(name.to_string(), fv);
    }
    out.values_ns = elapsed_ns(start);
    out
}

/// Rewrites value-context symptoms from the lattice at this candidate's
/// sink (`--values` mode): a numeric-known carrier marks the intval
/// symptom (the committee's strongest FP signal), a quoted-string
/// context clears the numeric-entry-point symptom (quoting defeats the
/// "numeric position" heuristic).
pub(crate) fn refine_with_values(
    symptoms: &mut FeatureVector,
    values: &wap_cfg::FileValues,
    candidate: &Candidate,
) {
    let offset = candidate.sink_span.start();
    let mut best: Option<wap_cfg::SinkContext> = None;
    for c in &candidate.carriers {
        if let Some(ctx) = values.sink_context(Symbol::intern(c), offset) {
            best = Some(match best {
                // NumericCast > QuotedString > IdentifierPosition
                Some(prev) => prev.max_priority(ctx),
                None => ctx,
            });
        }
    }
    if let Some(ctx) = best {
        wap_mining::refine_with_sink_context(symptoms, ctx.name());
    }
}

/// Clears validation symptoms the CFG dominator analysis cannot prove to
/// guard this candidate's sink (`guard_attributes` mode). Symptoms the
/// guard analysis *does* prove — a dominating `is_numeric`, a cast on a
/// tainted carrier — survive, so the predictor sees only validations
/// that actually protect the sink.
pub(crate) fn refine_with_cfg(
    symptoms: &mut FeatureVector,
    cfgs: &wap_cfg::FileCfgs,
    candidate: &Candidate,
) {
    let carriers: Vec<Symbol> = candidate
        .carriers
        .iter()
        .map(|c| Symbol::intern(c))
        .collect();
    let guarded: std::collections::BTreeSet<String> = cfgs
        .dominating_guards(candidate.sink_span, &carriers)
        .into_iter()
        .map(|g| g.validator.as_str().to_string())
        .collect();
    wap_mining::refine_with_guards(symptoms, &guarded);
}

/// Assembles a report's [`wap_report::ScanStats`]: the four directly
/// measured phase totals, plus — when tracing is on — the traced
/// sub-phase totals (summary merge, top-level exec, votes, fixes) and
/// the per-file breakdown aggregated from the collector's spans.
pub(crate) fn scan_stats(
    obs: JobHandle<'_>,
    parse_ns: u64,
    taint_ns: u64,
    predict_ns: u64,
    cache_ns: u64,
) -> wap_report::ScanStats {
    let mut stats = wap_report::ScanStats::new();
    stats.set_phase_ns(Phase::Parse, parse_ns);
    stats.set_phase_ns(Phase::Taint, taint_ns);
    stats.set_phase_ns(Phase::Predict, predict_ns);
    stats.set_phase_ns(Phase::Cache, cache_ns);
    if obs.enabled() {
        let traced = obs.collector().phase_totals(obs.id());
        for phase in [
            Phase::SummaryMerge,
            Phase::TopLevelExec,
            Phase::Vote,
            Phase::Fix,
        ] {
            stats.set_phase_ns(phase, traced[phase.index()]);
        }
        stats.set_file_totals(obs.collector().file_totals(obs.id()));
    }
    stats
}

// The resident service shares one trained tool across request-handler and
// executor threads; keep that property checked at compile time.
#[allow(dead_code)]
fn assert_tool_is_service_safe() {
    fn check<T: Send + Sync>() {}
    check::<WapTool>();
    check::<AppReport>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_catalog::VulnClass;

    fn src(name: &str, body: &str) -> (String, String) {
        (name.to_string(), format!("<?php\n{body}"))
    }

    #[test]
    fn wape_detects_and_classifies() {
        let tool = WapTool::new(ToolConfig::wape());
        let report = tool.analyze_sources(&[src(
            "a.php",
            r#"
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = $id");
"#,
        )]);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].is_real());
        assert_eq!(report.files_analyzed, 1);
        assert!(report.loc > 0);
    }

    #[test]
    fn guarded_flow_predicted_false_positive() {
        let tool = WapTool::new(ToolConfig::wape());
        let report = tool.analyze_sources(&[src(
            "b.php",
            r#"
$id = $_GET['id'];
if (!is_numeric($id) || !isset($_GET['id'])) { exit('no'); }
mysql_query("SELECT name FROM users WHERE id = $id");
"#,
        )]);
        assert_eq!(report.findings.len(), 1);
        let f = &report.findings[0];
        assert!(
            !f.is_real(),
            "guarded flow should be predicted FP; votes={} symptoms={:?}",
            f.prediction.votes,
            f.symptoms.present
        );
        assert!(f.prediction.justification.contains(&"is_numeric"));
    }

    #[test]
    fn wap_v21_misses_new_classes() {
        let v21 = WapTool::new(ToolConfig::wap_v21());
        let wape = WapTool::new(ToolConfig::wape());
        let files = [src(
            "c.php",
            "ldap_search($c, $b, '(uid=' . $_GET['u'] . ')');\n",
        )];
        assert_eq!(v21.analyze_sources(&files).findings.len(), 0);
        assert_eq!(wape.analyze_sources(&files).findings.len(), 1);
    }

    #[test]
    fn weapons_only_load_on_wape() {
        let full = WapTool::new(ToolConfig::wape_full());
        let files = [src("d.php", "header('Location: ' . $_GET['to']);\n")];
        assert_eq!(full.analyze_sources(&files).findings.len(), 1);
        let mut v21cfg = ToolConfig::wap_v21();
        v21cfg.weapons = vec![WeaponConfig::hei()];
        let v21 = WapTool::new(v21cfg);
        assert_eq!(v21.analyze_sources(&files).findings.len(), 0);
    }

    #[test]
    fn analyze_and_fix_round_trip() {
        let tool = WapTool::new(ToolConfig::wape());
        let file = src(
            "e.php",
            r#"
$q = $_POST['q'];
mysql_query("SELECT * FROM t WHERE c = '$q'");
"#,
        );
        let report = tool.analyze_sources(std::slice::from_ref(&file));
        assert_eq!(report.real_vulnerabilities().count(), 1);
        let fixed = tool.fix_file("e.php", &file.1, &report);
        assert_eq!(fixed.applied.len(), 1);
        assert!(fixed.fixed_source.contains("mysql_real_escape_string("));
        // fixed file re-analyzes clean (fix sanitizer is already known)
        let report2 = tool.analyze_sources(&[("e.php".to_string(), fixed.fixed_source.clone())]);
        assert_eq!(report2.findings.len(), 0, "{:?}", report2.findings);
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let tool = WapTool::new(ToolConfig::wape());
        let report = tool.analyze_sources(&[
            ("bad.php".to_string(), "<?php $x = ;".to_string()),
            src("ok.php", "echo $_GET['m'];\n"),
        ]);
        assert_eq!(report.parse_errors.len(), 1);
        assert_eq!(report.parse_errors[0].0, "bad.php");
        assert_eq!(report.findings.len(), 1);
    }

    #[test]
    fn loc_counts_parsed_files_only() {
        let tool = WapTool::new(ToolConfig::wape());
        let good = src("ok.php", "echo $_GET['m'];\n");
        let baseline = tool.analyze_sources(std::slice::from_ref(&good)).loc;
        let report = tool.analyze_sources(&[
            (
                "bad.php".to_string(),
                "<?php $x = ;\n// long\n// broken\n// file\n".into(),
            ),
            good,
        ]);
        assert_eq!(
            report.loc, baseline,
            "unparsed files must not count as analyzed LoC"
        );
        assert_eq!(report.files_analyzed, 1);
    }

    #[test]
    fn phase_timings_are_recorded() {
        let tool = WapTool::new(ToolConfig::wape());
        let report =
            tool.analyze_sources(&[src("t.php", "$a = $_GET['a'];\nmysql_query(\"Q $a\");\n")]);
        assert!(report.stats.phase_ns(Phase::Parse) > 0);
        assert!(report.stats.phase_ns(Phase::Taint) > 0);
        assert!(report.stats.phase_ns(Phase::Predict) > 0);
        assert!(report.duration.as_nanos() >= u128::from(report.stats.phase_ns(Phase::Parse)));
        // tracing was off, so there is no per-file breakdown
        assert!(report.stats.files.is_empty());
    }

    #[test]
    fn traced_run_collects_spans_and_per_file_stats() {
        let config = ToolConfig::builder()
            .no_weapons()
            .jobs(2)
            .trace(true)
            .build();
        let tool = WapTool::new(config);
        let files = vec![
            src("one.php", "echo $_GET['a'];\n"),
            src("two.php", "$b = $_GET['b'];\nmysql_query(\"Q $b\");\n"),
        ];
        let report = tool.analyze_sources(&files);
        assert_eq!(report.findings.len(), 2);
        assert!(!report.stats.files.is_empty(), "per-file stats expected");
        let names: Vec<&str> = report.stats.files.iter().map(|f| f.file.as_str()).collect();
        assert!(names.contains(&"one.php") && names.contains(&"two.php"));
        // the collector holds parse + taint + toplevel + vote spans
        assert!(tool.obs().enabled());
        assert!(tool.obs().len() > 0);
        let trace = tool.obs().render_ndjson();
        assert!(trace.starts_with("{\"schema\":\"wap-trace-v1\""));
        // untraced run over the same sources is bit-identical
        let plain = WapTool::new(ToolConfig::builder().no_weapons().jobs(2).build())
            .analyze_sources(&files);
        assert_eq!(
            format!("{:?}", plain.findings),
            format!("{:?}", report.findings)
        );
    }

    #[test]
    fn report_accessors() {
        let tool = WapTool::new(ToolConfig::wape());
        let report = tool.analyze_sources(&[src(
            "f.php",
            r#"
echo $_GET['a'];
$b = $_GET['b'];
if (!is_numeric($b) || !isset($_GET['b'])) { exit; }
mysql_query("SELECT x FROM t WHERE i = $b");
"#,
        )]);
        assert_eq!(report.findings.len(), 2);
        let real = report.real_by_class();
        assert!(real.iter().any(|(c, n)| c == "XSS" && *n == 1));
        assert_eq!(report.vulnerable_files(), 1);
        assert_eq!(report.predicted_false_positives().count(), 1);
    }

    #[test]
    fn parallel_parsing_matches_serial() {
        let tool = WapTool::new(ToolConfig::wape());
        let many: Vec<(String, String)> = (0..24)
            .map(|i| src(&format!("m{i}.php"), &format!("echo $_GET['k{i}'];\n")))
            .collect();
        let report = tool.analyze_sources(&many);
        assert_eq!(report.findings.len(), 24);
        assert_eq!(report.files_analyzed, 24);
    }

    /// Findings must be identical — order included — for any job count.
    #[test]
    fn job_count_never_changes_findings() {
        let files: Vec<(String, String)> = (0..16)
            .map(|i| {
                src(
                    &format!("j{i}.php"),
                    &format!(
                        "$v{i} = $_GET['p{i}'];\nmysql_query(\"SELECT x FROM t{i} WHERE a = $v{i}\");\necho $v{i};\n"
                    ),
                )
            })
            .collect();
        let fingerprint = |jobs: usize| {
            let tool = WapTool::new(ToolConfig::builder().no_weapons().jobs(jobs).build());
            let report = tool.analyze_sources(&files);
            report
                .findings
                .iter()
                .map(|f| {
                    format!(
                        "{}:{}:{}:{}:{}",
                        f.candidate.file.as_deref().unwrap_or(""),
                        f.candidate.line,
                        f.candidate.class,
                        f.prediction.is_false_positive,
                        f.prediction.votes,
                    )
                })
                .collect::<Vec<_>>()
        };
        let serial = fingerprint(1);
        assert_eq!(serial.len(), 32);
        for jobs in [2, 8] {
            assert_eq!(fingerprint(jobs), serial, "jobs={jobs} diverged");
        }
    }

    #[test]
    fn warm_cached_run_is_bit_identical_to_cold() {
        let files: Vec<(String, String)> = vec![
            src(
                "lib.php",
                "function fetch($k) { return $_GET[$k]; }\nfunction safe($v) { return htmlentities($v); }\n",
            ),
            src(
                "page.php",
                "$q = fetch('q');\nmysql_query(\"SELECT * FROM t WHERE c = '$q'\");\necho safe($q);\necho $q;\n",
            ),
            src("broken.php", "$x = ;"),
        ];
        let cold = WapTool::new(ToolConfig::wape()).analyze_sources(&files);

        let mut tool = WapTool::new(ToolConfig::wape());
        tool.enable_memory_cache();
        let first = tool.analyze_sources(&files);
        let warm = tool.analyze_sources(&files);
        for report in [&first, &warm] {
            assert_eq!(report.findings.len(), cold.findings.len());
            for (a, b) in report.findings.iter().zip(&cold.findings) {
                assert_eq!(format!("{a:?}"), format!("{b:?}"));
            }
            assert_eq!(report.files_analyzed, cold.files_analyzed);
            assert_eq!(report.loc, cold.loc);
            assert_eq!(report.parse_errors.len(), cold.parse_errors.len());
        }
        assert!(first.cache.stored > 0, "cold cached run must populate");
        assert!(warm.cache.hits > 0, "warm run must hit");
        assert_eq!(warm.cache.misses, 0, "fully warm run must not miss");
    }

    #[test]
    fn cache_reanalyzes_only_changed_files() {
        let mut files: Vec<(String, String)> = (0..6)
            .map(|i| src(&format!("c{i}.php"), &format!("echo $_GET['k{i}'];\n")))
            .collect();
        let mut tool = WapTool::new(ToolConfig::wape());
        tool.enable_memory_cache();
        tool.analyze_sources(&files);
        // edit one file: its entries miss, the other five hit
        files[3].1.push_str("echo $_POST['extra'];\n");
        let warm = tool.analyze_sources(&files);
        assert_eq!(warm.findings.len(), 7);
        let cold = WapTool::new(ToolConfig::wape()).analyze_sources(&files);
        for (a, b) in warm.findings.iter().zip(&cold.findings) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        assert!(warm.cache.hits > 0);
        assert!(warm.cache.misses > 0);
    }

    #[test]
    fn duplicate_file_names_fall_back_to_cold_path() {
        let files = vec![
            src("dup.php", "echo $_GET['a'];\n"),
            src("dup.php", "echo $_GET['b'];\n"),
        ];
        let mut tool = WapTool::new(ToolConfig::wape());
        tool.enable_memory_cache();
        let report = tool.analyze_sources(&files);
        assert_eq!(report.findings.len(), 2);
        assert_eq!(report.cache, wap_cache::CacheStatsSnapshot::default());
    }

    #[test]
    fn catalog_change_invalidates_cached_findings() {
        let files = vec![src(
            "san.php",
            "function clean($v) { return str_replace(\"'\", \"''\", $v); }\n$n = clean($_GET['n']);\nmysql_query(\"SELECT * FROM t WHERE n = '$n'\");\n",
        )];
        let mut tool = WapTool::new(ToolConfig::wape());
        tool.enable_memory_cache();
        assert_eq!(tool.analyze_sources(&files).findings.len(), 1);
        tool.catalog_mut()
            .add_user_sanitizer("clean", &[VulnClass::Sqli]);
        // same sources, different catalog: stale entries must not be reused
        assert_eq!(tool.analyze_sources(&files).findings.len(), 0);
    }

    #[test]
    fn user_sanitizer_study_on_tool() {
        let mut tool = WapTool::new(ToolConfig::wape());
        let files = [src(
            "vfront.php",
            r#"
function escape($v) { return str_replace("'", "''", $v); }
$n = escape($_GET['n']);
mysql_query("SELECT * FROM t WHERE n = '$n'");
"#,
        )];
        assert_eq!(tool.analyze_sources(&files).findings.len(), 1);
        tool.catalog_mut()
            .add_user_sanitizer("escape", &[VulnClass::Sqli]);
        assert_eq!(tool.analyze_sources(&files).findings.len(), 0);
    }
}
