//! # wap-core — the WAPe pipeline
//!
//! The paper's primary contribution assembled: a **modular, extensible**
//! static analysis tool for PHP web applications (Medeiros et al., DSN
//! 2016). The pipeline runs the three modules of Fig. 1 — taint-based
//! candidate detection (`wap-taint`), data-mining false positive
//! prediction (`wap-mining`), and source correction (`wap-fixer`) — over
//! a catalog of vulnerability classes (`wap-catalog`) that **weapons**
//! extend at runtime from pure configuration (§III-D).
//!
//! ## Quick start
//!
//! ```
//! use wap_core::{WapTool, ToolConfig, Weapon};
//! use wap_catalog::WeaponConfig;
//!
//! // WAPe with the paper's three weapons (-nosqli, -hei, -wpsqli)
//! let tool = WapTool::new(ToolConfig::wape_full());
//! let report = tool.analyze_sources(&[(
//!     "plugin.php".to_string(),
//!     "<?php header('Location: ' . $_GET['to']);".to_string(),
//! )]);
//! assert_eq!(report.findings.len(), 1); // HI, via the -hei weapon
//!
//! // generating a brand-new weapon needs no programming:
//! let weapon = Weapon::generate(WeaponConfig::nosqli())?;
//! assert_eq!(weapon.flag(), "-nosqli");
//! # Ok::<(), wap_core::WeaponError>(())
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod error;
pub mod overlay;
mod incremental;
pub mod pipeline;
pub mod report;
pub mod weapon;

/// The shared work-stealing analysis runtime every parallel phase runs on.
pub use wap_runtime as runtime;

/// The persistent incremental cache layer (store + codec).
pub use wap_cache as cache;

pub use error::WapError;
pub use overlay::{collect_sources_with_overlay, SourceOverlay};
pub use pipeline::{AppReport, Finding, Generation, ToolConfig, ToolConfigBuilder, WapTool};
pub use wap_obs::{allocations_now, peak_rss_bytes, CountingAlloc};
pub use wap_report::{Format, Phase, ScanStats, TOOL_NAME, TOOL_VERSION};
pub use wap_runtime::Runtime;

/// Parses PHP source (re-exported convenience used by the CLI).
pub fn pipeline_parse(src: &str) -> Result<wap_php::Program, wap_php::ParseError> {
    wap_php::parse(src)
}
pub use report::{bar_chart, real_by_class, total_predicted_fps, total_real, TextTable};
pub use weapon::{Weapon, WeaponError};
