//! Aggregated reporting: per-class tallies and plain-text tables.

use crate::pipeline::AppReport;
use std::collections::BTreeMap;

/// Tallies `(class acronym → count)` of real vulnerabilities across many
/// application reports (the data behind Fig. 5).
pub fn real_by_class(reports: &[(String, AppReport)]) -> BTreeMap<String, usize> {
    let mut out = BTreeMap::new();
    for (_, r) in reports {
        for f in r.real_vulnerabilities() {
            *out.entry(f.candidate.class.acronym().to_string())
                .or_insert(0) += 1;
        }
    }
    out
}

/// Total predicted false positives across reports (the `FPP` column).
pub fn total_predicted_fps(reports: &[(String, AppReport)]) -> usize {
    reports
        .iter()
        .map(|(_, r)| r.predicted_false_positives().count())
        .sum()
}

/// Total real vulnerabilities across reports.
pub fn total_real(reports: &[(String, AppReport)]) -> usize {
    reports
        .iter()
        .map(|(_, r)| r.real_vulnerabilities().count())
        .sum()
}

/// A minimal plain-text table renderer for the experiment binaries.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // left-align first column, right-align the rest
                if i == 0 {
                    line.push_str(&format!("{:<w$}", c, w = widths[i]));
                } else {
                    line.push_str(&format!("{:>w$}", c, w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a text bar chart (used for Figs. 4 and 5).
pub fn bar_chart(title: &str, series: &[(String, Vec<(String, usize)>)]) -> String {
    let mut out = format!("{title}\n");
    let max = series
        .iter()
        .flat_map(|(_, bars)| bars.iter().map(|(_, v)| *v))
        .max()
        .unwrap_or(1)
        .max(1);
    let label_w = series
        .iter()
        .flat_map(|(_, bars)| bars.iter().map(|(l, _)| l.len()))
        .max()
        .unwrap_or(8);
    for (name, bars) in series {
        out.push_str(&format!("  [{name}]\n"));
        for (label, value) in bars {
            let width = (value * 48).div_ceil(max);
            out.push_str(&format!(
                "  {label:<label_w$} {:>5} |{}\n",
                value,
                "#".repeat(width)
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "count"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // right-aligned numeric column
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    fn bar_chart_scales() {
        let s = bar_chart(
            "Fig test",
            &[(
                "series".into(),
                vec![("a".into(), 10), ("b".into(), 5), ("c".into(), 0)],
            )],
        );
        assert!(s.contains("Fig test"));
        let a_bar = s.lines().find(|l| l.trim_start().starts_with('a')).unwrap();
        let b_bar = s.lines().find(|l| l.trim_start().starts_with('b')).unwrap();
        assert!(a_bar.matches('#').count() > b_bar.matches('#').count());
    }

    #[test]
    fn empty_chart_does_not_panic() {
        let s = bar_chart("empty", &[]);
        assert!(s.contains("empty"));
    }
}

#[cfg(test)]
mod aggregation_tests {
    use super::*;
    use crate::pipeline::{ToolConfig, WapTool};

    fn reports() -> Vec<(String, AppReport)> {
        let tool = WapTool::new(ToolConfig::wape_full());
        let apps = [
            ("app1", "<?php mysql_query('Q' . $_GET['a']); echo $_GET['b'];"),
            ("app2", "<?php echo $_POST['c']; ldap_search($c, $d, '(' . $_GET['e'] . ')');"),
            (
                "app3",
                "<?php\n$x = $_GET['x'];\nif (!is_numeric($x) || !isset($_GET['x'])) { exit; }\nmysql_query(\"SELECT 1 WHERE a = $x\");",
            ),
        ];
        apps.iter()
            .map(|(name, src)| {
                let files = vec![(format!("{name}.php"), src.to_string())];
                (name.to_string(), tool.analyze_sources(&files))
            })
            .collect()
    }

    #[test]
    fn real_by_class_aggregates_across_apps() {
        let rs = reports();
        let by_class = real_by_class(&rs);
        assert_eq!(by_class.get("SQLI"), Some(&1));
        assert_eq!(by_class.get("XSS"), Some(&2));
        assert_eq!(by_class.get("LDAPI"), Some(&1));
    }

    #[test]
    fn totals_are_consistent() {
        let rs = reports();
        let real = total_real(&rs);
        let fps = total_predicted_fps(&rs);
        let all: usize = rs.iter().map(|(_, r)| r.findings.len()).sum();
        assert_eq!(real + fps, all);
        assert_eq!(fps, 1, "app3's guarded flow is the predicted FP");
    }
}
