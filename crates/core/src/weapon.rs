//! The weapon generator (§III-D).
//!
//! A weapon is generated from pure configuration data — no programming:
//! the generator validates the [`WeaponConfig`], instantiates the fix from
//! its template, and produces a [`Weapon`] that can be *linked* into a
//! tool (catalog sinks/sanitizers/entry points + corrector fix + dynamic
//! symptoms). Configurations round-trip through JSON, standing in for the
//! paper's external `ep`/`ss`/`san` files and generated jar packages.

use std::error::Error;
use std::fmt;
use wap_catalog::{Catalog, FixTemplateSpec, VulnClass, WeaponConfig};
use wap_fixer::Corrector;
use wap_mining::attributes::symptom_index;

/// Validation failure when generating a weapon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeaponError {
    message: String,
}

impl WeaponError {
    fn new(message: impl Into<String>) -> Self {
        WeaponError {
            message: message.into(),
        }
    }
}

impl fmt::Display for WeaponError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid weapon configuration: {}", self.message)
    }
}

impl Error for WeaponError {}

/// A generated weapon: validated configuration plus its instantiated fix.
#[derive(Debug, Clone, PartialEq)]
pub struct Weapon {
    config: WeaponConfig,
    fix_name: String,
}

impl Weapon {
    /// Generates a weapon from configuration, validating it first.
    ///
    /// # Errors
    ///
    /// Returns [`WeaponError`] when the configuration is unusable: no
    /// name, no sinks, an empty fix template, or dynamic symptoms whose
    /// static equivalent does not exist.
    pub fn generate(config: WeaponConfig) -> Result<Weapon, WeaponError> {
        if config.name.trim().is_empty() {
            return Err(WeaponError::new("weapon name is empty"));
        }
        if !config
            .name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            return Err(WeaponError::new(
                "weapon name must be lowercase alphanumeric (it becomes the activation flag)",
            ));
        }
        if config.class_name.trim().is_empty() {
            return Err(WeaponError::new("class name is empty"));
        }
        if config.sinks.is_empty() {
            return Err(WeaponError::new(
                "a weapon needs at least one sensitive sink",
            ));
        }
        for s in &config.sinks {
            if s.name.trim().is_empty() {
                return Err(WeaponError::new("sink with empty name"));
            }
        }
        match &config.fix {
            FixTemplateSpec::PhpSanitization { sanitizer } => {
                if sanitizer.trim().is_empty() {
                    return Err(WeaponError::new("php_sanitization fix needs a sanitizer"));
                }
            }
            FixTemplateSpec::UserSanitization {
                malicious,
                neutralizer,
            } => {
                if malicious.is_empty() {
                    return Err(WeaponError::new(
                        "user_sanitization fix needs malicious characters",
                    ));
                }
                if neutralizer.is_empty() {
                    return Err(WeaponError::new(
                        "user_sanitization fix needs a neutralizer",
                    ));
                }
            }
            FixTemplateSpec::UserValidation { malicious } => {
                if malicious.is_empty() {
                    return Err(WeaponError::new(
                        "user_validation fix needs malicious characters",
                    ));
                }
            }
        }
        for ds in &config.dynamic_symptoms {
            let known = ds.equivalent == "white_list"
                || ds.equivalent == "black_list"
                || symptom_index(&ds.equivalent).is_some();
            if !known {
                return Err(WeaponError::new(format!(
                    "dynamic symptom `{}` maps to unknown static symptom `{}`",
                    ds.function, ds.equivalent
                )));
            }
        }
        let fix_name = format!("san_{}", config.name);
        Ok(Weapon { config, fix_name })
    }

    /// Loads a weapon from its JSON configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed JSON or invalid configuration.
    pub fn from_json(json: &str) -> Result<Weapon, Box<dyn Error + Send + Sync>> {
        let config: WeaponConfig = serde_json::from_str(json)?;
        Ok(Weapon::generate(config)?)
    }

    /// Serializes the weapon's configuration to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.config).expect("weapon config serializes")
    }

    /// The weapon's name (e.g. `nosqli`).
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// The activation flag, e.g. `-nosqli`.
    pub fn flag(&self) -> String {
        self.config.flag()
    }

    /// The weapon's vulnerability class.
    pub fn class(&self) -> VulnClass {
        self.config.class()
    }

    /// The generated fix's name (`san_<weapon>`).
    pub fn fix_name(&self) -> &str {
        &self.fix_name
    }

    /// Links the weapon into a catalog and corrector — the final step of
    /// the generator ("put together the three parts, linking them to
    /// WAP").
    pub fn link(&self, catalog: &mut Catalog, corrector: &mut Corrector) {
        catalog.add_weapon(self.config.clone());
        // register the fix for every class the weapon's sinks map to
        let mut classes: Vec<VulnClass> = self
            .config
            .sinks
            .iter()
            .map(|s| {
                s.class
                    .as_deref()
                    .map(WeaponConfig::resolve_class)
                    .unwrap_or_else(|| self.config.class())
            })
            .collect();
        classes.sort();
        classes.dedup();
        for class in classes {
            corrector.register(class, &self.fix_name, self.config.fix.clone());
        }
    }

    /// Consumes the weapon, returning its configuration.
    pub fn into_config(self) -> WeaponConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_catalog::{DynamicSymptom, WeaponSink};

    #[test]
    fn builtin_weapons_validate() {
        for cfg in [
            WeaponConfig::nosqli(),
            WeaponConfig::hei(),
            WeaponConfig::wpsqli(),
        ] {
            let w = Weapon::generate(cfg).expect("builtin weapon valid");
            assert!(w.flag().starts_with('-'));
            assert!(w.fix_name().starts_with("san_"));
        }
    }

    #[test]
    fn rejects_empty_sinks() {
        let mut cfg = WeaponConfig::nosqli();
        cfg.sinks.clear();
        let err = Weapon::generate(cfg).unwrap_err();
        assert!(err.to_string().contains("sensitive sink"));
    }

    #[test]
    fn rejects_bad_name() {
        let mut cfg = WeaponConfig::nosqli();
        cfg.name = "No SQL!".into();
        assert!(Weapon::generate(cfg).is_err());
    }

    #[test]
    fn rejects_unknown_dynamic_symptom() {
        let mut cfg = WeaponConfig::nosqli();
        cfg.dynamic_symptoms
            .push(DynamicSymptom::new("val_x", "not_a_symptom", "validation"));
        let err = Weapon::generate(cfg).unwrap_err();
        assert!(err.to_string().contains("not_a_symptom"));
    }

    #[test]
    fn accepts_list_pseudo_symptoms() {
        let mut cfg = WeaponConfig::nosqli();
        cfg.dynamic_symptoms
            .push(DynamicSymptom::new("allowed", "white_list", "validation"));
        assert!(Weapon::generate(cfg).is_ok());
    }

    #[test]
    fn rejects_empty_fix_template() {
        let mut cfg = WeaponConfig::hei();
        cfg.fix = FixTemplateSpec::UserSanitization {
            malicious: Vec::new(),
            neutralizer: " ".into(),
        };
        assert!(Weapon::generate(cfg).is_err());
    }

    #[test]
    fn json_round_trip() {
        let w = Weapon::generate(WeaponConfig::wpsqli()).unwrap();
        let json = w.to_json();
        let back = Weapon::from_json(&json).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(Weapon::from_json("{not json").is_err());
        assert!(Weapon::from_json(r#"{"name":"x","class_name":"X","sinks":[],"fix":{"template":"user_validation","malicious":["'"]}}"#).is_err());
    }

    #[test]
    fn linking_installs_sinks_and_fix() {
        let w = Weapon::generate(WeaponConfig::hei()).unwrap();
        let mut catalog = Catalog::wape();
        let mut corrector = Corrector::new();
        w.link(&mut catalog, &mut corrector);
        assert!(catalog.has_class(&VulnClass::HeaderI));
        assert!(catalog.has_class(&VulnClass::EmailI));
        assert_eq!(corrector.fix_for(&VulnClass::HeaderI).name, "san_hei");
        assert_eq!(corrector.fix_for(&VulnClass::EmailI).name, "san_hei");
    }

    #[test]
    fn hand_written_weapon_end_to_end() {
        // a user defines a brand-new class in JSON, no programming
        let json = r#"{
            "name": "xxe",
            "class_name": "XXE",
            "sinks": [
                {"name": "simplexml_load_string"},
                {"name": "loadXML", "method": true}
            ],
            "sanitizers": ["libxml_disable_entity_loader"],
            "fix": {"template": "user_validation", "malicious": ["<!ENTITY", "SYSTEM"]},
            "dynamic_symptoms": [
                {"function": "check_xml", "equivalent": "preg_match", "category": "validation"}
            ]
        }"#;
        let w = Weapon::from_json(json).unwrap();
        assert_eq!(w.class(), VulnClass::Custom("XXE".into()));
        let mut catalog = Catalog::wape();
        let mut corrector = Corrector::new();
        w.link(&mut catalog, &mut corrector);
        // the new detector finds flows into the configured sink
        let program = wap_php::parse("<?php simplexml_load_string($_POST['xml']);").unwrap();
        let found = wap_taint::analyze_program(&catalog, &program);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].class, VulnClass::Custom("XXE".into()));
        // and its generated fix applies
        let fix = corrector.fix_for(&VulnClass::Custom("XXE".into()));
        assert_eq!(fix.name, "san_xxe");
    }

    #[test]
    fn weapon_sink_builder_forms() {
        let f = WeaponSink::function("f");
        assert!(!f.method);
        let m = WeaponSink::method("m", Some("obj"));
        assert!(m.method);
        assert_eq!(m.receiver.as_deref(), Some("obj"));
    }
}
