//! Command-line front end logic (argument parsing, directory walking,
//! report formatting) — kept in the library so it is testable; the `wap`
//! binary is a thin wrapper.

use crate::error::WapError;
use crate::pipeline::{AppReport, ToolConfig, WapTool};
use crate::weapon::Weapon;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use wap_catalog::VulnClass;
use wap_report::{render_stats, Format};

/// Re-exported renderers (kept under their historical `cli` paths; the
/// implementations live in `wap-report`, shared with `wap-serve`).
pub use wap_report::{render_json, render_ndjson, render_sarif, render_text};

/// When the CLI should exit non-zero — the contract CI consumers rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailOn {
    /// Always exit 0 (report only).
    None,
    /// Exit 1 when *any* candidate was found, even ones predicted to be
    /// false positives — the strictest gate.
    Fpp,
    /// Exit 1 only when real (non-predicted-FP) vulnerabilities remain.
    #[default]
    Vuln,
    /// Like `Vuln`, but error-severity lint findings also fail the run
    /// (only meaningful together with `--lint`; warnings and notes never
    /// change the exit code).
    Lint,
}

impl FailOn {
    /// Parses a `--fail-on` value.
    pub fn parse(s: &str) -> Option<FailOn> {
        match s.to_ascii_lowercase().as_str() {
            "none" => Some(FailOn::None),
            "fpp" => Some(FailOn::Fpp),
            "vuln" => Some(FailOn::Vuln),
            "lint" => Some(FailOn::Lint),
            _ => None,
        }
    }

    /// The exit code this policy assigns to a finished report.
    pub fn exit_code(&self, report: &AppReport) -> i32 {
        let fail = match self {
            FailOn::None => false,
            FailOn::Fpp => !report.findings.is_empty(),
            FailOn::Vuln => report.real_vulnerabilities().count() > 0,
            FailOn::Lint => {
                report.real_vulnerabilities().count() > 0 || report.lint_errors().count() > 0
            }
        };
        i32::from(fail)
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CliOptions {
    /// Paths (files or directories) to analyze.
    pub paths: Vec<PathBuf>,
    /// Class flags like `-sqli`, `-nosqli`, `-wpsqli`; empty = all classes.
    pub class_flags: Vec<String>,
    /// Run the original WAP v2.1 configuration.
    pub v21: bool,
    /// Apply fixes and write `<file>.fixed.php` next to each input.
    pub fix: bool,
    /// Print unified diffs of the fixes instead of writing files.
    pub diff: bool,
    /// Dynamically confirm each finding with an attack payload.
    pub confirm: bool,
    /// Emit machine-readable JSON instead of text (legacy shorthand for
    /// `--format json`; an explicit `--format` wins).
    pub json: bool,
    /// Output format (`--format text|json|ndjson|sarif`).
    pub format: Option<Format>,
    /// Exit-code policy (`--fail-on none|fpp|vuln|lint`, default `vuln`).
    pub fail_on: FailOn,
    /// Run the CFG lint pass (`--lint`, or the `wap lint` subcommand) and
    /// append its findings to the report.
    pub lint: bool,
    /// Installed rule packs to join into the lint pass (`--rules
    /// <pack>[@version]`, repeatable; implies `--lint`). Resolved
    /// against [`CliOptions::rules_dir`].
    pub rules: Vec<String>,
    /// Rule-pack store location (`--rules-dir`); `None` falls back to the
    /// `WAP_RULES_DIR` environment variable, then `.wap-rules/`.
    pub rules_dir: Option<PathBuf>,
    /// Refine symptom vectors with CFG guard analysis before prediction
    /// (`--guards`). Off by default so the headline reproduction stays
    /// bit-identical to the paper's plain symptom collector.
    pub guards: bool,
    /// Run the interprocedural value analysis (`--values`): resolve
    /// dynamic includes/calls into extra taint edges and refine symptom
    /// vectors with sink contexts. Off by default so the headline
    /// reproduction keeps the syntactic call graph bit-for-bit.
    pub values: bool,
    /// Extra weapon configuration files to load.
    pub weapon_files: Vec<PathBuf>,
    /// User sanitizers to register, as `name:CLASS1,CLASS2`.
    pub user_sanitizers: Vec<(String, Vec<String>)>,
    /// Worker threads for the analysis runtime (`--jobs`); `None` falls
    /// back to the `WAP_JOBS` environment variable, then to the number of
    /// available cores.
    pub jobs: Option<usize>,
    /// Root directory of the persistent incremental cache (`--cache-dir`,
    /// or `--cache` for the default location).
    pub cache_dir: Option<PathBuf>,
    /// Write an NDJSON span trace of the run to this file (`--trace`).
    /// Tracing is observation-only: findings and machine-format report
    /// bytes are identical with it on or off.
    pub trace: Option<PathBuf>,
    /// Append a phase/per-file timing section to text output (`--stats`).
    pub stats: bool,
    /// Show help.
    pub help: bool,
}

impl CliOptions {
    /// The output format after resolving the legacy `--json` shorthand:
    /// an explicit `--format` wins, then `--json`, then text.
    pub fn effective_format(&self) -> Format {
        self.format.unwrap_or(if self.json {
            Format::Json
        } else {
            Format::Text
        })
    }
}

/// Default cache location when `--cache` is given without a directory:
/// the `WAP_CACHE_DIR` environment variable, then `.wap-cache/`.
pub fn default_cache_dir() -> PathBuf {
    match std::env::var_os("WAP_CACHE_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(".wap-cache"),
    }
}

/// The help text.
pub const USAGE: &str = "\
wap — detect and correct vulnerabilities in PHP web applications

USAGE:
    wap [FLAGS] <PATH>...

FLAGS:
    -sqli -xss -rfi -lfi -dt -osci -scd -phpci     restrict to original classes
    -ldapi -xpathi -sf -cs                         restrict to new classes
    -nosqli -hei -wpsqli                           weapon classes
    --v21                 run the original WAP v2.1 configuration
    --fix                 write corrected sources to <file>.fixed.php
    --diff                print unified diffs of the fixes (no files written)
    --confirm             dynamically confirm findings with attack payloads
    --json                machine-readable output (same as --format json)
    --format <FMT>        output format: text | json | ndjson | sarif
    --fail-on <WHEN>      exit 1 on: vuln (default) | fpp (any finding) |
                          lint (vulns or error-severity lint findings) | none
    --lint                run the CFG lint pass (unguarded sinks, unreachable
                          code, assignment-in-condition, weapon rules); the
                          `wap lint <PATH>` subcommand is shorthand for it
    --rules <PACK>        join an installed rule pack (name[@version]) into the
                          lint pass; repeatable, implies --lint. Manage packs
                          with the `wap rules` subcommand
    --rules-dir <DIR>     rule-pack store (default: WAP_RULES_DIR, then .wap-rules/)
    --guards              refine symptom vectors with CFG dominator guard
                          analysis before false-positive prediction
    --values              interprocedural constant/string value analysis:
                          resolve dynamic includes and calls into extra taint
                          edges, refine predictions with sink value contexts
    --weapon <file.json>  link an additional weapon configuration
    --sanitizer name:CLASS[,CLASS]   register a user sanitization function
    --jobs <N>            worker threads (default: WAP_JOBS env, then all cores)
    --cache               enable the incremental cache at WAP_CACHE_DIR or .wap-cache/
    --cache-dir <DIR>     enable the incremental cache at DIR
    --trace <FILE>        write an NDJSON span trace of the run to FILE
    --stats               append phase totals and slowest files to text output
    --help                show this message

Findings are identical for every --jobs value; only wall-clock time changes.
With --cache, warm runs re-analyze only changed files — findings stay
bit-identical to a cold run.

EXIT CODES:
    0  clean under the --fail-on policy     2  usage error
    1  findings per --fail-on               3+ I/O or config error
";

/// Parses command-line arguments (no external crates; the tool only needs
/// flags and paths).
///
/// # Errors
///
/// Returns [`WapError::Usage`] for unknown flags or malformed values.
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<CliOptions, WapError> {
    let mut opts = CliOptions::default();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--help" | "-h" => opts.help = true,
            "--v21" => opts.v21 = true,
            "--fix" => opts.fix = true,
            "--diff" => opts.diff = true,
            "--confirm" => opts.confirm = true,
            "--json" => opts.json = true,
            "--format" => {
                let v = it
                    .next()
                    .ok_or("--format needs one of text|json|ndjson|sarif")?;
                opts.format = Some(
                    Format::parse(&v)
                        .ok_or_else(|| format!("unknown format {v} (text|json|ndjson|sarif)"))?,
                );
            }
            "--fail-on" => {
                let v = it.next().ok_or("--fail-on needs one of none|fpp|vuln|lint")?;
                opts.fail_on = FailOn::parse(&v)
                    .ok_or_else(|| format!("unknown --fail-on policy {v} (none|fpp|vuln|lint)"))?;
            }
            "--lint" => opts.lint = true,
            "--rules" => {
                let v = it.next().ok_or("--rules needs a pack name[@version]")?;
                opts.rules.push(v);
                opts.lint = true;
            }
            "--rules-dir" => {
                let d = it.next().ok_or("--rules-dir needs a directory")?;
                opts.rules_dir = Some(PathBuf::from(d));
            }
            "--guards" => opts.guards = true,
            "--values" => opts.values = true,
            "--weapon" => {
                let f = it.next().ok_or("--weapon needs a file path")?;
                opts.weapon_files.push(PathBuf::from(f));
            }
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a thread count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs needs a number, got {v}"))?;
                if n == 0 {
                    return Err(WapError::usage("--jobs must be at least 1"));
                }
                opts.jobs = Some(n);
            }
            "--cache" => {
                if opts.cache_dir.is_none() {
                    opts.cache_dir = Some(default_cache_dir());
                }
            }
            "--cache-dir" => {
                let d = it.next().ok_or("--cache-dir needs a directory")?;
                opts.cache_dir = Some(PathBuf::from(d));
            }
            "--trace" => {
                let f = it.next().ok_or("--trace needs a file path")?;
                opts.trace = Some(PathBuf::from(f));
            }
            "--stats" => opts.stats = true,
            "--sanitizer" => {
                let v = it.next().ok_or("--sanitizer needs name:CLASSES")?;
                let (name, classes) = v
                    .split_once(':')
                    .ok_or("--sanitizer format is name:CLASS[,CLASS]")?;
                if name.is_empty() {
                    return Err(WapError::usage("--sanitizer name is empty"));
                }
                opts.user_sanitizers.push((
                    name.to_string(),
                    classes.split(',').map(str::to_string).collect(),
                ));
            }
            flag if flag.starts_with("--") => {
                return Err(WapError::usage(format!("unknown flag {flag}")));
            }
            flag if flag.starts_with('-') && flag.len() > 1 => {
                opts.class_flags.push(flag.to_string());
            }
            path => opts.paths.push(PathBuf::from(path)),
        }
    }
    if !opts.help && opts.paths.is_empty() {
        return Err(WapError::usage("no input paths given (try --help)"));
    }
    Ok(opts)
}

/// Recursively collects `.php` files under the given paths, sorted.
///
/// # Errors
///
/// Returns [`WapError::Io`] (with the offending path) on traversal
/// failures.
pub fn collect_php_files(paths: &[PathBuf]) -> Result<Vec<PathBuf>, WapError> {
    let mut out = Vec::new();
    for p in paths {
        collect_into(p, &mut out)?;
    }
    out.sort();
    out.dedup();
    Ok(out)
}

fn collect_into(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), WapError> {
    if !path.exists() {
        return Err(WapError::usage(format!("no such path: {}", path.display())));
    }
    if path.is_dir() {
        for entry in std::fs::read_dir(path).map_err(|e| WapError::io(path, e))? {
            let entry = entry.map_err(|e| WapError::io(path, e))?;
            collect_into(&entry.path(), out)?;
        }
    } else if path.extension().map(|e| e == "php").unwrap_or(false) {
        out.push(path.to_path_buf());
    }
    Ok(())
}

/// Builds the tool from options (loading weapons, registering sanitizers,
/// filtering classes).
///
/// # Errors
///
/// Returns [`WapError::Io`] for unreadable weapon files and
/// [`WapError::Config`] for ones that fail to validate.
pub fn build_tool(opts: &CliOptions) -> Result<WapTool, WapError> {
    let mut config = if opts.v21 {
        ToolConfig::wap_v21()
    } else {
        ToolConfig::wape_full()
    };
    config.jobs = opts.jobs.or_else(wap_runtime::jobs_from_env);
    config.cache_dir = opts.cache_dir.clone();
    config.trace = opts.trace.is_some() || opts.stats;
    config.guard_attributes = opts.guards;
    config.values = opts.values;
    if !opts.rules.is_empty() {
        let store = wap_rules::Store::new(
            opts.rules_dir
                .clone()
                .unwrap_or_else(wap_rules::default_rules_dir),
        );
        for reference in &opts.rules {
            config
                .rule_packs
                .push(store.resolve(reference).map_err(|e| WapError::Config {
                    what: format!("--rules {reference}"),
                    detail: e,
                })?);
        }
    }
    let mut tool = WapTool::new(config);
    // link in sorted-name order so the catalog (and its fingerprint) does
    // not depend on the order weapon files were listed or discovered
    let mut weapons = Vec::with_capacity(opts.weapon_files.len());
    for wf in &opts.weapon_files {
        let json = std::fs::read_to_string(wf).map_err(|e| WapError::io(wf, e))?;
        weapons.push(Weapon::from_json(&json).map_err(|e| WapError::Config {
            what: wf.display().to_string(),
            detail: e.to_string(),
        })?);
    }
    weapons.sort_by(|a, b| a.name().cmp(b.name()));
    for w in weapons {
        tool.add_weapon(w);
    }
    for (name, classes) in &opts.user_sanitizers {
        let resolved: Vec<VulnClass> = classes
            .iter()
            .map(|c| wap_catalog::WeaponConfig::resolve_class(c))
            .collect();
        tool.catalog_mut().add_user_sanitizer(name, &resolved);
    }
    if !opts.class_flags.is_empty() {
        let keep: Vec<VulnClass> = tool
            .catalog()
            .classes()
            .filter(|c| opts.class_flags.contains(&c.flag()))
            .cloned()
            .collect();
        tool.catalog_mut().retain_classes(&keep);
    }
    Ok(tool)
}

/// Runs the tool over the given options; returns `(exit code, output)`.
/// Exit code 0 = clean, 1 = findings per the `--fail-on` policy; error
/// exit codes come from [`WapError::exit_code`].
///
/// # Errors
///
/// Returns I/O and weapon-loading errors as [`WapError`].
pub fn run(opts: &CliOptions) -> Result<(i32, String), WapError> {
    if opts.help {
        return Ok((0, USAGE.to_string()));
    }
    let files = collect_php_files(&opts.paths)?;
    if files.is_empty() {
        return Ok((0, "no .php files found\n".to_string()));
    }
    let mut sources = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f).map_err(|e| WapError::io(f, e))?;
        sources.push((f.display().to_string(), src));
    }
    let tool = build_tool(opts)?;
    let mut report = tool.analyze_sources(&sources);
    if opts.lint {
        tool.apply_lint(&mut report, &sources);
    }

    let classes: Vec<VulnClass> = tool.catalog().classes().cloned().collect();
    let mut output = opts.effective_format().render(&report, &classes);
    if opts.stats && opts.effective_format() == Format::Text {
        output.push_str(&render_stats(&report, 10));
    }

    if opts.confirm {
        let programs: Vec<(String, wap_php::Program)> = sources
            .iter()
            .filter_map(|(n, s)| crate::pipeline_parse(s).ok().map(|p| (n.clone(), p)))
            .collect();
        let _ = writeln!(output, "\n== dynamic confirmation ==");
        for f in &report.findings {
            let Some(file) = f.candidate.file.as_deref() else {
                continue;
            };
            let Some((_, program)) = programs.iter().find(|(n, _)| n == file) else {
                continue;
            };
            let conf = wap_interp::confirm(tool.catalog(), &[program], &f.candidate);
            let _ = writeln!(
                output,
                "{}:{} {} — {} ({})",
                file,
                f.candidate.line,
                f.candidate.class,
                if conf.exploitable {
                    "CONFIRMED EXPLOITABLE"
                } else {
                    "not exploitable"
                },
                conf.detail
            );
        }
    }

    if opts.fix || opts.diff {
        for (name, src) in &sources {
            let result = tool.fix_file(name, src, &report);
            if result.applied.is_empty() {
                continue;
            }
            if opts.diff {
                let _ = writeln!(
                    output,
                    "--- {name}
+++ {name} (fixed)"
                );
                output.push_str(&wap_fixer::unified_diff(src, &result.fixed_source, 2));
            }
            if opts.fix {
                let out_path = format!("{name}.fixed.php");
                std::fs::write(&out_path, &result.fixed_source)
                    .map_err(|e| WapError::io(&out_path, e))?;
                let _ = writeln!(output, "wrote {out_path} ({} fixes)", result.applied.len());
            }
        }
    }

    // written last so spans from the fix phase are part of the trace
    if let Some(path) = &opts.trace {
        std::fs::write(path, tool.obs().render_ndjson()).map_err(|e| WapError::io(path, e))?;
    }

    Ok((opts.fail_on.exit_code(&report), output))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_basic_args() {
        let o = parse_args(args(&["-sqli", "-nosqli", "--fix", "app/"])).unwrap();
        assert_eq!(o.class_flags, vec!["-sqli", "-nosqli"]);
        assert!(o.fix);
        assert_eq!(o.paths, vec![PathBuf::from("app/")]);
    }

    #[test]
    fn parse_rejects_unknown_long_flag() {
        assert!(parse_args(args(&["--frobnicate", "x"])).is_err());
    }

    #[test]
    fn parse_requires_paths() {
        assert!(parse_args(args(&["-sqli"])).is_err());
        assert!(parse_args(args(&["--help"])).unwrap().help);
    }

    #[test]
    fn parse_jobs_flag() {
        let o = parse_args(args(&["--jobs", "4", "f.php"])).unwrap();
        assert_eq!(o.jobs, Some(4));
        let o = parse_args(args(&["-j", "2", "f.php"])).unwrap();
        assert_eq!(o.jobs, Some(2));
        assert!(parse_args(args(&["--jobs", "0", "f.php"])).is_err());
        assert!(parse_args(args(&["--jobs", "many", "f.php"])).is_err());
        assert!(parse_args(args(&["--jobs"])).is_err());
    }

    #[test]
    fn jobs_flag_reaches_tool_config() {
        let opts = CliOptions {
            paths: vec![PathBuf::from(".")],
            jobs: Some(3),
            ..Default::default()
        };
        let tool = build_tool(&opts).unwrap();
        assert_eq!(tool.config().jobs, Some(3));
        assert_eq!(tool.runtime().jobs(), 3);
    }

    #[test]
    fn summary_line_reports_parse_errors() {
        let dir = std::env::temp_dir().join(format!("wap-cli-perr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ok.php"), "<?php echo 'fine';\n").unwrap();
        std::fs::write(dir.join("broken.php"), "<?php $x = ;\n").unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            ..Default::default()
        };
        let (_, output) = run(&opts).unwrap();
        assert!(output.contains("1 parse errors"), "{output}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_sanitizer_spec() {
        let o = parse_args(args(&["--sanitizer", "escape:SQLI,XSS", "f.php"])).unwrap();
        assert_eq!(
            o.user_sanitizers,
            vec![(
                "escape".to_string(),
                vec!["SQLI".to_string(), "XSS".to_string()]
            )]
        );
        assert!(parse_args(args(&["--sanitizer", "noclasses", "f.php"])).is_err());
    }

    #[test]
    fn class_flag_filter_restricts_tool() {
        let opts = CliOptions {
            paths: vec![PathBuf::from(".")],
            class_flags: vec!["-sqli".to_string()],
            ..Default::default()
        };
        let tool = build_tool(&opts).unwrap();
        let report = tool.analyze_sources(&[(
            "t.php".to_string(),
            "<?php echo $_GET['a']; mysql_query('Q' . $_GET['b']);".to_string(),
        )]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].candidate.class, VulnClass::Sqli);
    }

    #[test]
    fn run_on_temp_dir_end_to_end() {
        let dir = std::env::temp_dir().join(format!("wap-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("inc")).unwrap();
        std::fs::write(
            dir.join("index.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("inc/safe.php"),
            "<?php echo htmlentities($_GET['m']);\n",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "not php").unwrap();

        let opts = CliOptions {
            paths: vec![dir.clone()],
            fix: true,
            ..Default::default()
        };
        let (code, output) = run(&opts).unwrap();
        assert_eq!(code, 1, "vulnerabilities found");
        assert!(output.contains("SQLI"), "{output}");
        assert!(output.contains("1 real vulnerabilities"));
        let fixed = std::fs::read_to_string(dir.join("index.php").with_extension("php.fixed.php"))
            .or_else(|_| {
                std::fs::read_to_string(format!("{}.fixed.php", dir.join("index.php").display()))
            })
            .expect("fixed file written");
        assert!(fixed.contains("mysql_real_escape_string("));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_json_output() {
        let dir = std::env::temp_dir().join(format!("wap-cli-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.php"), "<?php echo $_GET['v'];\n").unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            json: true,
            ..Default::default()
        };
        let (code, output) = run(&opts).unwrap();
        assert_eq!(code, 1);
        let v: serde_json::Value = serde_json::from_str(&output).expect("valid json");
        assert_eq!(v["real_vulnerabilities"], 1);
        assert_eq!(v["findings"][0]["class"], "XSS");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_clean_dir_exits_zero() {
        let dir = std::env::temp_dir().join(format!("wap-cli-clean-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ok.php"), "<?php echo 'hello';\n").unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            ..Default::default()
        };
        let (code, _) = run(&opts).unwrap();
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_mentions_the_paper_flags() {
        for flag in [
            "-nosqli",
            "-hei",
            "-wpsqli",
            "--v21",
            "--fix",
            "--cache",
            "--format",
            "--fail-on",
            "--trace",
            "--stats",
            "--lint",
            "--rules",
            "--rules-dir",
            "--guards",
            "--values",
        ] {
            assert!(USAGE.contains(flag), "usage missing {flag}");
        }
        assert!(USAGE.contains("EXIT CODES"), "usage missing exit-code table");
    }

    #[test]
    fn parse_format_flag() {
        let o = parse_args(args(&["--format", "sarif", "f.php"])).unwrap();
        assert_eq!(o.format, Some(Format::Sarif));
        assert_eq!(o.effective_format(), Format::Sarif);
        assert!(parse_args(args(&["--format", "xml", "f.php"])).is_err());
        assert!(parse_args(args(&["--format"])).is_err());
        // legacy --json still works, explicit --format wins over it
        let o = parse_args(args(&["--json", "f.php"])).unwrap();
        assert_eq!(o.effective_format(), Format::Json);
        let o = parse_args(args(&["--json", "--format", "text", "f.php"])).unwrap();
        assert_eq!(o.effective_format(), Format::Text);
        assert_eq!(
            parse_args(args(&["f.php"])).unwrap().effective_format(),
            Format::Text
        );
    }

    #[test]
    fn parse_fail_on_flag() {
        assert_eq!(
            parse_args(args(&["f.php"])).unwrap().fail_on,
            FailOn::Vuln,
            "vuln is the default policy"
        );
        let o = parse_args(args(&["--fail-on", "none", "f.php"])).unwrap();
        assert_eq!(o.fail_on, FailOn::None);
        let o = parse_args(args(&["--fail-on", "FPP", "f.php"])).unwrap();
        assert_eq!(o.fail_on, FailOn::Fpp);
        assert!(parse_args(args(&["--fail-on", "always", "f.php"])).is_err());
        assert!(parse_args(args(&["--fail-on"])).is_err());
    }

    #[test]
    fn parse_lint_and_guards_flags() {
        let o = parse_args(args(&["--lint", "f.php"])).unwrap();
        assert!(o.lint);
        assert!(!o.guards);
        let o = parse_args(args(&["--guards", "f.php"])).unwrap();
        assert!(o.guards);
        assert!(!o.lint);
        let o = parse_args(args(&["f.php"])).unwrap();
        assert!(!o.lint && !o.guards);
        assert_eq!(
            parse_args(args(&["--fail-on", "lint", "f.php"]))
                .unwrap()
                .fail_on,
            FailOn::Lint
        );
    }

    #[test]
    fn parse_rules_flags() {
        let o = parse_args(args(&["--rules", "wordpress", "f.php"])).unwrap();
        assert_eq!(o.rules, vec!["wordpress".to_string()]);
        assert!(o.lint, "--rules implies --lint");
        let o = parse_args(args(&[
            "--rules",
            "a@1.0",
            "--rules",
            "b",
            "--rules-dir",
            "/tmp/rp",
            "f.php",
        ]))
        .unwrap();
        assert_eq!(o.rules, vec!["a@1.0".to_string(), "b".to_string()]);
        assert_eq!(o.rules_dir, Some(PathBuf::from("/tmp/rp")));
        assert!(parse_args(args(&["--rules"])).is_err());
        assert!(parse_args(args(&["--rules-dir"])).is_err());
        let o = parse_args(args(&["f.php"])).unwrap();
        assert!(o.rules.is_empty() && o.rules_dir.is_none() && !o.lint);
    }

    #[test]
    fn rules_flag_resolves_installed_packs_into_tool_config() {
        let dir = std::env::temp_dir().join(format!("wap-cli-rules-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let store = wap_rules::Store::new(&dir);
        store.install_pack(&wap_rules::RulePack::wordpress()).unwrap();
        let opts = CliOptions {
            paths: vec![PathBuf::from(".")],
            rules: vec!["wordpress".to_string()],
            rules_dir: Some(dir.clone()),
            ..Default::default()
        };
        let tool = build_tool(&opts).unwrap();
        assert_eq!(tool.config().rule_packs.len(), 1);
        assert_eq!(tool.config().rule_packs[0].name, "wordpress");
        // unknown packs are a config error, not a silent no-op
        let bad = CliOptions {
            rules: vec!["no-such-pack".to_string()],
            ..opts.clone()
        };
        let err = build_tool(&bad).unwrap_err();
        assert!(matches!(err, WapError::Config { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn values_flag_parses_and_reaches_tool_config() {
        let o = parse_args(args(&["--values", "f.php"])).unwrap();
        assert!(o.values);
        assert!(!parse_args(args(&["f.php"])).unwrap().values);
        let opts = CliOptions {
            paths: vec![PathBuf::from(".")],
            values: true,
            ..Default::default()
        };
        assert!(build_tool(&opts).unwrap().config().values);
        let plain = CliOptions {
            paths: vec![PathBuf::from(".")],
            ..Default::default()
        };
        assert!(!build_tool(&plain).unwrap().config().values);
    }

    #[test]
    fn guards_flag_reaches_tool_config() {
        let opts = CliOptions {
            paths: vec![PathBuf::from(".")],
            guards: true,
            ..Default::default()
        };
        assert!(build_tool(&opts).unwrap().config().guard_attributes);
        let plain = CliOptions {
            paths: vec![PathBuf::from(".")],
            ..Default::default()
        };
        assert!(!build_tool(&plain).unwrap().config().guard_attributes);
    }

    #[test]
    fn lint_flags_unguarded_sink_and_suppresses_guarded() {
        let dir = std::env::temp_dir().join(format!("wap-cli-lint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // unguarded: tainted $id flows straight into the sink
        std::fs::write(
            dir.join("unguarded.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        // guarded: a dominating is_numeric check rejects non-numeric input
        std::fs::write(
            dir.join("guarded.php"),
            "<?php\n$id = $_GET['id'];\nif (!is_numeric($id)) { exit; }\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            lint: true,
            ..Default::default()
        };
        let (_, output) = run(&opts).unwrap();
        let tainted: Vec<&str> = output
            .lines()
            .filter(|l| l.contains(wap_cfg::RULE_TAINTED_SINK))
            .collect();
        assert!(
            tainted.iter().any(|l| l.contains("/unguarded.php")),
            "unguarded sink must be flagged: {output}"
        );
        assert!(
            !tainted.iter().any(|l| l.contains("/guarded.php")),
            "dominating guard must suppress the tainted-sink finding: {output}"
        );
        assert!(output.contains("lint findings"), "{output}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_on_lint_gates_on_error_severity_findings() {
        let dir = std::env::temp_dir().join(format!("wap-cli-folint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("v.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            lint: true,
            fail_on: FailOn::Lint,
            ..Default::default()
        };
        let (code, _) = run(&opts).unwrap();
        assert_eq!(code, 1, "error-severity lint finding fails the run");
        // a clean file under the same policy exits 0
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ok.php"), "<?php echo 'hello';\n").unwrap();
        let (code, _) = run(&CliOptions {
            paths: vec![dir.clone()],
            lint: true,
            fail_on: FailOn::Lint,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(code, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn default_output_has_no_lint_section_without_the_flag() {
        let dir = std::env::temp_dir().join(format!("wap-cli-nolint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("v.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            ..Default::default()
        };
        let (_, output) = run(&opts).unwrap();
        assert!(!output.contains("WAP-LINT-"), "{output}");
        assert!(!output.contains("lint findings"), "{output}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_on_policies_drive_exit_codes() {
        let dir = std::env::temp_dir().join(format!("wap-cli-failon-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("v.php"), "<?php echo $_GET['v'];\n").unwrap();
        let base = CliOptions {
            paths: vec![dir.clone()],
            ..Default::default()
        };
        let (code, _) = run(&base).unwrap();
        assert_eq!(code, 1, "default vuln policy fails on a real finding");
        let (code, _) = run(&CliOptions {
            fail_on: FailOn::None,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(code, 0, "--fail-on none always exits 0");
        let (code, _) = run(&CliOptions {
            fail_on: FailOn::Fpp,
            ..base.clone()
        })
        .unwrap();
        assert_eq!(code, 1, "--fail-on fpp fails on any finding");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sarif_format_runs_end_to_end() {
        let dir = std::env::temp_dir().join(format!("wap-cli-sarif-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("x.php"), "<?php echo $_GET['v'];\n").unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            format: Some(Format::Sarif),
            ..Default::default()
        };
        let (code, output) = run(&opts).unwrap();
        assert_eq!(code, 1);
        // the renderer serializes through serde_json; under the offline
        // shim it yields an empty string, so only check content when the
        // real serializer produced some
        if !output.is_empty() {
            assert!(output.contains("\"2.1.0\""), "{output}");
            assert!(output.contains("WAP-XSS"), "{output}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_cache_flags() {
        let o = parse_args(args(&["--cache-dir", "/tmp/wc", "f.php"])).unwrap();
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/wc")));
        assert!(parse_args(args(&["--cache-dir"])).is_err());
        // --cache picks the default location but never overrides an
        // explicit --cache-dir
        let o = parse_args(args(&["--cache", "f.php"])).unwrap();
        assert!(o.cache_dir.is_some());
        let o = parse_args(args(&["--cache-dir", "/tmp/wc", "--cache", "f.php"])).unwrap();
        assert_eq!(o.cache_dir, Some(PathBuf::from("/tmp/wc")));
        // no cache flag: disabled
        let o = parse_args(args(&["f.php"])).unwrap();
        assert_eq!(o.cache_dir, None);
    }

    #[test]
    fn parse_trace_and_stats_flags() {
        let o = parse_args(args(&["--trace", "/tmp/t.ndjson", "f.php"])).unwrap();
        assert_eq!(o.trace, Some(PathBuf::from("/tmp/t.ndjson")));
        assert!(parse_args(args(&["--trace"])).is_err());
        let o = parse_args(args(&["--stats", "f.php"])).unwrap();
        assert!(o.stats);
        // neither flag: tracing stays off
        let o = parse_args(args(&["f.php"])).unwrap();
        assert_eq!(o.trace, None);
        assert!(!o.stats);
    }

    #[test]
    fn trace_and_stats_enable_collector() {
        for opts in [
            CliOptions {
                paths: vec![PathBuf::from(".")],
                trace: Some(PathBuf::from("/tmp/t.ndjson")),
                ..Default::default()
            },
            CliOptions {
                paths: vec![PathBuf::from(".")],
                stats: true,
                ..Default::default()
            },
        ] {
            let tool = build_tool(&opts).unwrap();
            assert!(tool.config().trace);
            assert!(tool.obs().enabled());
        }
        let plain = build_tool(&CliOptions {
            paths: vec![PathBuf::from(".")],
            ..Default::default()
        })
        .unwrap();
        assert!(!plain.obs().enabled());
    }

    #[test]
    fn trace_writes_ndjson_and_stats_section_renders() {
        let dir = std::env::temp_dir().join(format!("wap-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("v.php"), "<?php echo $_GET['v'];\n").unwrap();
        let trace_path = dir.join("run.trace.ndjson");
        let opts = CliOptions {
            paths: vec![dir.clone()],
            trace: Some(trace_path.clone()),
            stats: true,
            ..Default::default()
        };
        let (code, output) = run(&opts).unwrap();
        assert_eq!(code, 1);
        assert!(output.contains("phase totals:"), "{output}");
        assert!(output.contains("slowest files"), "{output}");
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let first = trace.lines().next().unwrap();
        assert!(
            first.contains(wap_obs::TRACE_SCHEMA),
            "meta line first: {first}"
        );
        assert!(trace.lines().any(|l| l.contains("\"kind\":\"span\"")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_errors_exit_with_code_two() {
        let err = parse_args(args(&["--frobnicate", "x"])).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(matches!(err, WapError::Usage(_)));
    }

    #[test]
    fn nonexistent_scan_path_is_a_usage_error() {
        let err = collect_php_files(&[PathBuf::from("/no/such/wap/dir")]).unwrap_err();
        assert!(matches!(err, WapError::Usage(_)), "{err}");
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn cache_dir_reaches_tool_and_warm_run_matches() {
        let dir = std::env::temp_dir().join(format!("wap-cli-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("v.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
        )
        .unwrap();
        let cache_dir = dir.join("cache");
        let opts = CliOptions {
            paths: vec![dir.clone()],
            cache_dir: Some(cache_dir.clone()),
            ..Default::default()
        };
        let tool = build_tool(&opts).unwrap();
        assert_eq!(tool.config().cache_dir, Some(cache_dir.clone()));
        let (code_cold, out_cold) = run(&opts).unwrap();
        assert!(cache_dir.exists(), "cache directory created on first run");
        let (code_warm, out_warm) = run(&opts).unwrap();
        assert_eq!(code_cold, code_warm);
        // text output (modulo the timing line) must match exactly
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains(" ms)"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&out_cold), strip(&out_warm));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod diff_cli_tests {
    use super::*;

    #[test]
    fn diff_flag_prints_hunks() {
        let dir = std::env::temp_dir().join(format!("wap-cli-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("v.php"),
            "<?php\nmysql_query(\"Q\" . $_GET['a']);\n",
        )
        .unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            diff: true,
            ..Default::default()
        };
        let (code, output) = run(&opts).unwrap();
        assert_eq!(code, 1);
        assert!(output.contains("@@"), "{output}");
        assert!(
            output.contains("+mysql_query(\"Q\" . mysql_real_escape_string($_GET['a']));"),
            "{output}"
        );
        // --diff alone writes no files
        assert!(!dir.join("v.php.fixed.php").exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod confirm_cli_tests {
    use super::*;

    #[test]
    fn confirm_flag_labels_findings() {
        let dir = std::env::temp_dir().join(format!("wap-cli-confirm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("v.php"),
            "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE c = '$id'\");\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("g.php"),
            "<?php\n$n = $_GET['n'];\nif (!preg_match('/^[0-9]+$/', $n)) { exit; }\nif (isset($_GET['n'])) { mysql_query(\"SELECT 1 WHERE x = '$n'\"); }\n",
        )
        .unwrap();
        let opts = CliOptions {
            paths: vec![dir.clone()],
            confirm: true,
            ..Default::default()
        };
        let (_, output) = run(&opts).unwrap();
        assert!(output.contains("CONFIRMED EXPLOITABLE"), "{output}");
        assert!(output.contains("not exploitable"), "{output}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
