//! The `wap` command-line tool: analyze PHP applications for 15 classes of
//! input-validation vulnerabilities, predict false positives, and
//! optionally correct the source.

fn main() {
    let opts = match wap_core::cli::parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{}", wap_core::cli::USAGE);
            std::process::exit(2);
        }
    };
    match wap_core::cli::run(&opts) {
        Ok((code, output)) => {
            print!("{output}");
            std::process::exit(code);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
