//! PHP snippet generators: the building blocks of the synthetic corpus.
//!
//! Each generator emits a self-contained PHP fragment seeding exactly one
//! data flow of a known kind: a real vulnerability of a given class, a
//! false positive of one of three flavours (guarded by original symptoms,
//! guarded by WAPe-only symptoms, guarded by non-symptom functions), or a
//! properly sanitized (safe) flow. Shapes vary (direct interpolation,
//! concatenation chains, flows through helper functions, loops) so the
//! corpus exercises the same analyzer paths real applications do.

use rand::rngs::StdRng;
use rand::Rng;
use wap_catalog::VulnClass;

/// The flavour of false positive a snippet seeds (matching the FPP/FP
/// accounting of Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpKind {
    /// Guarded by symptoms the ORIGINAL WAP already knew (Table I left
    /// columns) — both tools predict it correctly (`FPP` in both).
    OriginalSymptoms,
    /// Guarded only by symptoms NEW in WAPe — WAPe predicts it, WAP v2.1
    /// reports it as a vulnerability (the +42 of §V-A).
    NewSymptomsOnly,
    /// Guarded by functions that are not symptoms at all (`sizeof`, `md5`,
    /// the vfront `escape` function) — neither tool predicts it (the 18
    /// residual FPs of §V-A).
    NonSymptoms,
}

/// Emits one *real vulnerability* flow of `class`. `ident` makes variable
/// and key names unique within a file; `variant` (from the RNG) picks the
/// code shape.
pub fn real_vuln(class: &VulnClass, ident: usize, rng: &mut StdRng) -> String {
    let k = format!("p{ident}");
    let v = format!("v{ident}");
    match class {
        VulnClass::Sqli => match rng.gen_range(0..4) {
            0 => format!(
                "${v} = $_GET['{k}'];\nmysql_query(\"SELECT * FROM users WHERE id = ${v}\");\n"
            ),
            1 => format!(
                "${v} = $_POST['{k}'];\n$q{ident} = \"SELECT name, email FROM members WHERE login = '\" . ${v} . \"'\";\nmysql_query($q{ident});\n"
            ),
            2 => format!(
                "$q{ident} = \"SELECT COUNT(*) FROM logs \";\n$q{ident} .= \"WHERE ip = '$_SERVER[REMOTE_ADDR]' AND tag = '$_GET[{k}]'\";\nmysqli_query($conn, $q{ident});\n"
            ),
            _ => format!(
                "function find_{v}($db, $x) {{\n    return mysql_query(\"SELECT * FROM items WHERE ref = '$x'\", $db);\n}}\nfind_{v}($conn, $_REQUEST['{k}']);\n"
            ),
        },
        VulnClass::XssReflected => match rng.gen_range(0..4) {
            0 => format!("echo \"<p>Hello \" . $_GET['{k}'] . \"</p>\";\n"),
            1 => format!("${v} = $_POST['{k}'];\nprint \"<div>${v}</div>\";\n"),
            2 => format!("${v} = $_COOKIE['{k}'];\necho \"<span class='u'>${v}</span>\";\n"),
            _ => format!("printf(\"<td>%s</td>\", $_GET['{k}']);\n"),
        },
        VulnClass::XssStored => format!(
            "$fh{ident} = fopen('comments.dat', 'a');\nfwrite($fh{ident}, $_POST['{k}']);\n"
        ),
        VulnClass::Rfi => format!("include $_GET['{k}'];\n"),
        VulnClass::Lfi => format!("include 'modules/' . $_GET['{k}'] . '.php';\n"),
        VulnClass::DirTraversal => match rng.gen_range(0..2) {
            0 => format!("${v} = fopen($_GET['{k}'], 'r');\n"),
            _ => format!("unlink('uploads/' . $_POST['{k}']);\n"),
        },
        VulnClass::Scd => format!("readfile($_GET['{k}']);\n"),
        VulnClass::Osci => match rng.gen_range(0..2) {
            0 => format!("system(\"convert \" . $_GET['{k}'] . \" out.png\");\n"),
            _ => format!("${v} = shell_exec(\"ping -c 1 \" . $_POST['{k}']);\n"),
        },
        VulnClass::Phpci => format!("eval('$r{ident} = ' . $_GET['{k}'] . ';');\n"),
        VulnClass::LdapI => format!(
            "${v} = $_GET['{k}'];\nldap_search($ldap, $base_dn, \"(uid=${v})\");\n"
        ),
        VulnClass::XpathI => format!(
            "xpath_eval($xctx, \"//user[name='\" . $_POST['{k}'] . \"']\");\n"
        ),
        VulnClass::NoSqlI => format!(
            "${v} = $_GET['{k}'];\n$collection->find(array('name' => ${v}));\n"
        ),
        VulnClass::CommentSpam => format!(
            "file_put_contents('comments.html', $_POST['{k}'], FILE_APPEND);\n"
        ),
        VulnClass::HeaderI => format!("header(\"Location: \" . $_GET['{k}']);\n"),
        VulnClass::EmailI => format!(
            "mail($_POST['{k}'], 'Welcome', 'Thanks for registering');\n"
        ),
        VulnClass::SessionFixation => match rng.gen_range(0..2) {
            0 => format!("session_id($_GET['{k}']);\nsession_start();\n"),
            _ => format!("setcookie('PHPSESSID', $_REQUEST['{k}']);\n"),
        },
        VulnClass::Custom(name) if name == "WPSQLI" => match rng.gen_range(0..3) {
            0 => format!(
                "${v} = $_POST['{k}'];\n$wpdb->query(\"UPDATE {{$wpdb->prefix}}opts SET v = '${v}' WHERE k = 'x'\");\n"
            ),
            1 => format!(
                "${v} = $_GET['{k}'];\n$rows{ident} = $wpdb->get_results(\"SELECT * FROM {{$wpdb->prefix}}posts WHERE title = '${v}'\");\n"
            ),
            _ => format!(
                "${v} = get_query_var('{k}');\n$wpdb->get_var(\"SELECT COUNT(*) FROM {{$wpdb->prefix}}meta WHERE mk = '${v}'\");\n"
            ),
        },
        VulnClass::Custom(_) => format!("custom_sink($_GET['{k}']);\n"),
    }
}

/// Emits one *false positive* flow: a candidate the taint analyzer flags
/// but which is in fact guarded. `class` decides the sink (must be a class
/// both guard styles can reach; SQLI and XSS are the realistic ones).
pub fn false_positive(class: &VulnClass, kind: FpKind, ident: usize, rng: &mut StdRng) -> String {
    let k = format!("f{ident}");
    let v = format!("g{ident}");
    let sink = sink_line(class, &v, ident);
    match kind {
        FpKind::OriginalSymptoms => match rng.gen_range(0..3) {
            0 => format!(
                "${v} = $_GET['{k}'];\nif (!is_numeric(${v})) {{ exit('bad input'); }}\nif (isset($_GET['{k}'])) {{\n    {sink}}}\n"
            ),
            1 => format!(
                "${v} = trim($_POST['{k}']);\nif (!preg_match('/^[a-z0-9_]+$/', ${v})) {{ exit; }}\n{sink}"
            ),
            2 => format!(
                "${v} = $_GET['{k}'];\nif (!ctype_digit(${v}) || !isset($_GET['{k}'])) {{ exit; }}\n${v} = substr(${v}, 0, 8);\n{sink}"
            ),
            _ => unreachable!(),
        },
        FpKind::NewSymptomsOnly => match rng.gen_range(0..3) {
            0 => format!(
                "${v} = $_GET['{k}'];\nif (empty(${v}) || is_null(${v})) {{ exit; }}\nif (!is_scalar(${v})) {{ exit; }}\n{sink}"
            ),
            1 => format!(
                "${v} = rtrim($_POST['{k}']);\nif (!preg_match_all('/^[0-9]+$/', ${v}, $m{ident})) {{ exit; }}\n{sink}"
            ),
            2 => format!(
                "${v} = $_GET['{k}'];\nif (empty(${v})) {{ exit; }}\n${v} = str_pad(ereg_replace('[^a-z]', '', ${v}), 4, '0');\n{sink}"
            ),
            _ => unreachable!(),
        },
        FpKind::NonSymptoms => {
            let _ = rng;
            format!(
                "${v} = $_GET['{k}'];\nif (sizeof($allowed) > 0 && md5(${v}) == $expected{ident}) {{\n    {sink}}}\n"
            )
        }
    }
}

/// A false positive guarded by the vfront-style `escape` user sanitizer
/// (the §V-A study). Requires [`escape_helper`] in the same application.
pub fn fp_escape(class: &VulnClass, ident: usize) -> String {
    let k = format!("f{ident}");
    let v = format!("g{ident}");
    let sink = sink_line(class, &v, ident);
    format!("${v} = escape($_POST['{k}']);\n{sink}")
}

/// The `escape` helper of the §V-A vfront study: a real sanitizer the tool
/// does not know about until the user registers it.
pub fn escape_helper() -> &'static str {
    "function escape($value) {\n    return str_replace(array(\"'\", '\"', '\\\\'), array(\"''\", '', ''), $value);\n}\n"
}

fn sink_line(class: &VulnClass, v: &str, ident: usize) -> String {
    match class {
        VulnClass::Sqli => {
            format!("mysql_query(\"SELECT * FROM records WHERE rid = '${v}'\");\n")
        }
        VulnClass::XssReflected => format!("echo \"<li>${v}</li>\";\n"),
        VulnClass::Custom(name) if name == "WPSQLI" => {
            format!("$wpdb->query(\"SELECT * FROM {{$wpdb->prefix}}t{ident} WHERE c = '${v}'\");\n")
        }
        other => {
            let _ = other;
            format!("mysql_query(\"DELETE FROM cache WHERE ck = '${v}'\");\n")
        }
    }
}

/// Emits a *safe* flow: sanitized before the sink, so the analyzer must
/// stay silent. These are the corpus's true negatives.
pub fn safe_flow(ident: usize, rng: &mut StdRng) -> String {
    let k = format!("s{ident}");
    let v = format!("w{ident}");
    match rng.gen_range(0..5) {
        0 => format!(
            "${v} = mysql_real_escape_string($_GET['{k}']);\nmysql_query(\"SELECT * FROM t WHERE c = '${v}'\");\n"
        ),
        1 => format!("echo htmlspecialchars($_POST['{k}']);\n"),
        2 => format!("${v} = (int)$_GET['{k}'];\nmysql_query(\"SELECT * FROM t WHERE n = ${v}\");\n"),
        3 => format!("include 'pages/' . basename($_GET['{k}']) . '.php';\n"),
        _ => format!("system('ls ' . escapeshellarg($_POST['{k}']));\n"),
    }
}

/// WordPress-flavoured safe flow (uses `$wpdb->prepare` / `esc_sql`).
pub fn safe_wp_flow(ident: usize, rng: &mut StdRng) -> String {
    let k = format!("s{ident}");
    let v = format!("w{ident}");
    match rng.gen_range(0..3) {
        0 => format!(
            "${v} = $wpdb->prepare(\"SELECT * FROM {{$wpdb->prefix}}x WHERE i = %d\", $_GET['{k}']);\n$wpdb->query(${v});\n"
        ),
        1 => format!(
            "${v} = esc_sql($_POST['{k}']);\n$wpdb->get_row(\"SELECT * FROM {{$wpdb->prefix}}y WHERE c = '${v}'\");\n"
        ),
        _ => format!("echo htmlspecialchars($_GET['{k}']);\n"),
    }
}

/// A WordPress false positive guarded by dynamic symptoms (`absint`,
/// `sanitize_text_field`) — WAPe with the wpsqli weapon predicts these.
pub fn wp_false_positive(ident: usize, rng: &mut StdRng) -> String {
    let k = format!("f{ident}");
    let v = format!("g{ident}");
    match rng.gen_range(0..2) {
        0 => format!(
            "${v} = $_GET['{k}'];\nif (absint(${v}) == 0) {{ exit; }}\nif (isset($_GET['{k}'])) {{\n    $wpdb->query(\"SELECT * FROM {{$wpdb->prefix}}a WHERE n = ${v}\");\n}}\n"
        ),
        _ => format!(
            "${v} = sanitize_text_field($_POST['{k}']);\nif (empty(${v})) {{ exit; }}\n$wpdb->get_col(\"SELECT cid FROM {{$wpdb->prefix}}b WHERE t = '${v}'\");\n"
        ),
    }
}

/// Benign filler: realistic application code with no entry-point flows.
/// `n` selects among several shapes; keeps LoC counts realistic.
pub fn filler(ident: usize, n: usize) -> String {
    match n % 9 {
        6 => format!(
            "$title{ident} = 'Dashboard';\n$show{ident} = true;\n?>\n<div class=\"panel\">\n  <?php if ($show{ident}): ?>\n    <h2><?= $title{ident} ?></h2>\n  <?php else: ?>\n    <h2>Hidden</h2>\n  <?php endif; ?>\n</div>\n<?php\n"
        ),
        7 => format!(
            "$rows{ident} = array('alpha', 'beta', 'gamma');\n?>\n<ul>\n<?php foreach ($rows{ident} as $r{ident}): ?>\n  <li><?= $r{ident} ?></li>\n<?php endforeach; ?>\n</ul>\n<?php\n"
        ),
        8 => format!(
            "class View{ident} {{\n    private $vars = array();\n    public function assign($k, $v) {{\n        $this->vars[$k] = $v;\n    }}\n    public function render($tpl) {{\n        return str_replace('%body%', $tpl, '<main>%body%</main>');\n    }}\n}}\n"
        ),
        0 => format!(
            "function render_menu_{ident}($items) {{\n    $out = '<ul>';\n    foreach ($items as $item) {{\n        $out .= '<li>' . $item . '</li>';\n    }}\n    return $out . '</ul>';\n}}\n"
        ),
        1 => format!(
            "class Model{ident} {{\n    private $attrs = array();\n    public function get($key) {{\n        return isset($this->attrs[$key]) ? $this->attrs[$key] : null;\n    }}\n    public function set($key, $value) {{\n        $this->attrs[$key] = $value;\n        return $this;\n    }}\n}}\n"
        ),
        2 => format!(
            "$config{ident} = array(\n    'cache_ttl' => 3600,\n    'page_size' => 25,\n    'theme' => 'default',\n    'locale' => 'en_US',\n);\n"
        ),
        3 => format!(
            "function format_date_{ident}($ts) {{\n    if (!is_numeric($ts)) {{\n        return '-';\n    }}\n    return date('Y-m-d H:i', (int)$ts);\n}}\n"
        ),
        4 => format!(
            "function paginate_{ident}($total, $per_page) {{\n    $pages = (int)ceil($total / $per_page);\n    $links = array();\n    for ($i = 1; $i <= $pages; $i++) {{\n        $links[] = '?page=' . $i;\n    }}\n    return $links;\n}}\n"
        ),
        _ => format!(
            "function log_event_{ident}($level, $message) {{\n    static $levels = array('debug', 'info', 'warn', 'error');\n    if (!in_array($level, $levels)) {{\n        $level = 'info';\n    }}\n    error_log('[' . $level . '] ' . $message);\n}}\n"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wap_catalog::Catalog;
    use wap_php::parse;
    use wap_taint::analyze_program;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn wrap(body: &str) -> String {
        format!("<?php\n{body}")
    }

    #[test]
    fn all_real_vuln_snippets_parse_and_trigger() {
        let mut catalog = Catalog::wape_full();
        catalog.add_weapon(wap_catalog::WeaponConfig::nosqli());
        let mut r = rng();
        let classes: Vec<VulnClass> = VulnClass::original()
            .into_iter()
            .chain(VulnClass::new_in_wape())
            .chain([VulnClass::Custom("WPSQLI".into())])
            .collect();
        for class in classes {
            for i in 0..6 {
                let src = wrap(&real_vuln(&class, i, &mut r));
                let program = parse(&src).unwrap_or_else(|e| panic!("{class} snippet: {e}\n{src}"));
                let found = analyze_program(&catalog, &program);
                assert!(
                    found.iter().any(|c| c.class.acronym() == class.acronym()
                        || (matches!(class, VulnClass::Lfi | VulnClass::Rfi)
                            && matches!(c.class, VulnClass::Lfi | VulnClass::Rfi))),
                    "{class} variant {i} not detected:\n{src}\nfound: {found:?}"
                );
            }
        }
    }

    #[test]
    fn false_positive_snippets_are_flagged_by_taint() {
        let catalog = Catalog::wape();
        let mut r = rng();
        for kind in [
            FpKind::OriginalSymptoms,
            FpKind::NewSymptomsOnly,
            FpKind::NonSymptoms,
        ] {
            for class in [VulnClass::Sqli, VulnClass::XssReflected] {
                for i in 0..6 {
                    let body = false_positive(&class, kind, i, &mut r);
                    let src = wrap(&body);
                    let program = parse(&src).unwrap_or_else(|e| panic!("{kind:?}: {e}\n{src}"));
                    let found = analyze_program(&catalog, &program);
                    assert!(
                        !found.is_empty(),
                        "{kind:?}/{class} must still be a candidate:\n{src}"
                    );
                }
            }
        }
    }

    #[test]
    fn safe_snippets_are_silent() {
        let catalog = Catalog::wape();
        let mut r = rng();
        for i in 0..20 {
            let src = wrap(&safe_flow(i, &mut r));
            let program = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            let found = analyze_program(&catalog, &program);
            assert!(found.is_empty(), "safe flow reported:\n{src}\n{found:?}");
        }
    }

    #[test]
    fn safe_wp_snippets_are_silent_even_with_weapon() {
        let mut catalog = Catalog::wape();
        catalog.add_weapon(wap_catalog::WeaponConfig::wpsqli());
        let mut r = rng();
        for i in 0..12 {
            let src = wrap(&safe_wp_flow(i, &mut r));
            let program = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            let found = analyze_program(&catalog, &program);
            assert!(found.is_empty(), "safe WP flow reported:\n{src}\n{found:?}");
        }
    }

    #[test]
    fn wp_false_positives_need_the_weapon() {
        let mut r = rng();
        let plain = Catalog::wape();
        let mut armed = Catalog::wape();
        armed.add_weapon(wap_catalog::WeaponConfig::wpsqli());
        for i in 0..6 {
            let src = wrap(&wp_false_positive(i, &mut r));
            let program = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
            assert!(analyze_program(&plain, &program).is_empty());
            assert!(!analyze_program(&armed, &program).is_empty(), "{src}");
        }
    }

    #[test]
    fn filler_parses_and_is_silent() {
        let catalog = Catalog::wape_full();
        let mut src = String::from("<?php\n");
        for i in 0..18 {
            src.push_str(&filler(i, i));
        }
        let program = parse(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert!(analyze_program(&catalog, &program).is_empty());
    }

    #[test]
    fn escape_helper_parses() {
        assert!(parse(&wrap(escape_helper())).is_ok());
    }

    #[test]
    fn escape_guarded_fp_flagged_until_registered() {
        let src = wrap(&format!(
            "{}{}",
            escape_helper(),
            fp_escape(&VulnClass::Sqli, 0)
        ));
        let program = parse(&src).unwrap();
        let plain = Catalog::wape();
        assert_eq!(analyze_program(&plain, &program).len(), 1, "{src}");
        let mut informed = Catalog::wape();
        informed.add_user_sanitizer("escape", &[VulnClass::Sqli]);
        assert!(analyze_program(&informed, &program).is_empty());
    }
}
