//! Application and plugin generation: turns [`specs`](crate::specs) into
//! actual PHP source trees with recorded ground truth.

use crate::phpgen::{
    escape_helper, false_positive, filler, fp_escape, real_vuln, safe_flow, safe_wp_flow,
    wp_false_positive, FpKind,
};
use crate::specs::{AppSpec, ClassCounts, PluginSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wap_catalog::VulnClass;

/// What a seeded flow is, for ground-truth accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowKind {
    /// A real vulnerability of the class.
    Real(VulnClass),
    /// FP guarded by original symptoms (both generations predict it).
    FpBoth,
    /// FP guarded by WAPe-only symptoms.
    FpWapeOnly,
    /// FP guarded by non-symptom functions (neither predicts it).
    FpHard,
    /// FP guarded by the vfront `escape` user sanitizer.
    FpEscape,
}

/// One seeded flow and where it was placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededFlow {
    /// The kind of flow.
    pub kind: FlowKind,
    /// The file it lives in.
    pub file: String,
}

/// One generated PHP file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedFile {
    /// File name within the application (e.g. `inc/page03.php`).
    pub name: String,
    /// Full source text.
    pub source: String,
}

/// A generated application (web app package or WordPress plugin).
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedApp {
    /// Application name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// Generated files.
    pub files: Vec<GeneratedFile>,
    /// Ground truth of all seeded flows.
    pub seeded: Vec<SeededFlow>,
    /// Total lines of code.
    pub loc: usize,
}

impl GeneratedApp {
    /// Number of files.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Writes the application's files under `dir` (creating directories
    /// as needed) and returns the paths written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut out = Vec::new();
        for f in &self.files {
            let path = dir.join(&f.name);
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&path, &f.source)?;
            out.push(path);
        }
        Ok(out)
    }

    /// Files containing at least one seeded flow.
    pub fn vulnerable_file_count(&self) -> usize {
        let mut fs: Vec<&str> = self
            .seeded
            .iter()
            .filter(|s| matches!(s.kind, FlowKind::Real(_)))
            .map(|s| s.file.as_str())
            .collect();
        fs.sort();
        fs.dedup();
        fs.len()
    }

    /// Seeded real vulnerabilities per class acronym.
    pub fn real_by_class(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for s in &self.seeded {
            if let FlowKind::Real(c) = &s.kind {
                let key = c.acronym().to_string();
                match counts.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((key, 1)),
                }
            }
        }
        counts
    }
}

/// Deterministic generation budget derived from a spec and a scale factor.
fn scaled(n: usize, scale: f64, min: usize) -> usize {
    ((n as f64 * scale).round() as usize).max(min)
}

/// Generates one web application package from its Table V/VI spec.
///
/// `scale` shrinks the file/LoC budget for fast tests (1.0 = paper size);
/// seeded vulnerabilities are never scaled away.
pub fn generate_webapp(spec: &AppSpec, scale: f64, seed: u64) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_files = scaled(spec.files, scale, 1);
    let target_loc = scaled(spec.loc, scale, 40);

    // Build the flow work list
    let mut flows: Vec<FlowKind> = Vec::new();
    for (class, count) in spec.real.per_class() {
        for _ in 0..count {
            flows.push(FlowKind::Real(class.clone()));
        }
    }
    for _ in 0..spec.fp_both {
        flows.push(FlowKind::FpBoth);
    }
    for _ in 0..spec.fp_wape_only {
        flows.push(FlowKind::FpWapeOnly);
    }
    for _ in 0..(spec.fp_hard - spec.fp_escape) {
        flows.push(FlowKind::FpHard);
    }
    for _ in 0..spec.fp_escape {
        flows.push(FlowKind::FpEscape);
    }

    build_app(
        spec.name,
        spec.version,
        n_files,
        target_loc,
        spec.vuln_files.min(n_files).max(1),
        flows,
        false,
        &mut rng,
    )
}

/// Generates one clean web application package.
pub fn generate_clean_webapp(
    name: &str,
    files: usize,
    loc: usize,
    scale: f64,
    seed: u64,
) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed);
    build_app(
        name,
        "1.0",
        scaled(files, scale, 1),
        scaled(loc, scale, 40),
        1,
        Vec::new(),
        false,
        &mut rng,
    )
}

/// Generates one WordPress plugin from its Table VII spec. SQLI flows use
/// `$wpdb` sinks (invisible without the `-wpsqli` weapon); FPP flows are
/// guarded with WordPress dynamic-symptom helpers.
pub fn generate_plugin(spec: &PluginSpec, scale: f64, seed: u64) -> GeneratedApp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flows: Vec<FlowKind> = Vec::new();
    let wp_real = ClassCounts {
        sqli: 0,
        ..spec.real
    };
    for _ in 0..spec.real.sqli {
        flows.push(FlowKind::Real(VulnClass::Custom("WPSQLI".into())));
    }
    for (class, count) in wp_real.per_class() {
        for _ in 0..count {
            flows.push(FlowKind::Real(class.clone()));
        }
    }
    for _ in 0..spec.fpp {
        flows.push(FlowKind::FpBoth); // guarded by dynamic symptoms
    }
    for _ in 0..spec.fp {
        flows.push(FlowKind::FpHard);
    }
    let n_files = scaled(8 + (spec.total() / 4), scale.max(0.5), 2);
    let loc = scaled(900 + spec.total() * 60, scale.max(0.5), 120);
    build_app(
        spec.name,
        spec.version,
        n_files,
        loc,
        n_files.clamp(1, 4),
        flows,
        true,
        &mut rng,
    )
}

#[allow(clippy::too_many_arguments)]
fn build_app(
    name: &str,
    version: &str,
    n_files: usize,
    target_loc: usize,
    vuln_files: usize,
    flows: Vec<FlowKind>,
    wordpress: bool,
    rng: &mut StdRng,
) -> GeneratedApp {
    let per_file_loc = (target_loc / n_files.max(1)).max(12);
    let mut files = Vec::new();
    let mut seeded = Vec::new();
    let mut loc = 0usize;
    let mut ident = 0usize;

    // distribute flows over the first `vuln_files` files, round-robin
    let mut flow_buckets: Vec<Vec<FlowKind>> = vec![Vec::new(); n_files];
    for (i, f) in flows.into_iter().enumerate() {
        flow_buckets[i % vuln_files.max(1)].push(f);
    }
    let needs_escape_helper = flow_buckets
        .iter()
        .flatten()
        .any(|f| matches!(f, FlowKind::FpEscape));

    for (fi, bucket) in flow_buckets.iter().enumerate() {
        let fname = if fi == 0 {
            "index.php".to_string()
        } else if wordpress {
            format!("includes/part{fi:03}.php")
        } else {
            format!("inc/page{fi:03}.php")
        };
        let mut body = String::new();
        body.push_str(&format!(
            "<?php\n/**\n * {name} {version} — {fname}\n * generated corpus file\n */\n"
        ));
        if fi == 0 && needs_escape_helper {
            body.push_str(escape_helper());
        }
        if fi == 0 && wordpress {
            body.push_str("global $wpdb;\n");
        }
        // seeded flows for this file
        for flow in bucket {
            ident += 1;
            let snippet = match flow {
                FlowKind::Real(class) => real_vuln(class, ident, rng),
                FlowKind::FpBoth => {
                    if wordpress {
                        wp_false_positive(ident, rng)
                    } else {
                        let class = fp_sink_class(ident);
                        false_positive(&class, FpKind::OriginalSymptoms, ident, rng)
                    }
                }
                FlowKind::FpWapeOnly => {
                    let class = fp_sink_class(ident);
                    false_positive(&class, FpKind::NewSymptomsOnly, ident, rng)
                }
                FlowKind::FpHard => {
                    let class = fp_sink_class(ident);
                    false_positive(&class, FpKind::NonSymptoms, ident, rng)
                }
                FlowKind::FpEscape => fp_escape(&VulnClass::Sqli, ident),
            };
            body.push_str(&snippet);
            seeded.push(SeededFlow {
                kind: flow.clone(),
                file: fname.clone(),
            });
        }
        // a couple of safe flows for realism (true negatives)
        if fi % 3 == 0 {
            ident += 1;
            body.push_str(&if wordpress {
                safe_wp_flow(ident, rng)
            } else {
                safe_flow(ident, rng)
            });
        }
        // filler up to the per-file LoC budget
        let mut guard = 0;
        while body.lines().count() < per_file_loc && guard < 100_000 {
            ident += 1;
            guard += 1;
            body.push_str(&filler(ident, rng.gen_range(0..9)));
        }
        body.push_str("?>\n");
        loc += body.lines().count();
        files.push(GeneratedFile {
            name: fname,
            source: body,
        });
    }

    GeneratedApp {
        name: name.to_string(),
        version: version.to_string(),
        files,
        seeded,
        loc,
    }
}

/// FP flows alternate between SQLI and XSS sinks deterministically.
fn fp_sink_class(ident: usize) -> VulnClass {
    if ident.is_multiple_of(2) {
        VulnClass::Sqli
    } else {
        VulnClass::XssReflected
    }
}

/// Generates all 54 web application packages.
pub fn generate_webapps(scale: f64, seed: u64) -> Vec<GeneratedApp> {
    let mut out = Vec::new();
    for (i, spec) in crate::specs::vulnerable_webapps().iter().enumerate() {
        out.push(generate_webapp(spec, scale, seed.wrapping_add(i as u64)));
    }
    for (i, (name, files, loc)) in crate::specs::clean_webapps().iter().enumerate() {
        out.push(generate_clean_webapp(
            name,
            *files,
            *loc,
            scale,
            seed.wrapping_add(1000 + i as u64),
        ));
    }
    out
}

/// Generates all 115 WordPress plugins (with their Fig. 4 metadata kept in
/// the spec list, aligned by index).
pub fn generate_plugins(scale: f64, seed: u64) -> Vec<(PluginSpec, GeneratedApp)> {
    let mut out = Vec::new();
    for (i, spec) in crate::specs::vulnerable_plugins().into_iter().enumerate() {
        let app = generate_plugin(&spec, scale, seed.wrapping_add(i as u64));
        out.push((spec, app));
    }
    for (i, spec) in crate::specs::clean_plugins().into_iter().enumerate() {
        let app = generate_plugin(&spec, scale, seed.wrapping_add(5000 + i as u64));
        out.push((spec, app));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{vulnerable_plugins, vulnerable_webapps};
    use wap_catalog::Catalog;
    use wap_php::parse;
    use wap_taint::{analyze, AnalysisOptions, SourceFile};

    fn analyze_app(app: &GeneratedApp, catalog: &Catalog) -> Vec<wap_taint::Candidate> {
        let files: Vec<SourceFile> = app
            .files
            .iter()
            .map(|f| SourceFile {
                name: f.name.clone(),
                program: parse(&f.source)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}", app.name, f.name)),
            })
            .collect();
        analyze(catalog, &AnalysisOptions::default(), &files)
    }

    #[test]
    fn every_generated_file_parses() {
        for app in generate_webapps(0.02, 42) {
            for f in &app.files {
                parse(&f.source)
                    .unwrap_or_else(|e| panic!("{}/{}: {e}\n{}", app.name, f.name, f.source));
            }
        }
    }

    #[test]
    fn candidate_counts_match_ground_truth() {
        // the full configuration: HI/EI flows need the -hei weapon
        let catalog = Catalog::wape_full();
        for spec in vulnerable_webapps() {
            let app = generate_webapp(&spec, 0.02, 7);
            let found = analyze_app(&app, &catalog);
            assert_eq!(
                found.len(),
                spec.total_candidates(),
                "{}: expected {} candidates, taint found {}",
                spec.name,
                spec.total_candidates(),
                found.len()
            );
        }
    }

    #[test]
    fn per_class_detection_matches_table_vi() {
        let catalog = Catalog::wape();
        let mut sqli = 0;
        let mut xss = 0;
        let mut hi = 0;
        for spec in vulnerable_webapps() {
            let app = generate_webapp(&spec, 0.02, 7);
            let found = analyze_app(&app, &catalog);
            // count only real flows: FPs also land in SQLI/XSS buckets, so
            // subtract the seeded FP sink classes
            let fp_sqli = found
                .iter()
                .filter(|c| c.class == VulnClass::Sqli)
                .count()
                .saturating_sub(spec.real.sqli);
            sqli += found.iter().filter(|c| c.class == VulnClass::Sqli).count() - fp_sqli;
            xss += spec.real.xss.min(
                found
                    .iter()
                    .filter(|c| c.class == VulnClass::XssReflected)
                    .count(),
            );
            hi += found
                .iter()
                .filter(|c| c.class == VulnClass::HeaderI)
                .count();
        }
        assert_eq!(sqli, 72);
        assert_eq!(xss, 255);
        // HI requires the -hei weapon, so plain WAPe finds none
        assert_eq!(hi, 0);
        let mut armed = Catalog::wape();
        armed.add_weapon(wap_catalog::WeaponConfig::hei());
        let total_hi: usize = vulnerable_webapps()
            .iter()
            .map(|spec| {
                let app = generate_webapp(spec, 0.02, 7);
                analyze_app(&app, &armed)
                    .iter()
                    .filter(|c| c.class == VulnClass::HeaderI)
                    .count()
            })
            .sum();
        assert_eq!(total_hi, 19, "Table VI HI column needs the weapon");
    }

    #[test]
    fn plugin_sqli_requires_wpsqli_weapon() {
        let spec = vulnerable_plugins()
            .into_iter()
            .find(|p| p.name.contains("Simple support"))
            .unwrap();
        let app = generate_plugin(&spec, 1.0, 3);
        let plain = analyze_app(&app, &Catalog::wape());
        assert_eq!(
            plain
                .iter()
                .filter(|c| c.class.acronym() == "WPSQLI")
                .count(),
            0,
            "no $wpdb knowledge without the weapon"
        );
        let mut armed = Catalog::wape();
        armed.add_weapon(wap_catalog::WeaponConfig::wpsqli());
        let found = analyze_app(&app, &armed);
        assert_eq!(
            found
                .iter()
                .filter(|c| c.class.acronym() == "WPSQLI")
                .count(),
            18,
            "Table VII: 18 SQLI in simple-support-ticket-system"
        );
    }

    #[test]
    fn vulnerable_file_counts_are_positive() {
        for spec in vulnerable_webapps().iter().take(4) {
            let app = generate_webapp(spec, 0.05, 1);
            assert!(app.vulnerable_file_count() >= 1);
            assert!(app.loc > 0);
            assert_eq!(
                app.seeded
                    .iter()
                    .filter(|s| matches!(s.kind, FlowKind::Real(_)))
                    .count(),
                spec.real.total()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = &vulnerable_webapps()[0];
        let a = generate_webapp(spec, 0.05, 9);
        let b = generate_webapp(spec, 0.05, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn scale_controls_size_not_vulns() {
        let spec = &vulnerable_webapps()[2]; // Clip Bucket: 597 files
        let small = generate_webapp(spec, 0.02, 9);
        let big = generate_webapp(spec, 0.1, 9);
        assert!(big.file_count() > small.file_count());
        assert!(big.loc > small.loc);
        assert_eq!(small.seeded.len(), big.seeded.len());
    }

    #[test]
    fn clean_apps_are_silent() {
        let catalog = Catalog::wape_full();
        let app = generate_clean_webapp("CleanApp", 10, 800, 1.0, 11);
        let found = analyze_app(&app, &catalog);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn escape_study_app_has_six_escape_flows() {
        let spec = vulnerable_webapps()
            .into_iter()
            .find(|a| a.name == "vfront")
            .unwrap();
        let app = generate_webapp(&spec, 0.02, 13);
        let n = app
            .seeded
            .iter()
            .filter(|s| s.kind == FlowKind::FpEscape)
            .count();
        assert_eq!(n, 6);
        // index.php carries the helper
        assert!(app.files[0].source.contains("function escape"));
    }
}
