//! The evaluation corpus specifications, transcribed from the paper.
//!
//! Tables V and VI define the 17 vulnerable web application packages (plus
//! 37 clean ones, for 54 total / 8,374 files / 2,065,914 LoC); Table VII
//! and Fig. 4 define the 115 WordPress plugins (23 vulnerable). Cells the
//! PDF renders ambiguously were reconstructed to satisfy every row and
//! column total the text states (413 web-app vulnerabilities, 169 plugin
//! vulnerabilities, 55 plugin SQLI, FPP/FP totals 62/60 for WAP and 104/18
//! for WAPe, 26 new-class zero-days + 1 SF, 16 known plugin CVEs).

use wap_catalog::VulnClass;

/// Per-class seeded vulnerability counts for one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassCounts {
    /// SQL injection.
    pub sqli: usize,
    /// Cross-site scripting (reflected; the corpus seeds reflected XSS).
    pub xss: usize,
    /// File-inclusion classes (DT & RFI, LFI — the tables' `Files*`).
    pub files: usize,
    /// Source code disclosure.
    pub scd: usize,
    /// LDAP injection.
    pub ldapi: usize,
    /// Session fixation.
    pub sf: usize,
    /// Header injection.
    pub hi: usize,
    /// Comment spamming.
    pub cs: usize,
}

impl ClassCounts {
    /// Total seeded vulnerabilities.
    pub fn total(&self) -> usize {
        self.sqli + self.xss + self.files + self.scd + self.ldapi + self.sf + self.hi + self.cs
    }

    /// Expands into `(class, count)` pairs. `files` is split between LFI
    /// and RFI/DT deterministically (LFI gets the larger half).
    pub fn per_class(&self) -> Vec<(VulnClass, usize)> {
        let mut out = Vec::new();
        let mut push = |c: VulnClass, n: usize| {
            if n > 0 {
                out.push((c, n));
            }
        };
        push(VulnClass::Sqli, self.sqli);
        push(VulnClass::XssReflected, self.xss);
        let lfi = self.files.div_ceil(2);
        let rfi = (self.files - lfi).div_ceil(2);
        let dt = self.files - lfi - rfi;
        push(VulnClass::Lfi, lfi);
        push(VulnClass::Rfi, rfi);
        push(VulnClass::DirTraversal, dt);
        push(VulnClass::Scd, self.scd);
        push(VulnClass::LdapI, self.ldapi);
        push(VulnClass::SessionFixation, self.sf);
        push(VulnClass::HeaderI, self.hi);
        push(VulnClass::CommentSpam, self.cs);
        out
    }
}

/// Specification of one web application package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Application name (as in Table V).
    pub name: &'static str,
    /// Version string.
    pub version: &'static str,
    /// Number of PHP files the paper analyzed.
    pub files: usize,
    /// Lines of code the paper analyzed.
    pub loc: usize,
    /// The paper's reported analysis time in seconds (Table V).
    pub paper_time_s: u32,
    /// The paper's "vulnerable files" count (Table V).
    pub vuln_files: usize,
    /// Seeded real vulnerabilities per class (Table VI).
    pub real: ClassCounts,
    /// Candidates predicted as FP by BOTH generations (`FPP` of WAP).
    pub fp_both: usize,
    /// Candidates only WAPe predicts (guarded by new symptoms):
    /// `FPP(WAPe) − FPP(WAP)`.
    pub fp_wape_only: usize,
    /// Candidates neither generation predicts (non-symptom guards):
    /// `FP(WAPe)`.
    pub fp_hard: usize,
    /// How many of the hard FPs use the vfront-style `escape` sanitizer
    /// (the §V-A user-sanitizer study).
    pub fp_escape: usize,
}

impl AppSpec {
    /// `FPP` column for WAPe: all predicted FPs.
    pub fn fpp_wape(&self) -> usize {
        self.fp_both + self.fp_wape_only
    }

    /// `FP` column for WAP v2.1 (not predicted): the new-symptom FPs plus
    /// the hard FPs.
    pub fn fp_wap(&self) -> usize {
        self.fp_wape_only + self.fp_hard
    }

    /// Total candidates the taint analyzer should flag in this app.
    pub fn total_candidates(&self) -> usize {
        self.real.total() + self.fp_both + self.fp_wape_only + self.fp_hard
    }
}

macro_rules! cc {
    ($sqli:expr, $xss:expr, $files:expr, $scd:expr, $ldapi:expr, $sf:expr, $hi:expr, $cs:expr) => {
        ClassCounts {
            sqli: $sqli,
            xss: $xss,
            files: $files,
            scd: $scd,
            ldapi: $ldapi,
            sf: $sf,
            hi: $hi,
            cs: $cs,
        }
    };
}

/// The 17 vulnerable web application packages of Tables V/VI.
pub fn vulnerable_webapps() -> Vec<AppSpec> {
    vec![
        AppSpec {
            name: "Admin Control Panel Lite 2",
            version: "0.10.2",
            files: 14,
            loc: 1984,
            paper_time_s: 1,
            vuln_files: 9,
            real: cc!(9, 72, 0, 0, 0, 0, 0, 0),
            fp_both: 8,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Anywhere Board Games",
            version: "0.150215",
            files: 3,
            loc: 501,
            paper_time_s: 1,
            vuln_files: 1,
            real: cc!(0, 1, 1, 0, 0, 0, 1, 0),
            fp_both: 0,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Clip Bucket",
            version: "2.7.0.4",
            files: 597,
            loc: 148_129,
            paper_time_s: 11,
            vuln_files: 16,
            real: cc!(0, 10, 11, 1, 0, 0, 0, 0),
            fp_both: 2,
            fp_wape_only: 4,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Clip Bucket",
            version: "2.8",
            files: 606,
            loc: 149_830,
            paper_time_s: 12,
            vuln_files: 18,
            real: cc!(4, 10, 11, 1, 0, 0, 0, 0),
            fp_both: 2,
            fp_wape_only: 4,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Community Mobile Channels",
            version: "0.2.0",
            files: 372,
            loc: 119_890,
            paper_time_s: 8,
            vuln_files: 116,
            real: cc!(14, 27, 3, 0, 0, 0, 3, 0),
            fp_both: 0,
            fp_wape_only: 4,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "divine",
            version: "0.1.3a",
            files: 5,
            loc: 706,
            paper_time_s: 1,
            vuln_files: 2,
            real: cc!(4, 2, 3, 0, 0, 0, 0, 0),
            fp_both: 0,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Ldap address book",
            version: "0.22",
            files: 18,
            loc: 4615,
            paper_time_s: 2,
            vuln_files: 4,
            real: cc!(0, 0, 0, 0, 1, 0, 0, 0),
            fp_both: 0,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Minutes",
            version: "0.42",
            files: 19,
            loc: 2670,
            paper_time_s: 1,
            vuln_files: 2,
            real: cc!(0, 9, 0, 0, 0, 0, 1, 0),
            fp_both: 0,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Mle Moodle",
            version: "0.8.8.5",
            files: 235,
            loc: 59_723,
            paper_time_s: 18,
            vuln_files: 4,
            real: cc!(0, 6, 1, 0, 0, 0, 0, 0),
            fp_both: 2,
            fp_wape_only: 0,
            fp_hard: 1,
            fp_escape: 0,
        },
        AppSpec {
            name: "Php Open Chat",
            version: "3.0.2",
            files: 249,
            loc: 83_899,
            paper_time_s: 7,
            vuln_files: 9,
            real: cc!(0, 10, 0, 0, 0, 0, 0, 1),
            fp_both: 0,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Pivotx",
            version: "2.3.10",
            files: 254,
            loc: 108_893,
            paper_time_s: 6,
            vuln_files: 1,
            real: cc!(0, 1, 0, 0, 0, 0, 0, 0),
            fp_both: 9,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "Play sms",
            version: "1.3.1",
            files: 1420,
            loc: 248_875,
            paper_time_s: 19,
            vuln_files: 7,
            real: cc!(0, 6, 0, 0, 0, 0, 0, 0),
            fp_both: 2,
            fp_wape_only: 0,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "RCR AEsir",
            version: "0.11a",
            files: 8,
            loc: 396,
            paper_time_s: 1,
            vuln_files: 6,
            real: cc!(9, 3, 0, 0, 0, 0, 1, 0),
            fp_both: 0,
            fp_wape_only: 1,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "refbase",
            version: "0.9.6",
            files: 171,
            loc: 109_600,
            paper_time_s: 10,
            vuln_files: 18,
            real: cc!(0, 46, 0, 0, 0, 0, 2, 0),
            fp_both: 7,
            fp_wape_only: 4,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "SAE",
            version: "1.1",
            files: 150,
            loc: 47_207,
            paper_time_s: 7,
            vuln_files: 39,
            real: cc!(11, 25, 10, 0, 1, 1, 0, 0),
            fp_both: 3,
            fp_wape_only: 9,
            fp_hard: 11,
            fp_escape: 0,
        },
        AppSpec {
            name: "Tomahawk Mail",
            version: "2.0",
            files: 155,
            loc: 16_742,
            paper_time_s: 3,
            vuln_files: 3,
            real: cc!(0, 2, 0, 0, 0, 0, 1, 0),
            fp_both: 1,
            fp_wape_only: 2,
            fp_hard: 0,
            fp_escape: 0,
        },
        AppSpec {
            name: "vfront",
            version: "0.99.3",
            files: 438,
            loc: 93_042,
            paper_time_s: 15,
            vuln_files: 25,
            real: cc!(21, 25, 15, 2, 0, 0, 10, 4),
            fp_both: 26,
            fp_wape_only: 14,
            fp_hard: 6,
            fp_escape: 6,
        },
    ]
}

/// The 37 clean packages completing the 54 of §V-A. Synthetic names; file
/// and LoC budgets sum with the vulnerable apps to the paper's totals
/// (8,374 files / 2,065,914 LoC).
pub fn clean_webapps() -> Vec<(&'static str, usize, usize)> {
    // 37 apps, 3,660 files, 869,212 LoC in total
    let names: [&str; 37] = [
        "AddressBook Pro",
        "Agenda Plus",
        "Artifact Tracker",
        "Blog Engine X",
        "BookShelf",
        "Bug Herd",
        "CalendarWorks",
        "CartLight",
        "ChatRelay",
        "ClassRoster",
        "CloudNotes",
        "CmsLite",
        "ContactHub",
        "DataGridder",
        "DocuShare",
        "EventMaster",
        "FaqBuilder",
        "FileVault",
        "ForumOne",
        "GalleryPrime",
        "GuestBookPlus",
        "HelpDeskGo",
        "InvoiceFlow",
        "JobBoard",
        "KnowledgeBase",
        "LinkDirectory",
        "MailingListPro",
        "NewsPortal",
        "PollMaster",
        "ProjectTrack",
        "QuizEngine",
        "RecipeBox",
        "ShopWindow",
        "SurveyKing",
        "TaskQueue",
        "TimeSheets",
        "WikiCore",
    ];
    let mut out = Vec::new();
    for (i, name) in names.iter().enumerate() {
        // deterministic pseudo-variety: 98..=100 files, ~23.5k LoC each
        let files = 98 + (i % 3);
        let loc = 23_000 + (i * 137) % 1000;
        out.push((*name, files, loc));
    }
    out
}

/// Specification of one WordPress plugin (Table VII + Fig. 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PluginSpec {
    /// Plugin name.
    pub name: &'static str,
    /// Version.
    pub version: &'static str,
    /// Seeded real vulnerabilities (`sqli` uses `$wpdb` sinks and needs the
    /// `-wpsqli` weapon).
    pub real: ClassCounts,
    /// FPs predicted by WAPe (guarded via WordPress dynamic symptoms).
    pub fpp: usize,
    /// FPs not predicted (non-symptom guards).
    pub fp: usize,
    /// Whether the plugin has CVE-registered (known) vulnerabilities.
    pub known_cves: usize,
    /// Download count (Fig. 4a).
    pub downloads: u64,
    /// Active installs (Fig. 4b).
    pub active_installs: u64,
}

impl PluginSpec {
    /// Total seeded real vulnerabilities.
    pub fn total(&self) -> usize {
        self.real.total()
    }
}

/// The 23 vulnerable plugins of Table VII.
pub fn vulnerable_plugins() -> Vec<PluginSpec> {
    let p = |name: &'static str,
             version: &'static str,
             real: ClassCounts,
             fpp: usize,
             fp: usize,
             known: usize,
             downloads: u64,
             installs: u64| PluginSpec {
        name,
        version,
        real,
        fpp,
        fp,
        known_cves: known,
        downloads,
        active_installs: installs,
    };
    vec![
        p(
            "Appointment Booking Calendar",
            "1.1.7",
            cc!(1, 3, 0, 0, 0, 0, 0, 0),
            1,
            0,
            4,
            64_000,
            3_200,
        ),
        p(
            "Auth0",
            "1.3.6",
            cc!(0, 1, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            12_000,
            900,
        ),
        p(
            "Authorizer",
            "2.3.6",
            cc!(0, 3, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            8_400,
            700,
        ),
        p(
            "BuddyPress",
            "2.4.0",
            cc!(0, 0, 0, 0, 0, 0, 0, 0),
            0,
            1,
            0,
            2_900_000,
            200_000,
        ),
        p(
            "Contact form generator",
            "2.0.1",
            cc!(0, 11, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            41_000,
            2_500,
        ),
        p(
            "CP Appointment Calendar",
            "1.1.7",
            cc!(0, 2, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            29_000,
            1_400,
        ),
        p(
            "Easy2map",
            "1.2.9",
            cc!(1, 0, 2, 0, 0, 0, 0, 0),
            0,
            0,
            3,
            22_000,
            1_100,
        ),
        p(
            "Ecwid Shopping Cart",
            "3.4.6",
            cc!(0, 1, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            710_000,
            40_000,
        ),
        p(
            "Gantry Framework",
            "4.1.6",
            cc!(0, 3, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            180_000,
            9_000,
        ),
        p(
            "Google Maps Travel Route",
            "1.3.1",
            cc!(0, 3, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            4_300,
            350,
        ),
        p(
            "Lightbox Plus Colorbox",
            "2.7.2",
            cc!(0, 8, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            1_100_000,
            210_000,
        ),
        p(
            "Payment form for Paypal pro",
            "1.0.1",
            cc!(0, 2, 0, 0, 0, 0, 0, 0),
            0,
            0,
            2,
            17_000,
            820,
        ),
        p(
            "Recipes writer",
            "1.0.4",
            cc!(0, 4, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            1_900,
            140,
        ),
        p(
            "ResAds",
            "1.0.1",
            cc!(0, 2, 0, 0, 0, 0, 0, 0),
            0,
            0,
            2,
            1_500,
            90,
        ),
        p(
            "Simple support ticket system",
            "1.2",
            cc!(18, 0, 0, 0, 0, 0, 0, 0),
            0,
            0,
            5,
            3_800,
            240,
        ),
        p(
            "The CartPress eCommerce Shopping Cart",
            "1.4.7",
            cc!(8, 17, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            96_000,
            4_800,
        ),
        p(
            "WebKite",
            "2.0.1",
            cc!(0, 1, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            1_200,
            70,
        ),
        p(
            "WP EasyCart - eCommerce Shopping Cart",
            "3.2.3",
            cc!(13, 6, 29, 5, 0, 0, 2, 5),
            0,
            0,
            0,
            240_000,
            11_000,
        ),
        p(
            "WP Marketplace",
            "2.4.1",
            cc!(9, 0, 0, 0, 0, 0, 0, 0),
            1,
            0,
            0,
            52_000,
            2_600,
        ),
        p(
            "WP Shop",
            "3.5.3",
            cc!(5, 0, 0, 0, 0, 0, 0, 0),
            1,
            0,
            0,
            34_000,
            2_200,
        ),
        p(
            "WP ToolBar Removal Node",
            "1839",
            cc!(0, 1, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            1_100,
            60,
        ),
        p(
            "WP ultimate recipe",
            "2.5",
            cc!(0, 0, 0, 0, 0, 0, 0, 0),
            0,
            1,
            0,
            560_000,
            30_000,
        ),
        p(
            "WP Web Scraper",
            "3.5",
            cc!(0, 3, 0, 0, 0, 0, 0, 0),
            0,
            0,
            0,
            11_200,
            2_100,
        ),
    ]
}

/// The Fig. 4a download-range buckets (upper-exclusive except the last).
pub const DOWNLOAD_BUCKETS: [(&str, u64, u64); 7] = [
    ("< 2000", 0, 2_000),
    ("2K - 5K", 2_000, 5_000),
    ("5K - 10K", 5_000, 10_000),
    ("10K - 50K", 10_000, 50_000),
    ("50K - 100K", 50_000, 100_000),
    ("100K - 500K", 100_000, 500_000),
    ("> 500K", 500_000, u64::MAX),
];

/// The Fig. 4b active-install buckets.
pub const INSTALL_BUCKETS: [(&str, u64, u64); 7] = [
    ("< 100", 0, 100),
    ("100 - 500", 100, 500),
    ("500 - 1K", 500, 1_000),
    ("1K - 2K", 1_000, 2_000),
    ("2K - 5K", 2_000, 5_000),
    ("5K - 10K", 5_000, 10_000),
    ("> 10K", 10_000, u64::MAX),
];

/// Names for the 92 clean plugins completing the 115, with deterministic
/// popularity metadata spread over the Fig. 4 buckets.
pub fn clean_plugins() -> Vec<PluginSpec> {
    const TAGS: [&str; 8] = [
        "arts", "food", "health", "shopping", "travel", "auth", "seo", "social",
    ];
    let mut out = Vec::new();
    for i in 0..92usize {
        let tag = TAGS[i % TAGS.len()];
        // spread downloads across buckets deterministically
        let downloads: u64 = match i % 7 {
            0 => 900 + (i as u64 * 13) % 1_000,
            1 => 2_400 + (i as u64 * 31) % 2_000,
            2 => 6_100 + (i as u64 * 57) % 3_000,
            3 => 14_000 + (i as u64 * 811) % 30_000,
            4 => 62_000 + (i as u64 * 391) % 30_000,
            5 => 150_000 + (i as u64 * 3_913) % 300_000,
            _ => 600_000 + (i as u64 * 9_131) % 2_000_000,
        };
        let active_installs = (downloads / 19).max(10);
        out.push(PluginSpec {
            name: Box::leak(format!("{tag}-plugin-{i:02}").into_boxed_str()),
            version: "1.0.0",
            real: ClassCounts::default(),
            fpp: 0,
            fp: 0,
            known_cves: 0,
            downloads,
            active_installs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn webapp_totals_match_table_vi() {
        let apps = vulnerable_webapps();
        assert_eq!(apps.len(), 17);
        let sum = |f: &dyn Fn(&AppSpec) -> usize| apps.iter().map(f).sum::<usize>();
        assert_eq!(sum(&|a| a.real.sqli), 72, "SQLI column");
        assert_eq!(sum(&|a| a.real.xss), 255, "XSS column");
        assert_eq!(sum(&|a| a.real.files), 55, "Files column");
        assert_eq!(sum(&|a| a.real.scd), 4, "SCD column");
        assert_eq!(sum(&|a| a.real.ldapi), 2, "LDAPI column");
        assert_eq!(sum(&|a| a.real.sf), 1, "SF column");
        assert_eq!(sum(&|a| a.real.hi), 19, "HI column");
        assert_eq!(sum(&|a| a.real.cs), 5, "CS column");
        assert_eq!(sum(&|a| a.real.total()), 413, "total vulnerabilities");
        // false positive accounting
        assert_eq!(sum(&|a| a.fp_both), 62, "WAP FPP total");
        assert_eq!(sum(&|a| a.fpp_wape()), 104, "WAPe FPP total");
        assert_eq!(sum(&|a| a.fp_wap()), 60, "WAP FP total");
        assert_eq!(sum(&|a| a.fp_hard), 18, "WAPe FP total");
        // the 42 new predictions
        assert_eq!(sum(&|a| a.fp_wape_only), 42);
    }

    #[test]
    fn webapp_sizes_match_table_v() {
        let apps = vulnerable_webapps();
        assert_eq!(apps.iter().map(|a| a.files).sum::<usize>(), 4714);
        assert_eq!(apps.iter().map(|a| a.loc).sum::<usize>(), 1_196_702);
        assert_eq!(apps.iter().map(|a| a.paper_time_s).sum::<u32>(), 123);
        assert_eq!(apps.iter().map(|a| a.vuln_files).sum::<usize>(), 280);
    }

    #[test]
    fn fifty_four_packages_two_million_loc() {
        let vuln = vulnerable_webapps();
        let clean = clean_webapps();
        assert_eq!(vuln.len() + clean.len(), 54);
        let files: usize = vuln.iter().map(|a| a.files).sum::<usize>()
            + clean.iter().map(|(_, f, _)| f).sum::<usize>();
        let loc: usize = vuln.iter().map(|a| a.loc).sum::<usize>()
            + clean.iter().map(|(_, _, l)| l).sum::<usize>();
        // the paper: 8,374 files and 2,065,914 LoC
        assert!((8_300..=8_450).contains(&files), "files = {files}");
        assert!((2_000_000..=2_130_000).contains(&loc), "loc = {loc}");
    }

    #[test]
    fn vfront_carries_the_escape_study() {
        let apps = vulnerable_webapps();
        let vfront = apps.iter().find(|a| a.name == "vfront").unwrap();
        assert_eq!(vfront.fp_escape, 6, "§V-A: six escape-guarded cases");
        assert_eq!(vfront.real.total(), 77);
        assert_eq!(vfront.fpp_wape(), 40);
    }

    #[test]
    fn plugin_totals_match_table_vii() {
        let ps = vulnerable_plugins();
        assert_eq!(ps.len(), 23);
        let sum = |f: &dyn Fn(&PluginSpec) -> usize| ps.iter().map(f).sum::<usize>();
        assert_eq!(sum(&|p| p.real.sqli), 55, "SQLI via wpsqli weapon");
        assert_eq!(sum(&|p| p.real.xss), 71, "XSS column");
        assert_eq!(sum(&|p| p.real.files), 31, "Files column");
        assert_eq!(sum(&|p| p.real.scd), 5, "SCD column");
        assert_eq!(sum(&|p| p.real.cs), 5, "CS column");
        assert_eq!(sum(&|p| p.real.hi), 2, "HI column");
        assert_eq!(sum(&|p| p.total()), 169, "total plugin vulnerabilities");
        assert_eq!(sum(&|p| p.fpp), 3, "FPP column");
        assert_eq!(sum(&|p| p.fp), 2, "FP column");
        // 16 known (CVE) + 153 zero-days = 169
        assert_eq!(sum(&|p| p.known_cves), 16);
    }

    #[test]
    fn one_hundred_fifteen_plugins() {
        assert_eq!(vulnerable_plugins().len() + clean_plugins().len(), 115);
    }

    #[test]
    fn sixteen_vulnerable_plugins_above_10k_downloads() {
        let n = vulnerable_plugins()
            .iter()
            .filter(|p| p.downloads > 10_000)
            .count();
        assert_eq!(n, 16, "§V-B: 16 of the 23 have more than 10K downloads");
    }

    #[test]
    fn twelve_vulnerable_plugins_on_2000_sites() {
        let n = vulnerable_plugins()
            .iter()
            .filter(|p| p.active_installs > 2_000)
            .count();
        assert_eq!(
            n, 12,
            "§V-B: 12 plugins are used in more than 2000 web sites"
        );
    }

    #[test]
    fn lightbox_is_the_most_installed() {
        let ps = vulnerable_plugins();
        let lightbox = ps.iter().find(|p| p.name.contains("Lightbox")).unwrap();
        assert!(lightbox.active_installs > 200_000);
        assert!(ps
            .iter()
            .all(|p| p.active_installs <= lightbox.active_installs));
    }

    #[test]
    fn class_counts_split_files_consistently() {
        let c = cc!(0, 0, 11, 0, 0, 0, 0, 0);
        let per = c.per_class();
        let total: usize = per.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 11);
        assert!(per.iter().any(|(cl, _)| *cl == VulnClass::Lfi));
        assert!(per.iter().any(|(cl, _)| *cl == VulnClass::Rfi));
    }

    #[test]
    fn bucket_definitions_cover_everything() {
        for v in [0u64, 1_999, 2_000, 9_999, 499_999, 10_000_000] {
            let hits = DOWNLOAD_BUCKETS
                .iter()
                .filter(|(_, lo, hi)| v >= *lo && v < *hi)
                .count();
            assert_eq!(hits, 1, "value {v} must land in exactly one bucket");
        }
    }
}
