//! # wap-corpus — synthetic evaluation corpus
//!
//! The paper evaluates WAPe on 54 real web application packages and 115
//! WordPress plugins (2 million LoC) that we cannot redistribute. This
//! crate substitutes a **deterministic generator**: every application of
//! Tables V–VII is reproduced as a PHP source tree with the same name,
//! file/LoC budget (scalable), and — crucially — the same seeded
//! vulnerability counts per class and the same false-positive structure
//! (guarded by original symptoms / by WAPe-only symptoms / by non-symptom
//! functions such as vfront's `escape`). Ground truth is recorded at
//! generation time, so the experiment harness can score detection and
//! prediction exactly the way the paper does.
//!
//! ## Quick start
//!
//! ```
//! use wap_corpus::{generate_webapp, specs};
//!
//! let spec = &specs::vulnerable_webapps()[0]; // Admin Control Panel Lite 2
//! let app = generate_webapp(spec, 0.05, 42);  // 5% of the paper's size
//! assert_eq!(app.name, "Admin Control Panel Lite 2");
//! assert!(app.files.iter().all(|f| f.source.starts_with("<?php")));
//! ```

#![warn(missing_docs)]

pub mod generate;
pub mod phpgen;
pub mod specs;

pub use generate::{
    generate_clean_webapp, generate_plugin, generate_plugins, generate_webapp, generate_webapps,
    FlowKind, GeneratedApp, GeneratedFile, SeededFlow,
};
pub use specs::{AppSpec, ClassCounts, PluginSpec};
