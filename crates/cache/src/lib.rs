//! # wap-cache — persistent incremental cache for the WAPe pipeline
//!
//! WAPe is meant to run repeatedly over evolving PHP codebases, yet the
//! pipeline recomputes lexing, parsing, function summaries, taint paths,
//! and attribute extraction from scratch each time. This crate provides
//! the storage half of the incremental story:
//!
//! - [`codec`] — a total (never-panicking) length-prefixed binary codec
//!   for the artifacts crossing the cache boundary;
//! - [`store`] — a content-addressed, versioned, checksummed store with
//!   an in-memory overlay, thread-safe hit/miss counters, and tiered
//!   lookups (memory → persistent backend → optional remote peer);
//! - [`backend`] — the pluggable storage layer: the [`CacheBackend`]
//!   trait, the default on-disk [`LocalDirBackend`], and the
//!   [`RemoteBackend`] HTTP client that lets `wap serve` replicas share
//!   one warm cache.
//!
//! What to cache and when a cached entry is still valid is decided by the
//! analysis crates (`wap-taint` records dependencies, `wap-core`
//! validates them); this crate only guarantees that bytes come back
//! exactly as written or not at all.
//!
//! ```
//! use wap_cache::CacheStore;
//!
//! let store = CacheStore::in_memory();
//! store.put("some-content-key", b"summary bytes".to_vec());
//! assert_eq!(&**store.get("some-content-key").unwrap(), b"summary bytes");
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod codec;
pub mod store;

pub use backend::{valid_key, CacheBackend, LocalDirBackend, Lookup, RemoteBackend};
pub use codec::{CodecError, Reader, Writer};
pub use store::{CacheStats, CacheStatsSnapshot, CacheStore, CacheTier, ENTRY_FORMAT_VERSION};
