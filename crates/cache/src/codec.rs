//! A tiny self-contained binary codec for cache entries.
//!
//! Artifacts crossing the cache boundary (function summaries, candidates,
//! findings) are serialized with a length-prefixed little-endian format:
//! fixed-width integers, `u64`-length-prefixed byte strings, and
//! `u64`-count-prefixed sequences. There is no schema negotiation — the
//! store versions whole entries, and a version bump invalidates everything.
//!
//! Decoding is **total**: every read returns a [`Result`] and truncated or
//! garbage input produces [`CodecError`], never a panic. The cache treats
//! any decode error as a corrupt entry to discard.
//!
//! ```
//! use wap_cache::codec::{Reader, Writer};
//!
//! let mut w = Writer::new();
//! w.str("hello");
//! w.u64(42);
//! w.bool(true);
//! let bytes = w.into_bytes();
//!
//! let mut r = Reader::new(&bytes);
//! assert_eq!(r.str().unwrap(), "hello");
//! assert_eq!(r.u64().unwrap(), 42);
//! assert!(r.bool().unwrap());
//! assert!(r.is_empty());
//! ```

use std::fmt;

/// Decoding failure: the input is truncated, malformed, or inconsistent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cache codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Decoding result.
pub type Result<T> = std::result::Result<T, CodecError>;

/// Appends values to a growing byte buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The serialized bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes an `f64` by bit pattern (exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes an `Option<&str>`: presence flag, then the string.
    pub fn opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.bool(true);
                self.str(s);
            }
            None => self.bool(false),
        }
    }

    /// Writes a sequence count (pair with `Reader::seq`).
    pub fn seq(&mut self, count: usize) {
        self.u64(count as u64);
    }
}

/// Hard ceiling on decoded sequence lengths and byte-string lengths: any
/// count beyond this is corrupt by definition (it would exceed the entry
/// size the store accepts), so the reader bails out instead of attempting
/// a huge allocation from attacker- or corruption-controlled lengths.
const MAX_LEN: u64 = 1 << 32;

/// Reads values back from a byte slice, tracking position.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| CodecError("length overflow".into()))?;
        if end > self.buf.len() {
            return Err(CodecError(format!(
                "truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` (written as `u64`).
    pub fn usize(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError(format!("usize out of range: {v}")))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is corrupt.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError(format!("invalid bool byte {b:#x}"))),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.u64()?;
        if len > MAX_LEN {
            return Err(CodecError(format!("implausible byte length {len}")));
        }
        self.take(len as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|e| CodecError(format!("invalid utf-8: {e}")))
    }

    /// Reads an `Option<String>` written by [`Writer::opt_str`].
    pub fn opt_str(&mut self) -> Result<Option<String>> {
        if self.bool()? {
            Ok(Some(self.str()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence count written by [`Writer::seq`]. The count is
    /// sanity-bounded both by `MAX_LEN` and by the bytes actually left
    /// (every element needs at least one byte), so corrupt counts fail
    /// fast instead of looping or allocating.
    pub fn seq(&mut self) -> Result<usize> {
        let n = self.u64()?;
        if n > MAX_LEN || n as usize > self.remaining().saturating_add(1) * 64 {
            return Err(CodecError(format!("implausible sequence length {n}")));
        }
        Ok(n as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX);
        w.usize(12345);
        w.f64(-0.5);
        w.f64(f64::NAN);
        w.bool(true);
        w.bool(false);
        w.bytes(b"\x00\x01\x02");
        w.str("héllo");
        w.opt_str(Some("x"));
        w.opt_str(None);
        w.seq(3);

        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), -0.5);
        assert!(r.f64().unwrap().is_nan());
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_str().unwrap().as_deref(), Some("x"));
        assert_eq!(r.opt_str().unwrap(), None);
        assert_eq!(r.seq().unwrap(), 3);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_input_errors_not_panics() {
        let mut w = Writer::new();
        w.str("some string payload");
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(r.str().is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn garbage_lengths_are_rejected() {
        // a u64 length prefix of u64::MAX must not trigger a huge allocation
        let mut w = Writer::new();
        w.u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).bytes().is_err());
        assert!(Reader::new(&bytes).seq().is_err());
    }

    #[test]
    fn invalid_bool_and_utf8_are_corrupt() {
        assert!(Reader::new(&[9]).bool().is_err());
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).str().is_err());
    }

    #[test]
    fn empty_reader_reports_empty() {
        let r = Reader::new(&[]);
        assert!(r.is_empty());
        assert_eq!(r.remaining(), 0);
    }
}
