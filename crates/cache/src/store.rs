//! Versioned, checksummed, content-addressed store with tiered,
//! pluggable backends.
//!
//! A store layers up to three tiers, probed in order:
//!
//! 1. **memory** — a process-wide overlay shared by every clone, so the
//!    second lookup of a key within one process never touches a backend;
//! 2. **persistent** — a [`CacheBackend`], by default the on-disk
//!    [`LocalDirBackend`] layout (`<dir>/v1/<fanout>/<key>`);
//! 3. **remote** — an optional peer backend (read-through with the
//!    persistent tier as L1; writes are replicated asynchronously by a
//!    background write-back thread so scans never wait on the network).
//!
//! Each entry is framed as:
//!
//! ```text
//! magic "WAPC" | format version u32 | payload blake2s-256 (32 bytes) | payload
//! ```
//!
//! [`CacheStore::get`] verifies the frame and checksum and returns `None`
//! for anything that does not check out — truncated files, garbage,
//! entries written by an older format — bumping the `corrupt_discarded`
//! counter (version mismatches count as `invalidations`). Remote bytes
//! pass through exactly the same verification, so a corrupt, truncated,
//! or malicious peer response degrades to the local/cold path; it can
//! never flip a finding. The store never panics and never returns
//! unverified bytes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wap_php::Blake2s;

use crate::backend::{CacheBackend, LocalDirBackend, Lookup};

/// Magic bytes identifying a cache entry file.
const MAGIC: &[u8; 4] = b"WAPC";

/// Bumped whenever the serialized shape of any cached artifact changes;
/// old entries are then discarded on read.
pub const ENTRY_FORMAT_VERSION: u32 = 1;

/// How long [`CacheStore::flush_remote`] waits for the write-back queue
/// before giving up (replication is best-effort, a flush must not hang).
const FLUSH_TIMEOUT: Duration = Duration::from_secs(10);

/// Counters describing cache behaviour over the lifetime of a store.
/// All counters are monotonic and thread-safe; the pipeline copies them
/// into the report at the end of a run.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    corrupt_discarded: AtomicU64,
    stored: AtomicU64,
    remote_hits: AtomicU64,
    remote_misses: AtomicU64,
    remote_errors: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`], suitable for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Entries served from memory or disk with a valid checksum.
    pub hits: u64,
    /// Keys that had no entry.
    pub misses: u64,
    /// Entries found but rejected because their recorded dependencies or
    /// format generation no longer hold.
    pub invalidations: u64,
    /// Entries discarded as truncated/garbage/unreadable.
    pub corrupt_discarded: u64,
    /// Entries written this run.
    pub stored: u64,
    /// Entries served by the remote tier (also counted in `hits`).
    pub remote_hits: u64,
    /// Keys the remote tier was asked for and definitively lacked.
    pub remote_misses: u64,
    /// Remote requests that failed: transport errors, timeouts, bad
    /// statuses, or peer payloads that failed frame verification.
    pub remote_errors: u64,
}

impl CacheStats {
    /// Records a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an invalidation (entry present but no longer applicable).
    pub fn invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a corrupt entry discard.
    pub fn corrupt(&self) {
        self.corrupt_discarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a store.
    pub fn store(&self) {
        self.stored.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a hit served by the remote tier.
    pub fn remote_hit(&self) {
        self.remote_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a remote lookup that found nothing.
    pub fn remote_miss(&self) {
        self.remote_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a failed remote request (transport or verification).
    pub fn remote_error(&self) {
        self.remote_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    #[must_use]
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            corrupt_discarded: self.corrupt_discarded.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.remote_misses.load(Ordering::Relaxed),
            remote_errors: self.remote_errors.load(Ordering::Relaxed),
        }
    }
}

impl CacheStatsSnapshot {
    /// The per-run delta between this snapshot and an `earlier` one taken
    /// from the same store. Stores are long-lived (one per tool), so a
    /// report wants the counters accumulated during *its* run only.
    #[must_use]
    pub fn since(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            corrupt_discarded: self
                .corrupt_discarded
                .saturating_sub(earlier.corrupt_discarded),
            stored: self.stored.saturating_sub(earlier.stored),
            remote_hits: self.remote_hits.saturating_sub(earlier.remote_hits),
            remote_misses: self.remote_misses.saturating_sub(earlier.remote_misses),
            remote_errors: self.remote_errors.saturating_sub(earlier.remote_errors),
        }
    }
}

/// Which tier served a [`CacheStore::probe`] hit. Callers that only
/// need the payload use [`CacheStore::get`]; the pipeline uses the tier
/// to label its observability events (`cache_hit` vs `remote_cache_hit`)
/// without knowing anything about the backends underneath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-process overlay.
    Memory,
    /// The persistent backend (local dir by default).
    Local,
    /// The remote peer backend.
    Remote,
}

/// The persistent cache: tiered backends plus an in-process overlay.
/// Cloning is cheap (`Arc` inside) and clones share the overlay and
/// counters, so one store can be handed to every worker.
#[derive(Debug, Clone)]
pub struct CacheStore {
    inner: Arc<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    /// Root directory when the persistent tier is a local dir (kept for
    /// [`CacheStore::dir`]); `None` for purely in-memory or custom
    /// backends.
    dir: Option<PathBuf>,
    /// The persistent tier; `None` for a purely in-memory store.
    persistent: Option<Box<dyn CacheBackend>>,
    /// The optional remote tier with its write-back machinery.
    remote: Option<RemoteTier>,
    mem: Mutex<HashMap<String, Arc<Vec<u8>>>>,
    stats: Arc<CacheStats>,
}

/// The remote tier: the peer backend plus the asynchronous write-back
/// queue. Reads go straight to the backend (the caller is already off
/// the hot path when it reaches the remote tier); writes are enqueued
/// and shipped by one background thread so `put` never blocks on the
/// network.
#[derive(Debug)]
struct RemoteTier {
    backend: Arc<dyn CacheBackend>,
    queue: mpsc::Sender<(String, Vec<u8>)>,
    /// (`in-flight count`, `drained signal`) for [`CacheStore::flush_remote`].
    pending: Arc<(Mutex<u64>, Condvar)>,
}

impl RemoteTier {
    fn spawn(backend: Arc<dyn CacheBackend>, stats: Arc<CacheStats>) -> RemoteTier {
        let (queue, rx) = mpsc::channel::<(String, Vec<u8>)>();
        let pending: Arc<(Mutex<u64>, Condvar)> = Arc::new((Mutex::new(0), Condvar::new()));
        let thread_backend = backend.clone();
        let thread_pending = pending.clone();
        // the thread owns the receiver and exits when the last sender
        // (held by the store) drops; if the spawn itself fails the
        // receiver is dropped with the closure and every enqueue backs
        // out through its send error
        drop(
            std::thread::Builder::new()
                .name("wap-cache-writeback".to_string())
                .spawn(move || {
                    while let Ok((key, framed)) = rx.recv() {
                        if thread_backend.store(&key, &framed).is_err() {
                            stats.remote_error();
                        }
                        let (count, drained) = &*thread_pending;
                        *count.lock().unwrap() -= 1;
                        drained.notify_all();
                    }
                }),
        );
        RemoteTier {
            backend,
            queue,
            pending,
        }
    }

    fn enqueue(&self, key: String, framed: Vec<u8>) {
        let (count, _) = &*self.pending;
        *count.lock().unwrap() += 1;
        if self.queue.send((key, framed)).is_err() {
            // write-back thread is gone; undo the accounting
            *count.lock().unwrap() -= 1;
        }
    }

    fn flush(&self) {
        let (count, drained) = &*self.pending;
        let deadline = Instant::now() + FLUSH_TIMEOUT;
        let mut in_flight = count.lock().unwrap();
        while *in_flight > 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return;
            }
            let (guard, _) = drained.wait_timeout(in_flight, left).unwrap();
            in_flight = guard;
        }
    }
}

impl CacheStore {
    /// Opens (and lazily creates) a store rooted at `dir`, backed by the
    /// default [`LocalDirBackend`].
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        CacheStore {
            inner: Arc::new(StoreInner {
                persistent: Some(Box::new(LocalDirBackend::new(&dir))),
                dir: Some(dir),
                remote: None,
                mem: Mutex::new(HashMap::new()),
                stats: Arc::new(CacheStats::default()),
            }),
        }
    }

    /// A store with no persistent backing: entries live only for this
    /// process.
    pub fn in_memory() -> Self {
        CacheStore {
            inner: Arc::new(StoreInner {
                dir: None,
                persistent: None,
                remote: None,
                mem: Mutex::new(HashMap::new()),
                stats: Arc::new(CacheStats::default()),
            }),
        }
    }

    /// A store over an arbitrary persistent backend (for tests and
    /// embedders plugging their own storage).
    pub fn with_backend(backend: Box<dyn CacheBackend>) -> Self {
        CacheStore {
            inner: Arc::new(StoreInner {
                dir: None,
                persistent: Some(backend),
                remote: None,
                mem: Mutex::new(HashMap::new()),
                stats: Arc::new(CacheStats::default()),
            }),
        }
    }

    /// Adds a remote tier: reads fall through memory and the persistent
    /// tier to `backend` (verified hits populate both), writes replicate
    /// asynchronously. Must be called before the store is cloned/shared.
    ///
    /// # Panics
    ///
    /// Panics if the store has already been cloned.
    #[must_use]
    pub fn with_remote(mut self, backend: Arc<dyn CacheBackend>) -> Self {
        let inner =
            Arc::get_mut(&mut self.inner).expect("with_remote must run before the store is shared");
        inner.remote = Some(RemoteTier::spawn(backend, inner.stats.clone()));
        self
    }

    /// The shared counters.
    pub fn stats(&self) -> &CacheStats {
        &self.inner.stats
    }

    /// The on-disk root, if this store persists to a local dir.
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    /// Whether a remote tier is configured.
    #[must_use]
    pub fn has_remote(&self) -> bool {
        self.inner.remote.is_some()
    }

    #[cfg(test)]
    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        self.inner
            .dir
            .as_ref()
            .map(|d| LocalDirBackend::new(d).entry_path(key))
    }

    /// Looks up `key`, returning the verified payload or `None`.
    ///
    /// Misses, corrupt entries, and format-version mismatches all return
    /// `None` and bump the corresponding counter; the caller re-analyzes
    /// and overwrites.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        self.probe(key).map(|(payload, _)| payload)
    }

    /// Like [`CacheStore::get`], but also reports which tier served the
    /// hit, so callers can distinguish local warmth from peer warmth
    /// without knowing what backends exist.
    pub fn probe(&self, key: &str) -> Option<(Arc<Vec<u8>>, CacheTier)> {
        if let Some(hit) = self.inner.mem.lock().unwrap().get(key).cloned() {
            self.inner.stats.hit();
            return Some((hit, CacheTier::Memory));
        }
        let has_remote = self.inner.remote.is_some();
        if let Some(persistent) = &self.inner.persistent {
            match persistent.load(key) {
                Lookup::Found(raw) => match verify_frame(&raw) {
                    FrameCheck::Ok(payload) => {
                        let payload = Arc::new(payload.to_vec());
                        self.inner
                            .mem
                            .lock()
                            .unwrap()
                            .insert(key.to_string(), payload.clone());
                        self.inner.stats.hit();
                        return Some((payload, CacheTier::Local));
                    }
                    FrameCheck::WrongVersion => {
                        self.inner.stats.invalidation();
                        persistent.remove(key);
                        if !has_remote {
                            return None;
                        }
                    }
                    FrameCheck::Corrupt => {
                        self.inner.stats.corrupt();
                        persistent.remove(key);
                        if !has_remote {
                            return None;
                        }
                    }
                },
                // a read error is indistinguishable from absence for our
                // purposes: fall through (to the remote tier, if any)
                Lookup::Absent | Lookup::Error(_) => {}
            }
        }
        if let Some(remote) = &self.inner.remote {
            match remote.backend.load(key) {
                Lookup::Found(raw) => match verify_frame(&raw) {
                    FrameCheck::Ok(payload) => {
                        let payload = Arc::new(payload.to_vec());
                        self.inner
                            .mem
                            .lock()
                            .unwrap()
                            .insert(key.to_string(), payload.clone());
                        // write-through: the persistent tier becomes an
                        // L1 for this key, the next cold process finds it
                        // without going back to the peer
                        if let Some(persistent) = &self.inner.persistent {
                            let _ = persistent.store(key, &raw);
                        }
                        self.inner.stats.remote_hit();
                        self.inner.stats.hit();
                        return Some((payload, CacheTier::Remote));
                    }
                    // a peer payload that fails verification is unusable
                    // regardless of why (bit rot, truncation, foreign
                    // format generation): count it and degrade
                    FrameCheck::WrongVersion | FrameCheck::Corrupt => {
                        self.inner.stats.remote_error();
                    }
                },
                Lookup::Absent => self.inner.stats.remote_miss(),
                Lookup::Error(_) => self.inner.stats.remote_error(),
            }
        }
        self.inner.stats.miss();
        None
    }

    /// Stores `payload` under `key`: always in memory, synchronously in
    /// the persistent tier, and asynchronously replicated to the remote
    /// tier. Backend failures are swallowed (counted for the remote
    /// tier) — the cache is an optimization, never a correctness
    /// dependency — but the in-memory layer always records the entry.
    pub fn put(&self, key: &str, payload: Vec<u8>) {
        let payload = Arc::new(payload);
        self.inner
            .mem
            .lock()
            .unwrap()
            .insert(key.to_string(), payload.clone());
        self.inner.stats.store();
        if self.inner.persistent.is_none() && self.inner.remote.is_none() {
            return;
        }
        let framed = frame(&payload);
        if let Some(remote) = &self.inner.remote {
            remote.enqueue(key.to_string(), framed.clone());
        }
        if let Some(persistent) = &self.inner.persistent {
            let _ = persistent.store(key, &framed);
        }
    }

    /// The framed bytes for `key`, served from the local tiers only —
    /// this is what `wap serve` answers `GET /v1/cache/{key}` with. The
    /// remote tier is deliberately not consulted (a peer asking us must
    /// never cause us to ask a peer: no proxy chains, no cycles) and the
    /// hit/miss counters are untouched (peer traffic is not this
    /// process's scan behaviour).
    #[must_use]
    pub fn get_framed(&self, key: &str) -> Option<Vec<u8>> {
        if let Some(payload) = self.inner.mem.lock().unwrap().get(key) {
            return Some(frame(payload));
        }
        if let Some(persistent) = &self.inner.persistent {
            if let Lookup::Found(raw) = persistent.load(key) {
                if matches!(verify_frame(&raw), FrameCheck::Ok(_)) {
                    return Some(raw);
                }
            }
        }
        None
    }

    /// Accepts framed bytes pushed by a peer (`PUT /v1/cache/{key}`).
    /// The frame is verified before anything is stored; `false` means
    /// the bytes were rejected. Accepted entries land in memory and the
    /// persistent tier but are *not* re-replicated to the remote tier
    /// (the pusher owns its own replication — no write loops).
    pub fn put_framed(&self, key: &str, framed: &[u8]) -> bool {
        let FrameCheck::Ok(payload) = verify_frame(framed) else {
            return false;
        };
        let payload = Arc::new(payload.to_vec());
        self.inner
            .mem
            .lock()
            .unwrap()
            .insert(key.to_string(), payload);
        self.inner.stats.store();
        if let Some(persistent) = &self.inner.persistent {
            let _ = persistent.store(key, framed);
        }
        true
    }

    /// Discards `key` as corrupt after the fact.
    ///
    /// The frame checksum only proves the bytes survived disk; a payload
    /// can still fail artifact-level decoding (e.g. written by a buggy or
    /// foreign producer). Callers that hit such a payload report it here so
    /// the entry is removed from memory and the persistent tier and counted
    /// as corrupt, then recompute as if it were a miss. The remote tier is
    /// left alone — the peer guards its own entries, and the recompute's
    /// write-back overwrites the bad entry anyway.
    pub fn reject(&self, key: &str) {
        self.inner.mem.lock().unwrap().remove(key);
        if let Some(persistent) = &self.inner.persistent {
            persistent.remove(key);
        }
        self.inner.stats.corrupt();
    }

    /// Blocks until the asynchronous write-back queue has drained (or a
    /// bounded timeout passes). Benchmarks and tests call this before
    /// measuring a peer's warmth; servers never need to.
    pub fn flush_remote(&self) {
        if let Some(remote) = &self.inner.remote {
            remote.flush();
        }
    }

    /// Drops the in-memory overlay (used by tests to force disk reads).
    pub fn clear_memory(&self) {
        self.inner.mem.lock().unwrap().clear();
    }
}

/// Wraps `payload` in the `magic | version | checksum | payload` frame.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 32 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&ENTRY_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&Blake2s::hash(payload));
    out.extend_from_slice(payload);
    out
}

enum FrameCheck<'a> {
    Ok(&'a [u8]),
    WrongVersion,
    Corrupt,
}

fn verify_frame(raw: &[u8]) -> FrameCheck<'_> {
    if raw.len() < 4 + 4 + 32 || &raw[..4] != MAGIC {
        return FrameCheck::Corrupt;
    }
    let version = u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]);
    if version != ENTRY_FORMAT_VERSION {
        return FrameCheck::WrongVersion;
    }
    let (checksum, payload) = raw[8..].split_at(32);
    if Blake2s::hash(payload) != checksum {
        return FrameCheck::Corrupt;
    }
    FrameCheck::Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wap-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn concurrent_clones_share_one_store() {
        // the resident service clones one store into every executor; puts
        // and gets racing on the same keys must stay consistent and every
        // clone must observe the shared memory layer
        let dir = temp_dir("concurrent");
        let store = CacheStore::open(&dir);
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let key = format!("{:060}{t}{i:03}", 0);
                        let payload = format!("payload-{t}-{i}").into_bytes();
                        store.put(&key, payload.clone());
                        let got = store.get(&key).expect("own write visible");
                        assert_eq!(*got, payload);
                        // read a key another thread may be writing: either
                        // absent or fully intact, never torn
                        let other = format!("{:060}{}{i:03}", 0, (t + 1) % 4);
                        if let Some(v) = store.get(&other) {
                            assert!(v.starts_with(b"payload-"));
                        }
                    }
                });
            }
        });
        let snap = store.stats().snapshot();
        assert_eq!(snap.stored, 200, "every put from every clone counted");
        assert_eq!(snap.corrupt_discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trip_through_disk() {
        let dir = temp_dir("roundtrip");
        let store = CacheStore::open(&dir);
        store.put("a".repeat(64).as_str(), b"payload".to_vec());
        store.clear_memory();
        let got = store.get("a".repeat(64).as_str()).expect("disk hit");
        assert_eq!(&**got, b"payload");
        let s = store.stats().snapshot();
        assert_eq!((s.hits, s.stored), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_layer_serves_repeat_lookups() {
        let store = CacheStore::in_memory();
        assert!(store.get("k").is_none());
        store.put("k", vec![1, 2, 3]);
        assert_eq!(&**store.get("k").unwrap(), &[1, 2, 3]);
        let s = store.stats().snapshot();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn truncated_entry_discarded_without_panic() {
        let dir = temp_dir("truncated");
        let store = CacheStore::open(&dir);
        let key = "b".repeat(64);
        store.put(&key, b"some payload worth caching".to_vec());
        let path = store.entry_path(&key).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 3, 7, 20, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            store.clear_memory();
            assert!(store.get(&key).is_none(), "cut at {cut}");
            assert!(!path.exists(), "corrupt entry should be removed");
            // restore for the next cut
            std::fs::write(&path, &full).unwrap();
        }
        assert!(store.stats().snapshot().corrupt_discarded >= 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_entry_discarded() {
        let dir = temp_dir("garbage");
        let store = CacheStore::open(&dir);
        let key = "c".repeat(64);
        store.put(&key, b"x".to_vec());
        let path = store.entry_path(&key).unwrap();
        std::fs::write(&path, b"totally not a cache entry at all").unwrap();
        store.clear_memory();
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().snapshot().corrupt_discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let dir = temp_dir("bitflip");
        let store = CacheStore::open(&dir);
        let key = "d".repeat(64);
        store.put(&key, b"sensitive cached findings".to_vec());
        let path = store.entry_path(&key).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        store.clear_memory();
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().snapshot().corrupt_discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn elder_version_entry_invalidated() {
        let dir = temp_dir("version");
        let store = CacheStore::open(&dir);
        let key = "e".repeat(64);
        store.put(&key, b"old world".to_vec());
        let path = store.entry_path(&key).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // rewrite the version field to an older generation, fix up checksum
        raw[4..8].copy_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        store.clear_memory();
        assert!(store.get(&key).is_none());
        let s = store.stats().snapshot();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.corrupt_discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reject_removes_entry_and_counts_corrupt() {
        let dir = temp_dir("reject");
        let store = CacheStore::open(&dir);
        let key = "f".repeat(64);
        store.put(&key, b"decodes at the frame level, not above".to_vec());
        let before = store.stats().snapshot();
        store.reject(&key);
        assert!(store.get(&key).is_none(), "rejected entry must be gone");
        let delta = store.stats().snapshot().since(&before);
        assert_eq!(delta.corrupt_discarded, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clones_share_memory_and_stats() {
        let a = CacheStore::in_memory();
        let b = a.clone();
        a.put("k", vec![9]);
        assert_eq!(&**b.get("k").unwrap(), &[9]);
        assert_eq!(b.stats().snapshot().hits, 1);
        assert_eq!(a.stats().snapshot().hits, 1);
    }

    // ---- remote tier ----

    /// An in-process stand-in for a peer: a mutable entry map plus a
    /// switchable failure mode, so the store's tiering logic is tested
    /// without sockets (the wire client has its own tests in `backend`).
    #[derive(Debug, Default)]
    struct StubPeer {
        entries: Mutex<HashMap<String, Vec<u8>>>,
        fail: Mutex<bool>,
    }

    impl CacheBackend for StubPeer {
        fn load(&self, key: &str) -> Lookup {
            if *self.fail.lock().unwrap() {
                return Lookup::Error("stub peer down".to_string());
            }
            match self.entries.lock().unwrap().get(key) {
                Some(raw) => Lookup::Found(raw.clone()),
                None => Lookup::Absent,
            }
        }
        fn store(&self, key: &str, framed: &[u8]) -> Result<(), String> {
            if *self.fail.lock().unwrap() {
                return Err("stub peer down".to_string());
            }
            self.entries
                .lock()
                .unwrap()
                .insert(key.to_string(), framed.to_vec());
            Ok(())
        }
        fn remove(&self, _key: &str) {}
        fn describe(&self) -> String {
            "stub peer".to_string()
        }
    }

    #[test]
    fn remote_hit_populates_memory_and_local_l1() {
        let peer = Arc::new(StubPeer::default());
        peer.store("k1", &frame(b"peer payload")).unwrap();
        let dir = temp_dir("remote-hit");
        let store = CacheStore::open(&dir).with_remote(peer);
        let (payload, tier) = store.probe("k1").expect("served by the peer");
        assert_eq!(&**payload, b"peer payload");
        assert_eq!(tier, CacheTier::Remote);
        // second probe: memory
        assert_eq!(store.probe("k1").unwrap().1, CacheTier::Memory);
        // after dropping memory: the L1 write-through serves it locally
        store.clear_memory();
        assert_eq!(store.probe("k1").unwrap().1, CacheTier::Local);
        let s = store.stats().snapshot();
        assert_eq!((s.hits, s.remote_hits, s.remote_errors), (3, 1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_remote_payload_degrades_to_miss() {
        let peer = Arc::new(StubPeer::default());
        // a frame with a flipped payload bit and a plain-garbage entry
        let mut bad = frame(b"tampered");
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        peer.store("bad", &bad).unwrap();
        peer.store("junk", b"not framed at all").unwrap();
        // and an entry from a foreign format generation
        let mut old = frame(b"elder");
        old[4..8].copy_from_slice(&99u32.to_le_bytes());
        peer.store("old", &old).unwrap();
        let store = CacheStore::in_memory().with_remote(peer);
        for key in ["bad", "junk", "old"] {
            assert!(store.get(key).is_none(), "{key} must degrade to a miss");
        }
        let s = store.stats().snapshot();
        assert_eq!(s.remote_errors, 3, "every unusable peer payload counted");
        assert_eq!(s.misses, 3);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn unreachable_remote_degrades_to_miss() {
        let peer = Arc::new(StubPeer::default());
        *peer.fail.lock().unwrap() = true;
        let store = CacheStore::in_memory().with_remote(peer.clone());
        assert!(store.get("k").is_none());
        let s = store.stats().snapshot();
        assert_eq!((s.remote_errors, s.misses), (1, 1));
        // local writes still work while the peer is down; write-back
        // failures are counted, not propagated
        store.put("k", b"local survives".to_vec());
        store.flush_remote();
        assert_eq!(&**store.get("k").unwrap(), b"local survives");
        assert!(store.stats().snapshot().remote_errors >= 2);
    }

    #[test]
    fn write_back_replicates_framed_entries() {
        let peer = Arc::new(StubPeer::default());
        let store = CacheStore::in_memory().with_remote(peer.clone());
        store.put("k2", b"replicated".to_vec());
        store.flush_remote();
        let raw = peer.entries.lock().unwrap().get("k2").unwrap().clone();
        match verify_frame(&raw) {
            FrameCheck::Ok(payload) => assert_eq!(payload, b"replicated"),
            _ => panic!("peer must receive a valid frame"),
        }
    }

    #[test]
    fn framed_access_serves_and_verifies() {
        let dir = temp_dir("framed");
        let store = CacheStore::open(&dir);
        assert!(store.get_framed("missing").is_none());
        store.put("k3", b"served to peers".to_vec());
        let raw = store.get_framed("k3").expect("framed from memory");
        assert!(matches!(
            verify_frame(&raw),
            FrameCheck::Ok(b"served to peers")
        ));
        store.clear_memory();
        let raw = store.get_framed("k3").expect("framed from disk");
        // a fresh store accepts the frame wholesale...
        let other = CacheStore::in_memory();
        assert!(other.put_framed("k3", &raw));
        assert_eq!(&**other.get("k3").unwrap(), b"served to peers");
        // ...but never unverified bytes
        let mut tampered = raw.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        assert!(!other.put_framed("k3-bad", &tampered));
        assert!(!other.put_framed("k3-junk", b"garbage"));
        assert!(other.get("k3-bad").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
