//! Versioned, checksummed, content-addressed on-disk store with an
//! in-memory overlay.
//!
//! Layout on disk:
//!
//! ```text
//! <cache-dir>/
//!   v1/                 # bumped when ENTRY_FORMAT_VERSION changes
//!     3f/               # first two hex chars of the key (fan-out)
//!       3fa9...e1       # one entry file per key
//! ```
//!
//! Each entry file is framed as:
//!
//! ```text
//! magic "WAPC" | format version u32 | payload blake2s-256 (32 bytes) | payload
//! ```
//!
//! [`CacheStore::get`] verifies the frame and checksum and returns `None`
//! for anything that does not check out — truncated files, garbage,
//! entries written by an older format — bumping the `corrupt_discarded`
//! counter (version mismatches count as `invalidations`). It never panics
//! and never returns unverified bytes.
//!
//! Writes go through a temp file + atomic rename so a crashed or
//! concurrent run can at worst leave a stale temp file, never a torn
//! entry. The in-memory overlay means the second lookup of the same key
//! within one process (e.g. a corpus with duplicated include files) is
//! served without touching disk.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use wap_php::Blake2s;

/// Magic bytes identifying a cache entry file.
const MAGIC: &[u8; 4] = b"WAPC";

/// Bumped whenever the serialized shape of any cached artifact changes;
/// old entries are then discarded on read.
pub const ENTRY_FORMAT_VERSION: u32 = 1;

/// Directory name under the cache root for the current format generation.
const GENERATION_DIR: &str = "v1";

/// Counters describing cache behaviour over the lifetime of a store.
/// All counters are monotonic and thread-safe; the pipeline copies them
/// into the report at the end of a run.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    corrupt_discarded: AtomicU64,
    stored: AtomicU64,
}

/// A point-in-time copy of [`CacheStats`], suitable for reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Entries served from memory or disk with a valid checksum.
    pub hits: u64,
    /// Keys that had no entry.
    pub misses: u64,
    /// Entries found but rejected because their recorded dependencies or
    /// format generation no longer hold.
    pub invalidations: u64,
    /// Entries discarded as truncated/garbage/unreadable.
    pub corrupt_discarded: u64,
    /// Entries written this run.
    pub stored: u64,
}

impl CacheStats {
    /// Records a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an invalidation (entry present but no longer applicable).
    pub fn invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a corrupt entry discard.
    pub fn corrupt(&self) {
        self.corrupt_discarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a store.
    pub fn store(&self) {
        self.stored.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    #[must_use]
    pub fn snapshot(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            corrupt_discarded: self.corrupt_discarded.load(Ordering::Relaxed),
            stored: self.stored.load(Ordering::Relaxed),
        }
    }
}

/// The persistent cache: disk entries under a versioned directory plus an
/// in-process overlay. Cloning is cheap (`Arc` inside) and clones share
/// the overlay and counters, so one store can be handed to every worker.
#[derive(Debug, Clone)]
pub struct CacheStore {
    inner: Arc<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    /// Root directory; `None` for a purely in-memory store.
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<String, Arc<Vec<u8>>>>,
    stats: CacheStats,
}

impl CacheStatsSnapshot {
    /// The per-run delta between this snapshot and an `earlier` one taken
    /// from the same store. Stores are long-lived (one per tool), so a
    /// report wants the counters accumulated during *its* run only.
    #[must_use]
    pub fn since(&self, earlier: &CacheStatsSnapshot) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            corrupt_discarded: self
                .corrupt_discarded
                .saturating_sub(earlier.corrupt_discarded),
            stored: self.stored.saturating_sub(earlier.stored),
        }
    }
}

impl CacheStore {
    /// Opens (and lazily creates) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        CacheStore {
            inner: Arc::new(StoreInner {
                dir: Some(dir.into()),
                mem: Mutex::new(HashMap::new()),
                stats: CacheStats::default(),
            }),
        }
    }

    /// A store with no disk backing: entries live only for this process.
    pub fn in_memory() -> Self {
        CacheStore {
            inner: Arc::new(StoreInner {
                dir: None,
                mem: Mutex::new(HashMap::new()),
                stats: CacheStats::default(),
            }),
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &CacheStats {
        &self.inner.stats
    }

    /// The on-disk root, if this store is persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.inner.dir.as_deref()
    }

    fn entry_path(&self, key: &str) -> Option<PathBuf> {
        let dir = self.inner.dir.as_ref()?;
        // keys are 64-char hex digests; anything shorter still fans out safely
        let (fan, _) = key.split_at(key.len().min(2));
        Some(dir.join(GENERATION_DIR).join(fan).join(key))
    }

    /// Looks up `key`, returning the verified payload or `None`.
    ///
    /// Misses, corrupt entries, and format-version mismatches all return
    /// `None` and bump the corresponding counter; the caller re-analyzes
    /// and overwrites.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<u8>>> {
        if let Some(hit) = self.inner.mem.lock().unwrap().get(key).cloned() {
            self.inner.stats.hit();
            return Some(hit);
        }
        let Some(path) = self.entry_path(key) else {
            self.inner.stats.miss();
            return None;
        };
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(_) => {
                self.inner.stats.miss();
                return None;
            }
        };
        match verify_frame(&raw) {
            FrameCheck::Ok(payload) => {
                let payload = Arc::new(payload.to_vec());
                self.inner
                    .mem
                    .lock()
                    .unwrap()
                    .insert(key.to_string(), payload.clone());
                self.inner.stats.hit();
                Some(payload)
            }
            FrameCheck::WrongVersion => {
                self.inner.stats.invalidation();
                let _ = std::fs::remove_file(&path);
                None
            }
            FrameCheck::Corrupt => {
                self.inner.stats.corrupt();
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores `payload` under `key`, in memory and (when persistent) on
    /// disk via temp file + rename. Disk failures are swallowed — the
    /// cache is an optimization, never a correctness dependency — but the
    /// in-memory layer always records the entry.
    pub fn put(&self, key: &str, payload: Vec<u8>) {
        let payload = Arc::new(payload);
        self.inner
            .mem
            .lock()
            .unwrap()
            .insert(key.to_string(), payload.clone());
        self.inner.stats.store();
        let Some(path) = self.entry_path(key) else {
            return;
        };
        let Some(parent) = path.parent() else { return };
        if std::fs::create_dir_all(parent).is_err() {
            return;
        }
        let framed = frame(&payload);
        // unique temp name per thread so concurrent writers never collide;
        // rename is atomic within one filesystem
        let tmp = parent.join(format!(
            ".tmp-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        if std::fs::write(&tmp, &framed).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
        let _ = std::fs::remove_file(&tmp);
    }

    /// Discards `key` as corrupt after the fact.
    ///
    /// The frame checksum only proves the bytes survived disk; a payload
    /// can still fail artifact-level decoding (e.g. written by a buggy or
    /// foreign producer). Callers that hit such a payload report it here so
    /// the entry is removed from memory and disk and counted as corrupt,
    /// then recompute as if it were a miss.
    pub fn reject(&self, key: &str) {
        self.inner.mem.lock().unwrap().remove(key);
        if let Some(path) = self.entry_path(key) {
            let _ = std::fs::remove_file(&path);
        }
        self.inner.stats.corrupt();
    }

    /// Drops the in-memory overlay (used by tests to force disk reads).
    pub fn clear_memory(&self) {
        self.inner.mem.lock().unwrap().clear();
    }
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 4 + 32 + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&ENTRY_FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&Blake2s::hash(payload));
    out.extend_from_slice(payload);
    out
}

enum FrameCheck<'a> {
    Ok(&'a [u8]),
    WrongVersion,
    Corrupt,
}

fn verify_frame(raw: &[u8]) -> FrameCheck<'_> {
    if raw.len() < 4 + 4 + 32 || &raw[..4] != MAGIC {
        return FrameCheck::Corrupt;
    }
    let version = u32::from_le_bytes([raw[4], raw[5], raw[6], raw[7]]);
    if version != ENTRY_FORMAT_VERSION {
        return FrameCheck::WrongVersion;
    }
    let (checksum, payload) = raw[8..].split_at(32);
    if Blake2s::hash(payload) != checksum {
        return FrameCheck::Corrupt;
    }
    FrameCheck::Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wap-cache-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn concurrent_clones_share_one_store() {
        // the resident service clones one store into every executor; puts
        // and gets racing on the same keys must stay consistent and every
        // clone must observe the shared memory layer
        let dir = temp_dir("concurrent");
        let store = CacheStore::open(&dir);
        std::thread::scope(|s| {
            for t in 0..4 {
                let store = store.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let key = format!("{:060}{t}{i:03}", 0);
                        let payload = format!("payload-{t}-{i}").into_bytes();
                        store.put(&key, payload.clone());
                        let got = store.get(&key).expect("own write visible");
                        assert_eq!(*got, payload);
                        // read a key another thread may be writing: either
                        // absent or fully intact, never torn
                        let other = format!("{:060}{}{i:03}", 0, (t + 1) % 4);
                        if let Some(v) = store.get(&other) {
                            assert!(v.starts_with(b"payload-"));
                        }
                    }
                });
            }
        });
        let snap = store.stats().snapshot();
        assert_eq!(snap.stored, 200, "every put from every clone counted");
        assert_eq!(snap.corrupt_discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_trip_through_disk() {
        let dir = temp_dir("roundtrip");
        let store = CacheStore::open(&dir);
        store.put("a".repeat(64).as_str(), b"payload".to_vec());
        store.clear_memory();
        let got = store.get("a".repeat(64).as_str()).expect("disk hit");
        assert_eq!(&**got, b"payload");
        let s = store.stats().snapshot();
        assert_eq!((s.hits, s.stored), (1, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_layer_serves_repeat_lookups() {
        let store = CacheStore::in_memory();
        assert!(store.get("k").is_none());
        store.put("k", vec![1, 2, 3]);
        assert_eq!(&**store.get("k").unwrap(), &[1, 2, 3]);
        let s = store.stats().snapshot();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn truncated_entry_discarded_without_panic() {
        let dir = temp_dir("truncated");
        let store = CacheStore::open(&dir);
        let key = "b".repeat(64);
        store.put(&key, b"some payload worth caching".to_vec());
        let path = store.entry_path(&key).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 3, 7, 20, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            store.clear_memory();
            assert!(store.get(&key).is_none(), "cut at {cut}");
            assert!(!path.exists(), "corrupt entry should be removed");
            // restore for the next cut
            std::fs::write(&path, &full).unwrap();
        }
        assert!(store.stats().snapshot().corrupt_discarded >= 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_entry_discarded() {
        let dir = temp_dir("garbage");
        let store = CacheStore::open(&dir);
        let key = "c".repeat(64);
        store.put(&key, b"x".to_vec());
        let path = store.entry_path(&key).unwrap();
        std::fs::write(&path, b"totally not a cache entry at all").unwrap();
        store.clear_memory();
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().snapshot().corrupt_discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_bit_fails_checksum() {
        let dir = temp_dir("bitflip");
        let store = CacheStore::open(&dir);
        let key = "d".repeat(64);
        store.put(&key, b"sensitive cached findings".to_vec());
        let path = store.entry_path(&key).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        store.clear_memory();
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().snapshot().corrupt_discarded, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn elder_version_entry_invalidated() {
        let dir = temp_dir("version");
        let store = CacheStore::open(&dir);
        let key = "e".repeat(64);
        store.put(&key, b"old world".to_vec());
        let path = store.entry_path(&key).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        // rewrite the version field to an older generation, fix up checksum
        raw[4..8].copy_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &raw).unwrap();
        store.clear_memory();
        assert!(store.get(&key).is_none());
        let s = store.stats().snapshot();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.corrupt_discarded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reject_removes_entry_and_counts_corrupt() {
        let dir = temp_dir("reject");
        let store = CacheStore::open(&dir);
        let key = "f".repeat(64);
        store.put(&key, b"decodes at the frame level, not above".to_vec());
        let before = store.stats().snapshot();
        store.reject(&key);
        assert!(store.get(&key).is_none(), "rejected entry must be gone");
        let delta = store.stats().snapshot().since(&before);
        assert_eq!(delta.corrupt_discarded, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.hits, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clones_share_memory_and_stats() {
        let a = CacheStore::in_memory();
        let b = a.clone();
        a.put("k", vec![9]);
        assert_eq!(&**b.get("k").unwrap(), &[9]);
        assert_eq!(b.stats().snapshot().hits, 1);
        assert_eq!(a.stats().snapshot().hits, 1);
    }
}
