//! Pluggable storage backends behind [`crate::CacheStore`].
//!
//! The store's tiering, framing, checksum verification, and statistics
//! live in [`crate::store`]; a backend only moves opaque *framed* bytes
//! (magic + version + checksum + payload) in and out of some medium.
//! Because verification happens above the backend, a backend can be
//! arbitrarily untrustworthy — a flaky disk, a peer on the network —
//! and the worst it can do is cost a recompute, never correctness.
//!
//! Two backends ship:
//!
//! - [`LocalDirBackend`] — the original on-disk layout
//!   (`<root>/v1/<fanout>/<key>`, temp-file + atomic rename writes);
//! - [`RemoteBackend`] — a deliberately small HTTP/1.1 client speaking
//!   the content-addressed `GET/PUT/HEAD /v1/cache/{key}` protocol that
//!   `wap serve` itself exposes, so replicas can peer without any new
//!   infrastructure. Requests carry a connect timeout, an I/O timeout,
//!   and one retry; every failure surfaces as [`Lookup::Error`] and the
//!   store degrades to the local/cold path.

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Directory name under a local cache root for the current format
/// generation (bumped with [`crate::ENTRY_FORMAT_VERSION`]).
pub(crate) const GENERATION_DIR: &str = "v1";

/// The outcome of asking a backend for a key.
#[derive(Debug)]
pub enum Lookup {
    /// The backend holds framed bytes for this key (still unverified —
    /// the store checks magic/version/checksum above this layer).
    Found(Vec<u8>),
    /// The backend definitively has no entry for this key.
    Absent,
    /// The backend could not answer (I/O error, timeout, protocol
    /// violation). Distinct from [`Lookup::Absent`] so the store can
    /// count remote errors separately from remote misses.
    Error(String),
}

/// One storage medium for framed cache entries.
///
/// Implementations must be cheap to share across threads; the store
/// calls them concurrently from every analysis worker. All methods are
/// infallible from the caller's point of view: `load` reports trouble
/// through [`Lookup::Error`], `store` through its `Err` (which the
/// store counts but never propagates — the cache is an optimization).
pub trait CacheBackend: Send + Sync + fmt::Debug {
    /// Fetches the framed bytes stored under `key`, if any.
    fn load(&self, key: &str) -> Lookup;
    /// Stores framed bytes under `key`, overwriting any prior entry.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the entry could not be
    /// persisted; the store counts it and moves on.
    fn store(&self, key: &str, framed: &[u8]) -> Result<(), String>;
    /// Removes the entry under `key` (best effort; absent is fine).
    fn remove(&self, key: &str);
    /// A short human-readable description for logs and errors.
    fn describe(&self) -> String;
}

/// Accepts exactly the keys the pipeline generates (hex digests) plus
/// the simple alphanumeric keys tests use. Anything else — path
/// separators, dots, empty, oversized — is rejected before it can touch
/// a filesystem path or a request line. Shared by the local backend and
/// by `wap serve`'s `/v1/cache/{key}` routes.
#[must_use]
pub fn valid_key(key: &str) -> bool {
    !key.is_empty()
        && key.len() <= 128
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
}

/// The on-disk backend: one file per key under
/// `<root>/v1/<first-two-chars>/<key>`, written via temp file + atomic
/// rename so concurrent or crashed writers can at worst leave a stale
/// temp file, never a torn entry.
#[derive(Debug, Clone)]
pub struct LocalDirBackend {
    root: PathBuf,
}

impl LocalDirBackend {
    /// A backend rooted at `root` (created lazily on first store).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        LocalDirBackend { root: root.into() }
    }

    /// The cache root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The file path an entry for `key` lives at.
    #[must_use]
    pub fn entry_path(&self, key: &str) -> PathBuf {
        // keys are 64-char hex digests; anything shorter still fans out safely
        let (fan, _) = key.split_at(key.len().min(2));
        self.root.join(GENERATION_DIR).join(fan).join(key)
    }
}

impl CacheBackend for LocalDirBackend {
    fn load(&self, key: &str) -> Lookup {
        if !valid_key(key) {
            return Lookup::Absent;
        }
        match std::fs::read(self.entry_path(key)) {
            Ok(raw) => Lookup::Found(raw),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Lookup::Absent,
            Err(e) => Lookup::Error(format!("reading {key}: {e}")),
        }
    }

    fn store(&self, key: &str, framed: &[u8]) -> Result<(), String> {
        if !valid_key(key) {
            return Err(format!("invalid cache key {key:?}"));
        }
        let path = self.entry_path(key);
        let parent = path.parent().ok_or("entry path has no parent")?;
        std::fs::create_dir_all(parent).map_err(|e| format!("creating {key} dir: {e}"))?;
        // unique temp name per thread so concurrent writers never collide;
        // rename is atomic within one filesystem
        let tmp = parent.join(format!(
            ".tmp-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let result = std::fs::write(&tmp, framed)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| format!("writing {key}: {e}"));
        let _ = std::fs::remove_file(&tmp);
        result
    }

    fn remove(&self, key: &str) {
        if valid_key(key) {
            let _ = std::fs::remove_file(self.entry_path(key));
        }
    }

    fn describe(&self) -> String {
        format!("local dir {}", self.root.display())
    }
}

/// Default time allowed for a TCP connect to the peer.
const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Default time allowed for each read/write on an established connection.
const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A cache peer reached over HTTP: `GET/PUT/HEAD
/// <base>/v1/cache/{key}`, one request per connection
/// (`Connection: close`), bodies delimited by `Content-Length`.
///
/// Transport failures get a single retry; after that they surface as
/// [`Lookup::Error`] / `Err` and the store falls back to its local
/// tiers. The client never interprets the bytes it carries — frame
/// verification stays in the store, so a corrupt or truncated peer
/// response is caught by the same checksum path that guards the disk.
#[derive(Clone)]
pub struct RemoteBackend {
    /// `host:port` used both for the connection and the `Host` header.
    host: String,
    /// Path prefix in front of `/v1/cache/` (usually empty).
    prefix: String,
    connect_timeout: Duration,
    io_timeout: Duration,
}

impl fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("host", &self.host)
            .field("prefix", &self.prefix)
            .finish()
    }
}

impl RemoteBackend {
    /// Builds a client for the peer at `base`, e.g.
    /// `http://127.0.0.1:8080`.
    ///
    /// # Errors
    ///
    /// Returns a message for URLs that are not plain `http://host:port`
    /// (optionally with a path prefix). TLS is a reverse proxy's job,
    /// matching `wap serve` itself.
    pub fn new(base: &str) -> Result<RemoteBackend, String> {
        let rest = base
            .strip_prefix("http://")
            .ok_or_else(|| format!("cache peer {base:?} must be an http:// URL"))?;
        let (host, prefix) = match rest.split_once('/') {
            Some((h, p)) => (h, format!("/{}", p.trim_end_matches('/'))),
            None => (rest, String::new()),
        };
        let host = host.trim_end_matches('/');
        if host.is_empty() {
            return Err(format!("cache peer {base:?} has no host"));
        }
        Ok(RemoteBackend {
            host: host.to_string(),
            prefix: if prefix == "/" { String::new() } else { prefix },
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            io_timeout: DEFAULT_IO_TIMEOUT,
        })
    }

    /// Overrides both timeouts (tests use short ones against
    /// black-holed peers).
    #[must_use]
    pub fn with_timeouts(mut self, connect: Duration, io: Duration) -> Self {
        self.connect_timeout = connect;
        self.io_timeout = io;
        self
    }

    /// The peer's `host:port`.
    #[must_use]
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Asks the peer whether it holds `key` (a `HEAD` request).
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        matches!(self.request_with_retry("HEAD", key, None), Ok((200, _)))
    }

    /// One full request/response exchange.
    fn request(
        &self,
        method: &str,
        key: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), String> {
        let addr = self
            .host
            .to_socket_addrs()
            .map_err(|e| format!("resolving {}: {e}", self.host))?
            .next()
            .ok_or_else(|| format!("{} resolves to no address", self.host))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
            .map_err(|e| format!("connecting {}: {e}", self.host))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.io_timeout)))
            .map_err(|e| format!("configuring socket: {e}"))?;
        let mut head = format!(
            "{method} {}/v1/cache/{key} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n",
            self.prefix, self.host
        );
        if let Some(body) = body {
            head.push_str(&format!(
                "Content-Type: application/octet-stream\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.unwrap_or(&[])))
            .and_then(|()| stream.flush())
            .map_err(|e| format!("sending to {}: {e}", self.host))?;
        let mut raw = Vec::new();
        stream
            .read_to_end(&mut raw)
            .map_err(|e| format!("reading from {}: {e}", self.host))?;
        parse_response(&raw).map_err(|e| format!("response from {}: {e}", self.host))
    }

    /// [`RemoteBackend::request`] with a single retry on transport
    /// errors — a peer mid-restart or a dropped connection gets one
    /// second chance before the store degrades.
    fn request_with_retry(
        &self,
        method: &str,
        key: &str,
        body: Option<&[u8]>,
    ) -> Result<(u16, Vec<u8>), String> {
        match self.request(method, key, body) {
            Ok(r) => Ok(r),
            Err(_) => self.request(method, key, body),
        }
    }
}

/// Splits a raw HTTP/1.1 response into (status, body). Honors
/// `Content-Length` when present: a shorter-than-promised body is a
/// transport error (truncated mid-flight), a longer one is trimmed.
fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("no header terminator")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "non-UTF-8 header")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut body = raw[head_end + 4..].to_vec();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                let want: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad content-length {value:?}"))?;
                if body.len() < want {
                    return Err(format!("truncated body: {} of {want} bytes", body.len()));
                }
                body.truncate(want);
            }
        }
    }
    Ok((status, body))
}

impl CacheBackend for RemoteBackend {
    fn load(&self, key: &str) -> Lookup {
        if !valid_key(key) {
            return Lookup::Absent;
        }
        match self.request_with_retry("GET", key, None) {
            Ok((200, body)) => Lookup::Found(body),
            Ok((404, _)) => Lookup::Absent,
            Ok((status, _)) => Lookup::Error(format!("GET {key}: HTTP {status}")),
            Err(e) => Lookup::Error(e),
        }
    }

    fn store(&self, key: &str, framed: &[u8]) -> Result<(), String> {
        if !valid_key(key) {
            return Err(format!("invalid cache key {key:?}"));
        }
        match self.request_with_retry("PUT", key, Some(framed)) {
            Ok((200 | 201 | 204, _)) => Ok(()),
            Ok((status, _)) => Err(format!("PUT {key}: HTTP {status}")),
            Err(e) => Err(e),
        }
    }

    fn remove(&self, _key: &str) {
        // the protocol is deliberately append-only (no DELETE): a peer
        // prunes its own corrupt entries, and a bad remote payload is
        // simply overwritten by the next write-back
    }

    fn describe(&self) -> String {
        format!("remote peer http://{}{}", self.host, self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn key_validation_rejects_traversal_and_junk() {
        assert!(valid_key(&"a".repeat(64)));
        assert!(valid_key("decl-0123_ABC"));
        assert!(!valid_key(""));
        assert!(!valid_key(&"a".repeat(129)));
        assert!(!valid_key("../../etc/passwd"));
        assert!(!valid_key("a/b"));
        assert!(!valid_key(".hidden"));
        assert!(!valid_key("a b"));
    }

    #[test]
    fn local_dir_round_trip_and_remove() {
        let root = std::env::temp_dir().join(format!("wap-backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let b = LocalDirBackend::new(&root);
        assert!(matches!(b.load("abc123"), Lookup::Absent));
        b.store("abc123", b"framed bytes").unwrap();
        match b.load("abc123") {
            Lookup::Found(raw) => assert_eq!(raw, b"framed bytes"),
            other => panic!("expected Found, got {other:?}"),
        }
        assert!(b.entry_path("abc123").starts_with(&root));
        b.remove("abc123");
        assert!(matches!(b.load("abc123"), Lookup::Absent));
        // invalid keys never touch the filesystem
        assert!(matches!(b.load("../oops"), Lookup::Absent));
        assert!(b.store("../oops", b"x").is_err());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn remote_url_parsing() {
        let b = RemoteBackend::new("http://127.0.0.1:8080").unwrap();
        assert_eq!(b.host(), "127.0.0.1:8080");
        assert_eq!(b.prefix, "");
        let b = RemoteBackend::new("http://cache.internal:9000/wap/").unwrap();
        assert_eq!(b.host(), "cache.internal:9000");
        assert_eq!(b.prefix, "/wap");
        assert!(RemoteBackend::new("https://no.tls").is_err());
        assert!(RemoteBackend::new("127.0.0.1:8080").is_err());
        assert!(RemoteBackend::new("http://").is_err());
    }

    /// Serves `responses` (one per connection) on an ephemeral port.
    fn fake_peer(responses: Vec<Vec<u8>>) -> (String, std::thread::JoinHandle<Vec<Vec<u8>>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let join = std::thread::spawn(move || {
            let mut seen = Vec::new();
            for response in responses {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 4096];
                let n = stream.read(&mut buf).unwrap();
                seen.push(buf[..n].to_vec());
                stream.write_all(&response).unwrap();
            }
            seen
        });
        (format!("http://{addr}"), join)
    }

    fn http_200(body: &[u8]) -> Vec<u8> {
        let mut out = format!(
            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .into_bytes();
        out.extend_from_slice(body);
        out
    }

    #[test]
    fn remote_get_maps_statuses() {
        let (base, join) = fake_peer(vec![
            http_200(b"framed"),
            b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n".to_vec(),
            b"HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n".to_vec(),
        ]);
        let b = RemoteBackend::new(&base).unwrap();
        match b.load(&"a".repeat(64)) {
            Lookup::Found(raw) => assert_eq!(raw, b"framed"),
            other => panic!("expected Found, got {other:?}"),
        }
        assert!(matches!(b.load(&"b".repeat(64)), Lookup::Absent));
        assert!(matches!(b.load(&"c".repeat(64)), Lookup::Error(_)));
        let seen = join.join().unwrap();
        assert!(seen[0].starts_with(b"GET /v1/cache/aaaa"));
    }

    #[test]
    fn remote_truncated_body_is_a_transport_error() {
        // promises 100 bytes, delivers 5: must surface as Error, and the
        // client retries once (hence two identical canned responses)
        let short = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\nstub!".to_vec();
        let (base, join) = fake_peer(vec![short.clone(), short]);
        let b = RemoteBackend::new(&base).unwrap();
        assert!(matches!(b.load(&"d".repeat(64)), Lookup::Error(_)));
        assert_eq!(
            join.join().unwrap().len(),
            2,
            "one retry after the first failure"
        );
    }

    #[test]
    fn remote_put_round_trip() {
        let (base, join) = fake_peer(vec![
            b"HTTP/1.1 201 Created\r\nContent-Length: 0\r\n\r\n".to_vec()
        ]);
        let b = RemoteBackend::new(&base).unwrap();
        b.store(&"e".repeat(64), b"payload-bytes").unwrap();
        let seen = join.join().unwrap();
        let text = String::from_utf8_lossy(&seen[0]).to_string();
        assert!(text.starts_with("PUT /v1/cache/eeee"), "{text}");
        assert!(text.contains("Content-Length: 13"), "{text}");
        assert!(text.ends_with("payload-bytes"), "{text}");
    }

    #[test]
    fn unreachable_peer_fails_fast_not_forever() {
        // a port nothing listens on: connect is refused immediately
        let b = RemoteBackend::new("http://127.0.0.1:1")
            .unwrap()
            .with_timeouts(Duration::from_millis(200), Duration::from_millis(200));
        let t = std::time::Instant::now();
        assert!(matches!(b.load(&"f".repeat(64)), Lookup::Error(_)));
        assert!(b.store(&"f".repeat(64), b"x").is_err());
        assert!(!b.contains(&"f".repeat(64)));
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "failures must be bounded by the timeouts"
        );
    }
}
