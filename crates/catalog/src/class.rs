//! Vulnerability classes and analyzer sub-modules.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A vulnerability class handled by the tool.
///
/// The first eight are the classes of the original WAP v2.1; the next seven
/// are the classes the paper adds (§IV-A); [`VulnClass::Custom`] covers
/// classes introduced by user-defined weapons without recompiling — the
/// paper's headline capability.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VulnClass {
    /// SQL injection.
    Sqli,
    /// Reflected cross-site scripting.
    XssReflected,
    /// Stored cross-site scripting.
    XssStored,
    /// Remote file inclusion.
    Rfi,
    /// Local file inclusion.
    Lfi,
    /// Directory / path traversal.
    DirTraversal,
    /// OS command injection.
    Osci,
    /// Source code disclosure.
    Scd,
    /// PHP command injection (eval-like).
    Phpci,
    /// LDAP injection (new in WAPe).
    LdapI,
    /// XPath injection (new in WAPe).
    XpathI,
    /// NoSQL injection (new in WAPe; first static tool to detect it).
    NoSqlI,
    /// Comment spamming injection (new in WAPe).
    CommentSpam,
    /// Header injection / HTTP response splitting (new in WAPe).
    HeaderI,
    /// Email injection (new in WAPe).
    EmailI,
    /// Session fixation (new in WAPe).
    SessionFixation,
    /// A class introduced by a weapon at runtime.
    Custom(String),
}

impl VulnClass {
    /// The eight classes detected by the original WAP v2.1.
    pub fn original() -> Vec<VulnClass> {
        vec![
            VulnClass::Sqli,
            VulnClass::XssReflected,
            VulnClass::XssStored,
            VulnClass::Rfi,
            VulnClass::Lfi,
            VulnClass::DirTraversal,
            VulnClass::Osci,
            VulnClass::Scd,
            VulnClass::Phpci,
        ]
    }

    /// The seven classes added by the paper (§IV-A).
    pub fn new_in_wape() -> Vec<VulnClass> {
        vec![
            VulnClass::LdapI,
            VulnClass::XpathI,
            VulnClass::NoSqlI,
            VulnClass::CommentSpam,
            VulnClass::HeaderI,
            VulnClass::EmailI,
            VulnClass::SessionFixation,
        ]
    }

    /// Short uppercase acronym used in the paper's tables
    /// (e.g. `SQLI`, `XSS`, `LDAPI`).
    pub fn acronym(&self) -> &str {
        match self {
            VulnClass::Sqli => "SQLI",
            VulnClass::XssReflected | VulnClass::XssStored => "XSS",
            VulnClass::Rfi => "RFI",
            VulnClass::Lfi => "LFI",
            VulnClass::DirTraversal => "DT",
            VulnClass::Osci => "OSCI",
            VulnClass::Scd => "SCD",
            VulnClass::Phpci => "PHPCI",
            VulnClass::LdapI => "LDAPI",
            VulnClass::XpathI => "XPATHI",
            VulnClass::NoSqlI => "NOSQLI",
            VulnClass::CommentSpam => "CS",
            VulnClass::HeaderI => "HI",
            VulnClass::EmailI => "EI",
            VulnClass::SessionFixation => "SF",
            VulnClass::Custom(name) => name,
        }
    }

    /// The command-line style activation flag (`-sqli`, `-nosqli`, ...).
    pub fn flag(&self) -> String {
        format!("-{}", self.acronym().to_ascii_lowercase())
    }

    /// The stable rule identifier used by machine-readable reports (the
    /// SARIF `rule.id`). Derived from the acronym, so it is identical for
    /// the two XSS variants and stable for weapon-defined classes across
    /// runs, versions, and weapon load order.
    pub fn rule_id(&self) -> String {
        format!("WAP-{}", self.acronym())
    }

    /// One-line description of the class for rule metadata.
    pub fn summary(&self) -> &'static str {
        match self {
            VulnClass::Sqli => "SQL injection: untrusted input reaches a SQL query sink",
            VulnClass::XssReflected | VulnClass::XssStored => {
                "Cross-site scripting: untrusted input echoed into a page"
            }
            VulnClass::Rfi => "Remote file inclusion: untrusted input selects an included file",
            VulnClass::Lfi => "Local file inclusion: untrusted input selects a local file",
            VulnClass::DirTraversal => {
                "Directory traversal: untrusted input escapes the intended path"
            }
            VulnClass::Osci => "OS command injection: untrusted input reaches a shell command",
            VulnClass::Scd => "Source code disclosure: untrusted input exposes source files",
            VulnClass::Phpci => "PHP command injection: untrusted input reaches eval-like code",
            VulnClass::LdapI => "LDAP injection: untrusted input reaches an LDAP filter",
            VulnClass::XpathI => "XPath injection: untrusted input reaches an XPath query",
            VulnClass::NoSqlI => "NoSQL injection: untrusted input reaches a NoSQL query",
            VulnClass::CommentSpam => "Comment spamming: unvalidated input posted as content",
            VulnClass::HeaderI => "Header injection: untrusted input reaches an HTTP header",
            VulnClass::EmailI => "Email injection: untrusted input reaches a mail header",
            VulnClass::SessionFixation => "Session fixation: attacker-chosen session identifier",
            VulnClass::Custom(_) => "Vulnerability class loaded from a weapon configuration",
        }
    }

    /// The analyzer sub-module this class belongs to (Fig. 2 / Table IV).
    pub fn submodule(&self) -> SubModule {
        match self {
            VulnClass::Osci
            | VulnClass::Phpci
            | VulnClass::Rfi
            | VulnClass::Lfi
            | VulnClass::DirTraversal
            | VulnClass::Scd
            | VulnClass::SessionFixation => SubModule::RceFileInjection,
            VulnClass::XssReflected | VulnClass::XssStored | VulnClass::CommentSpam => {
                SubModule::ClientSideInjection
            }
            VulnClass::Sqli | VulnClass::LdapI | VulnClass::XpathI | VulnClass::NoSqlI => {
                SubModule::QueryInjection
            }
            VulnClass::HeaderI | VulnClass::EmailI | VulnClass::Custom(_) => {
                SubModule::NewVulnDetector
            }
        }
    }

    /// Whether this is an input validation class (everything except session
    /// fixation, per §IV-A).
    pub fn is_input_validation(&self) -> bool {
        !matches!(self, VulnClass::SessionFixation)
    }

    /// Whether WAP v2.1 already detected this class.
    pub fn in_original_wap(&self) -> bool {
        Self::original().contains(self)
    }
}

impl fmt::Display for VulnClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.acronym())
    }
}

/// The restructured code analyzer's sub-modules (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubModule {
    /// RCE & file injection: OSCI, PHPCI, RFI, LFI, DT, SCD (+ SF).
    RceFileInjection,
    /// Client-side injection: reflected and stored XSS (+ CS).
    ClientSideInjection,
    /// Query injection: SQLI (+ LDAPI, XPathI, NoSQLI).
    QueryInjection,
    /// The generic, user-configurable new-vulnerability detector.
    NewVulnDetector,
}

impl SubModule {
    /// All sub-modules, in Fig. 2 order.
    pub fn all() -> [SubModule; 4] {
        [
            SubModule::RceFileInjection,
            SubModule::ClientSideInjection,
            SubModule::QueryInjection,
            SubModule::NewVulnDetector,
        ]
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            SubModule::RceFileInjection => "RCE & file injection",
            SubModule::ClientSideInjection => "client-side injection",
            SubModule::QueryInjection => "query injection",
            SubModule::NewVulnDetector => "new vulnerability detector",
        }
    }
}

impl fmt::Display for SubModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_has_nine_variants_eight_classes() {
        // XSS reflected/stored are one paper class; the enum splits them.
        let orig = VulnClass::original();
        assert_eq!(orig.len(), 9);
        let acronyms: std::collections::BTreeSet<_> = orig.iter().map(|c| c.acronym()).collect();
        assert_eq!(acronyms.len(), 8);
    }

    #[test]
    fn seven_new_classes() {
        assert_eq!(VulnClass::new_in_wape().len(), 7);
        for c in VulnClass::new_in_wape() {
            assert!(!c.in_original_wap());
        }
    }

    #[test]
    fn flags_match_paper() {
        assert_eq!(VulnClass::NoSqlI.flag(), "-nosqli");
        assert_eq!(VulnClass::Sqli.flag(), "-sqli");
        assert_eq!(VulnClass::Custom("WPSQLI".into()).flag(), "-wpsqli");
    }

    #[test]
    fn rule_ids_are_stable_and_cover_weapons() {
        assert_eq!(VulnClass::Sqli.rule_id(), "WAP-SQLI");
        // both XSS variants share one paper class and one rule
        assert_eq!(
            VulnClass::XssReflected.rule_id(),
            VulnClass::XssStored.rule_id()
        );
        assert_eq!(VulnClass::Custom("WPSQLI".into()).rule_id(), "WAP-WPSQLI");
        assert!(!VulnClass::NoSqlI.summary().is_empty());
        assert!(!VulnClass::Custom("X".into()).summary().is_empty());
    }

    #[test]
    fn submodule_assignment_matches_table_iv() {
        assert_eq!(
            VulnClass::SessionFixation.submodule(),
            SubModule::RceFileInjection
        );
        assert_eq!(
            VulnClass::CommentSpam.submodule(),
            SubModule::ClientSideInjection
        );
        assert_eq!(VulnClass::LdapI.submodule(), SubModule::QueryInjection);
        assert_eq!(VulnClass::XpathI.submodule(), SubModule::QueryInjection);
        assert_eq!(VulnClass::NoSqlI.submodule(), SubModule::QueryInjection);
        assert_eq!(VulnClass::HeaderI.submodule(), SubModule::NewVulnDetector);
    }

    #[test]
    fn only_sf_is_not_input_validation() {
        assert!(!VulnClass::SessionFixation.is_input_validation());
        assert!(VulnClass::Sqli.is_input_validation());
        assert!(VulnClass::CommentSpam.is_input_validation());
    }

    #[test]
    fn display_uses_acronym() {
        assert_eq!(VulnClass::HeaderI.to_string(), "HI");
        assert_eq!(SubModule::QueryInjection.to_string(), "query injection");
    }

    #[test]
    fn serde_round_trip() {
        let c = VulnClass::Custom("WPSQLI".into());
        let json = serde_json::to_string(&c).unwrap();
        let back: VulnClass = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
