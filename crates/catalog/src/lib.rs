//! # wap-catalog — vulnerability class catalog for the WAPe reproduction
//!
//! The data model behind the paper's restructured, *configurable* code
//! analyzer (Medeiros et al., DSN 2016, Fig. 2): vulnerability classes and
//! their sub-modules, entry points (`ep`), sensitive sinks (`ss`),
//! sanitization functions (`san`), and the **weapon** configuration format
//! from which new detectors are generated without programming (§III-D).
//!
//! ## Quick start
//!
//! ```
//! use wap_catalog::{Catalog, VulnClass, WeaponConfig};
//!
//! // WAP v2.1 knows 8 classes; WAPe adds SF, CS, LDAPI, XPathI...
//! let mut catalog = Catalog::wape();
//! assert!(!catalog.has_class(&VulnClass::NoSqlI));
//!
//! // ...and weapons add the rest at runtime, from pure data:
//! catalog.add_weapon(WeaponConfig::nosqli());
//! assert!(catalog.has_class(&VulnClass::NoSqlI));
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod class;
pub mod spec;
pub mod weapon;

pub use catalog::Catalog;
pub use class::{SubModule, VulnClass};
pub use spec::{EntryPoint, SanitizerSpec, SinkArgs, SinkKind, SinkSpec};
pub use weapon::{DynamicSymptom, FixTemplateSpec, LintRuleSpec, WeaponConfig, WeaponSink};
