//! Weapon configuration: the user-supplied data from which a new detector,
//! fix, and symptom map are generated (§III-D).
//!
//! A weapon is *pure data* (serializable to JSON): sensitive sinks,
//! sanitization functions, optional extra entry points, a fix template, and
//! optional dynamic symptoms. The weapon generator in `wap-core` turns this
//! into a live detector without recompiling anything — the paper's
//! "no additional programming" claim.

use crate::class::VulnClass;
use crate::spec::EntryPoint;
use serde::{Deserialize, Serialize};

/// A sink entry inside a weapon configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeaponSink {
    /// Function name, or method name when `method` is true.
    pub name: String,
    /// Whether the sink is a method call (`$obj->name(...)`).
    #[serde(default)]
    pub method: bool,
    /// Optional receiver variable restriction for method sinks
    /// (e.g. `wpdb` to match only `$wpdb->...`).
    #[serde(default)]
    pub receiver: Option<String>,
    /// Optional per-sink class acronym; defaults to the weapon's class.
    /// Lets one weapon cover two related classes (the HI & EI weapon).
    #[serde(default)]
    pub class: Option<String>,
}

impl WeaponSink {
    /// A plain function sink using the weapon's class.
    pub fn function(name: &str) -> Self {
        WeaponSink {
            name: name.into(),
            method: false,
            receiver: None,
            class: None,
        }
    }

    /// A function sink assigned to a specific class acronym.
    pub fn function_as(name: &str, class: &str) -> Self {
        WeaponSink {
            name: name.into(),
            method: false,
            receiver: None,
            class: Some(class.into()),
        }
    }

    /// A method sink, optionally restricted to a receiver variable.
    pub fn method(name: &str, receiver: Option<&str>) -> Self {
        WeaponSink {
            name: name.into(),
            method: true,
            receiver: receiver.map(str::to_string),
            class: None,
        }
    }
}

/// The three fix templates of §III-C.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "template", rename_all = "snake_case")]
pub enum FixTemplateSpec {
    /// *PHP sanitization function*: wrap tainted sink inputs in the given
    /// PHP sanitizer (e.g. `mysql_real_escape_string` for the NoSQLI
    /// weapon's `san_nosqli`).
    PhpSanitization {
        /// The sanitizing function to apply at the sink.
        sanitizer: String,
    },
    /// *User sanitization*: replace each malicious character with the
    /// neutralizer (e.g. `\r`/`\n` → space for the HI & EI weapon's
    /// `san_hei`).
    UserSanitization {
        /// Characters/sequences that enable the attack.
        malicious: Vec<String>,
        /// Replacement character.
        neutralizer: String,
    },
    /// *User validation*: check for malicious characters and emit a message
    /// on match (the LDAPI / XPathI fixes).
    UserValidation {
        /// Characters/sequences that enable the attack.
        malicious: Vec<String>,
    },
}

/// A dynamic symptom: a user function mapped onto an equivalent static
/// symptom so the false-positive predictor can account for it (§III-B.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicSymptom {
    /// The user function name (e.g. `val_int`).
    pub function: String,
    /// The static symptom it behaves like (e.g. `is_int`).
    pub equivalent: String,
    /// Symptom category: `validation`, `string_manipulation`, or
    /// `sql_query_manipulation`.
    pub category: String,
}

impl DynamicSymptom {
    /// Creates a dynamic symptom mapping.
    pub fn new(function: &str, equivalent: &str, category: &str) -> Self {
        DynamicSymptom {
            function: function.into(),
            equivalent: equivalent.into(),
            category: category.into(),
        }
    }
}

/// A weapon-declared lint rule: pure data in the same "no additional
/// programming" spirit as the rest of the weapon file. The CFG lint
/// engine (`wap-cfg`) interprets it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintRuleSpec {
    /// Rule id; the lint engine normalizes it into the `WAP-` namespace.
    pub id: String,
    /// What the rule checks: `forbid_call` (flag every call to
    /// `function`) or `require_guard` (flag calls whose argument
    /// variables lack a dominating validation guard).
    pub kind: String,
    /// The function or method name the rule applies to
    /// (case-insensitive).
    pub function: String,
    /// Severity of findings: `error`, `warning`, or `note`.
    #[serde(default = "default_lint_severity")]
    pub severity: String,
    /// Message attached to each finding.
    #[serde(default)]
    pub message: String,
}

fn default_lint_severity() -> String {
    "warning".to_string()
}

impl LintRuleSpec {
    /// A rule forbidding every call to `function`.
    pub fn forbid_call(id: &str, function: &str, severity: &str, message: &str) -> Self {
        LintRuleSpec {
            id: id.into(),
            kind: "forbid_call".into(),
            function: function.into(),
            severity: severity.into(),
            message: message.into(),
        }
    }

    /// A rule requiring calls to `function` to be guard-dominated.
    pub fn require_guard(id: &str, function: &str, severity: &str, message: &str) -> Self {
        LintRuleSpec {
            id: id.into(),
            kind: "require_guard".into(),
            function: function.into(),
            severity: severity.into(),
            message: message.into(),
        }
    }
}

/// A full weapon configuration (§III-D): everything the weapon generator
/// needs to produce a detector + fix + symptoms and link them into the tool.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeaponConfig {
    /// Weapon name; the activation flag is `-<name>` (e.g. `-nosqli`).
    pub name: String,
    /// Acronym of the (possibly new) vulnerability class, e.g. `NOSQLI`.
    pub class_name: String,
    /// Extra entry points beyond the default superglobals.
    #[serde(default)]
    pub entry_points: Vec<EntryPoint>,
    /// Sensitive sinks.
    pub sinks: Vec<WeaponSink>,
    /// Sanitization function names that neutralize this class.
    #[serde(default)]
    pub sanitizers: Vec<String>,
    /// Sanitizer *method* names (e.g. `$wpdb->prepare`).
    #[serde(default)]
    pub sanitizer_methods: Vec<String>,
    /// Fix template configuration.
    pub fix: FixTemplateSpec,
    /// Dynamic symptoms contributed by this weapon.
    #[serde(default)]
    pub dynamic_symptoms: Vec<DynamicSymptom>,
    /// Lint rules contributed by this weapon, run by `wap lint`.
    #[serde(default)]
    pub lint_rules: Vec<LintRuleSpec>,
}

impl WeaponConfig {
    /// Resolves an acronym to a built-in class if one matches, else Custom.
    pub fn resolve_class(acronym: &str) -> VulnClass {
        let up = acronym.to_ascii_uppercase();
        for c in VulnClass::original()
            .into_iter()
            .chain(VulnClass::new_in_wape())
        {
            if c.acronym() == up {
                return c;
            }
        }
        VulnClass::Custom(up)
    }

    /// The class this weapon's unlabelled sinks map to.
    pub fn class(&self) -> VulnClass {
        Self::resolve_class(&self.class_name)
    }

    /// The activation flag (`-nosqli`, `-hei`, `-wpsqli`).
    pub fn flag(&self) -> String {
        format!("-{}", self.name)
    }

    /// The NoSQL injection weapon of §IV-C.1: MongoDB collection methods as
    /// sinks, `mysql_real_escape_string` as sanitizer, PHP-sanitization fix
    /// template (producing the `san_nosqli` fix).
    pub fn nosqli() -> Self {
        WeaponConfig {
            name: "nosqli".into(),
            class_name: "NOSQLI".into(),
            entry_points: Vec::new(),
            sinks: [
                "find",
                "findOne",
                "findAndModify",
                "insert",
                "remove",
                "save",
                "execute",
            ]
            .iter()
            .map(|m| WeaponSink::method(m, None))
            .collect(),
            sanitizers: vec!["mysql_real_escape_string".into()],
            sanitizer_methods: Vec::new(),
            fix: FixTemplateSpec::PhpSanitization {
                sanitizer: "mysql_real_escape_string".into(),
            },
            dynamic_symptoms: Vec::new(),
            lint_rules: Vec::new(),
        }
    }

    /// The HI & EI weapon of §IV-C.2: `header` and `mail` sinks, no
    /// sanitizers, user-sanitization fix replacing `\r`/`\n` (clear or
    /// percent-encoded) with a space (the `san_hei` fix).
    pub fn hei() -> Self {
        WeaponConfig {
            name: "hei".into(),
            class_name: "HI".into(),
            entry_points: Vec::new(),
            sinks: vec![
                WeaponSink::function_as("header", "HI"),
                WeaponSink::function_as("mail", "EI"),
            ],
            sanitizers: Vec::new(),
            sanitizer_methods: Vec::new(),
            fix: FixTemplateSpec::UserSanitization {
                malicious: vec!["\r".into(), "\n".into(), "%0a".into(), "%0d".into()],
                neutralizer: " ".into(),
            },
            dynamic_symptoms: Vec::new(),
            lint_rules: Vec::new(),
        }
    }

    /// The SQLI-for-WordPress weapon of §IV-C.3: `$wpdb` sinks and
    /// sanitizers, PHP-sanitization fix (`san_wpsqli`), and dynamic
    /// symptoms for the WordPress validation helpers.
    pub fn wpsqli() -> Self {
        WeaponConfig {
            name: "wpsqli".into(),
            class_name: "WPSQLI".into(),
            entry_points: vec![EntryPoint::FunctionReturn("get_query_var".into())],
            sinks: [
                "query",
                "get_results",
                "get_row",
                "get_col",
                "get_var",
                "prepare_query",
            ]
            .iter()
            .map(|m| WeaponSink::method(m, Some("wpdb")))
            .collect(),
            sanitizers: vec!["esc_sql".into(), "like_escape".into()],
            sanitizer_methods: vec!["prepare".into(), "escape".into()],
            fix: FixTemplateSpec::PhpSanitization {
                sanitizer: "esc_sql".into(),
            },
            dynamic_symptoms: vec![
                DynamicSymptom::new("absint", "intval", "validation"),
                DynamicSymptom::new("sanitize_text_field", "str_replace", "string_manipulation"),
                DynamicSymptom::new("sanitize_key", "preg_replace", "string_manipulation"),
                DynamicSymptom::new("esc_attr", "str_replace", "string_manipulation"),
                DynamicSymptom::new("wp_verify_nonce", "preg_match", "validation"),
                DynamicSymptom::new("is_email", "preg_match", "validation"),
            ],
            lint_rules: vec![LintRuleSpec::require_guard(
                "wp-unprepared-query",
                "query",
                "warning",
                "wpdb query called on data without a dominating validation guard",
            )],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nosqli_matches_paper_config() {
        let w = WeaponConfig::nosqli();
        assert_eq!(w.flag(), "-nosqli");
        assert_eq!(w.class(), VulnClass::NoSqlI);
        assert_eq!(w.sinks.len(), 7);
        assert!(w.sinks.iter().all(|s| s.method));
        assert_eq!(w.sanitizers, vec!["mysql_real_escape_string".to_string()]);
        assert!(matches!(w.fix, FixTemplateSpec::PhpSanitization { .. }));
    }

    #[test]
    fn hei_covers_two_classes() {
        let w = WeaponConfig::hei();
        assert_eq!(w.flag(), "-hei");
        let classes: Vec<_> = w.sinks.iter().map(|s| s.class.clone().unwrap()).collect();
        assert_eq!(classes, vec!["HI".to_string(), "EI".to_string()]);
        assert!(w.sanitizers.is_empty());
        let FixTemplateSpec::UserSanitization {
            malicious,
            neutralizer,
        } = &w.fix
        else {
            panic!("wrong template")
        };
        assert!(malicious.contains(&"\n".to_string()));
        assert!(malicious.contains(&"%0d".to_string()));
        assert_eq!(neutralizer, " ");
    }

    #[test]
    fn wpsqli_uses_wpdb_and_dynamic_symptoms() {
        let w = WeaponConfig::wpsqli();
        assert_eq!(w.class(), VulnClass::Custom("WPSQLI".into()));
        assert!(w
            .sinks
            .iter()
            .all(|s| s.receiver.as_deref() == Some("wpdb")));
        assert!(!w.dynamic_symptoms.is_empty());
        assert!(w.sanitizer_methods.contains(&"prepare".to_string()));
    }

    #[test]
    fn resolve_class_prefers_builtins() {
        assert_eq!(WeaponConfig::resolve_class("sqli"), VulnClass::Sqli);
        assert_eq!(WeaponConfig::resolve_class("HI"), VulnClass::HeaderI);
        assert_eq!(WeaponConfig::resolve_class("EI"), VulnClass::EmailI);
        assert_eq!(
            WeaponConfig::resolve_class("WPSQLI"),
            VulnClass::Custom("WPSQLI".into())
        );
    }

    #[test]
    fn weapon_config_json_round_trip() {
        for w in [
            WeaponConfig::nosqli(),
            WeaponConfig::hei(),
            WeaponConfig::wpsqli(),
        ] {
            let json = serde_json::to_string_pretty(&w).unwrap();
            let back: WeaponConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(w, back);
        }
    }

    #[test]
    fn weapon_config_from_handwritten_json() {
        // a user writing a weapon by hand, as the paper's frontend would
        let json = r#"{
            "name": "xmli",
            "class_name": "XMLI",
            "sinks": [{"name": "simplexml_load_string"}],
            "sanitizers": ["htmlspecialchars"],
            "fix": {"template": "user_validation", "malicious": ["<", ">"]}
        }"#;
        let w: WeaponConfig = serde_json::from_str(json).unwrap();
        assert_eq!(w.class(), VulnClass::Custom("XMLI".into()));
        assert_eq!(w.sinks[0].name, "simplexml_load_string");
        assert!(!w.sinks[0].method);
        assert!(w.dynamic_symptoms.is_empty());
    }
}
