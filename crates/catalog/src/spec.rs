//! Detector configuration data: entry points, sensitive sinks, and
//! sanitization functions.
//!
//! These are the `ep` / `ss` / `san` files of the paper's restructured code
//! analyzer (Fig. 2): plain data that configures a detector, so new classes
//! can be added "without additional programming".

use crate::class::VulnClass;
use serde::{Deserialize, Serialize};

/// How a sensitive sink is reached in source code.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SinkKind {
    /// A plain function call, e.g. `mysql_query(...)`.
    Function(String),
    /// A method call, e.g. `$wpdb->query(...)`. `receiver_hint` restricts
    /// the match to receivers whose variable/property name matches
    /// (case-insensitively), e.g. `Some("wpdb")`; `None` matches any
    /// receiver.
    Method {
        /// Optional receiver variable name (without `$`).
        receiver_hint: Option<String>,
        /// Method name.
        name: String,
    },
    /// Output constructs: `echo`, `print`, `<?= ... ?>`, `printf`.
    EchoLike,
    /// `include` / `require` statements and expressions.
    Include,
}

/// Which arguments of a sink are dangerous when tainted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SinkArgs {
    /// Any tainted argument triggers the sink.
    #[default]
    All,
    /// Only the given zero-based argument positions are sensitive
    /// (e.g. the query string of `mysql_query($q, $conn)` is position 0).
    Positions(Vec<usize>),
}

impl SinkArgs {
    /// Whether argument `index` is sensitive under this policy.
    pub fn is_sensitive(&self, index: usize) -> bool {
        match self {
            SinkArgs::All => true,
            SinkArgs::Positions(ps) => ps.contains(&index),
        }
    }
}

/// A sensitive sink: a code location where tainted data causes a
/// vulnerability of a specific class.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SinkSpec {
    /// How the sink appears in code.
    pub kind: SinkKind,
    /// The class of vulnerability a tainted flow into this sink creates.
    pub class: VulnClass,
    /// Which arguments are sensitive.
    pub args: SinkArgs,
}

impl SinkSpec {
    /// A function sink sensitive in all arguments.
    pub fn function(name: &str, class: VulnClass) -> Self {
        SinkSpec {
            kind: SinkKind::Function(name.into()),
            class,
            args: SinkArgs::All,
        }
    }

    /// A function sink sensitive only at the given positions.
    pub fn function_at(name: &str, class: VulnClass, positions: &[usize]) -> Self {
        SinkSpec {
            kind: SinkKind::Function(name.into()),
            class,
            args: SinkArgs::Positions(positions.to_vec()),
        }
    }

    /// A method sink (optionally bound to a receiver name).
    pub fn method(receiver_hint: Option<&str>, name: &str, class: VulnClass) -> Self {
        SinkSpec {
            kind: SinkKind::Method {
                receiver_hint: receiver_hint.map(str::to_string),
                name: name.into(),
            },
            class,
            args: SinkArgs::All,
        }
    }
}

/// A sanitization function: calling it on tainted data neutralizes the
/// taint for the listed classes (and only those — `htmlentities` protects
/// against XSS but not SQLI).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerSpec {
    /// Function name (case-insensitive match, as in PHP).
    pub name: String,
    /// Classes whose taint this function removes.
    pub classes: Vec<VulnClass>,
    /// Whether this is a user-defined function added via configuration
    /// (the `escape` study of §V-A) rather than a PHP built-in.
    pub user_defined: bool,
}

impl SanitizerSpec {
    /// A built-in PHP sanitizer.
    pub fn builtin(name: &str, classes: &[VulnClass]) -> Self {
        SanitizerSpec {
            name: name.into(),
            classes: classes.to_vec(),
            user_defined: false,
        }
    }

    /// A user-supplied sanitizer (external sanitization list, §V-A).
    pub fn user(name: &str, classes: &[VulnClass]) -> Self {
        SanitizerSpec {
            name: name.into(),
            classes: classes.to_vec(),
            user_defined: true,
        }
    }

    /// Whether this sanitizer neutralizes `class`.
    pub fn sanitizes(&self, class: &VulnClass) -> bool {
        self.classes.contains(class)
    }
}

/// An entry point: where untrusted data enters the program.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntryPoint {
    /// A superglobal array, e.g. `$_GET` (name without `$`).
    Superglobal(String),
    /// A function whose return value is untrusted
    /// (e.g. WordPress' `get_query_var`).
    FunctionReturn(String),
    /// A plain variable name treated as tainted from the start.
    Variable(String),
}

impl EntryPoint {
    /// The default superglobals every detector starts from.
    pub fn default_superglobals() -> Vec<EntryPoint> {
        [
            "_GET", "_POST", "_COOKIE", "_REQUEST", "_FILES", "_SERVER", "_ENV",
        ]
        .iter()
        .map(|n| EntryPoint::Superglobal((*n).to_string()))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_args_policies() {
        assert!(SinkArgs::All.is_sensitive(7));
        let p = SinkArgs::Positions(vec![0, 2]);
        assert!(p.is_sensitive(0));
        assert!(!p.is_sensitive(1));
        assert!(p.is_sensitive(2));
    }

    #[test]
    fn sanitizer_is_class_specific() {
        let s = SanitizerSpec::builtin("htmlentities", &[VulnClass::XssReflected]);
        assert!(s.sanitizes(&VulnClass::XssReflected));
        assert!(!s.sanitizes(&VulnClass::Sqli));
        assert!(!s.user_defined);
        assert!(SanitizerSpec::user("escape", &[VulnClass::Sqli]).user_defined);
    }

    #[test]
    fn default_superglobals_cover_the_classics() {
        let eps = EntryPoint::default_superglobals();
        assert!(eps.contains(&EntryPoint::Superglobal("_GET".into())));
        assert!(eps.contains(&EntryPoint::Superglobal("_POST".into())));
        assert!(eps.contains(&EntryPoint::Superglobal("_COOKIE".into())));
        assert_eq!(eps.len(), 7);
    }

    #[test]
    fn sink_constructors() {
        let s = SinkSpec::function_at("mysql_query", VulnClass::Sqli, &[0]);
        assert!(s.args.is_sensitive(0));
        assert!(!s.args.is_sensitive(1));
        let m = SinkSpec::method(Some("wpdb"), "query", VulnClass::Custom("WPSQLI".into()));
        assert!(
            matches!(m.kind, SinkKind::Method { ref receiver_hint, .. } if receiver_hint.as_deref() == Some("wpdb"))
        );
    }

    #[test]
    fn serde_round_trip() {
        let s = SinkSpec::method(None, "find", VulnClass::NoSqlI);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(s, serde_json::from_str(&json).unwrap());
    }
}
