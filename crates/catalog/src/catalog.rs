//! The aggregate catalog a taint analysis run is configured with.

use crate::class::{SubModule, VulnClass};
use crate::spec::{EntryPoint, SanitizerSpec, SinkArgs, SinkKind, SinkSpec};
use crate::weapon::{DynamicSymptom, WeaponConfig};
use std::collections::BTreeSet;

/// Everything the analyzer needs to know about vulnerability classes:
/// enabled classes, entry points, sensitive sinks, sanitizers, and dynamic
/// symptoms. This is the runtime form of the `ep`/`ss`/`san` files of
/// Fig. 2, and the object weapons are linked into.
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    entry_points: Vec<EntryPoint>,
    sinks: Vec<SinkSpec>,
    sanitizers: Vec<SanitizerSpec>,
    classes: BTreeSet<VulnClass>,
    dynamic_symptoms: Vec<DynamicSymptom>,
    weapons: Vec<WeaponConfig>,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::wape()
    }
}

impl Catalog {
    /// An empty catalog: default superglobal entry points, no classes.
    pub fn empty() -> Self {
        Catalog {
            entry_points: EntryPoint::default_superglobals(),
            sinks: Vec::new(),
            sanitizers: Vec::new(),
            classes: BTreeSet::new(),
            dynamic_symptoms: Vec::new(),
            weapons: Vec::new(),
        }
    }

    /// The original WAP v2.1 configuration: the eight original classes.
    pub fn wap_v21() -> Self {
        let mut c = Catalog::empty();
        c.install_original_classes();
        c
    }

    /// The WAPe configuration: the eight original classes plus the four new
    /// classes integrated in the sub-modules (Table IV: SF, CS, LDAPI,
    /// XPathI). The weapon-based classes (NoSQLI, HI, EI, WPSQLI) are added
    /// with [`Catalog::add_weapon`].
    pub fn wape() -> Self {
        let mut c = Catalog::wap_v21();
        c.install_table_iv_extensions();
        c
    }

    /// WAPe with the three paper weapons (`-nosqli`, `-hei`, `-wpsqli`)
    /// already linked — the configuration used for the evaluation.
    pub fn wape_full() -> Self {
        let mut c = Catalog::wape();
        c.add_weapons(vec![
            WeaponConfig::nosqli(),
            WeaponConfig::hei(),
            WeaponConfig::wpsqli(),
        ]);
        c
    }

    // ---- built-in data ----

    fn install_original_classes(&mut self) {
        use VulnClass::*;
        for c in VulnClass::original() {
            self.classes.insert(c);
        }

        // query injection sub-module: SQLI
        for f in [
            "mysql_query",
            "mysql_unbuffered_query",
            "mysql_db_query",
            "mysqli_query",
            "mysqli_real_query",
            "mysqli_multi_query",
            "pg_query",
            "pg_send_query",
            "sqlite_query",
        ] {
            self.sinks.push(SinkSpec::function(f, Sqli));
        }
        // OO database APIs: restrict to receiver names that are database
        // handles — WAP does not understand arbitrary wrappers like $wpdb
        // (that is exactly what the WordPress weapon adds)
        for recv in [
            "db", "mysqli", "pdo", "conn", "dbh", "link", "database", "sql",
        ] {
            for m in ["query", "multi_query", "real_query", "exec"] {
                self.sinks.push(SinkSpec::method(Some(recv), m, Sqli));
            }
        }
        for s in [
            "mysql_real_escape_string",
            "mysql_escape_string",
            "mysqli_real_escape_string",
            "mysqli_escape_string",
            "addslashes",
            "pg_escape_string",
            "sqlite_escape_string",
        ] {
            self.sanitizers.push(SanitizerSpec::builtin(s, &[Sqli]));
        }

        // client-side injection sub-module: XSS
        self.sinks.push(SinkSpec {
            kind: SinkKind::EchoLike,
            class: XssReflected,
            args: SinkArgs::All,
        });
        for f in ["printf", "vprintf", "print_r", "var_dump"] {
            self.sinks.push(SinkSpec::function(f, XssReflected));
        }
        for f in ["fwrite", "fputs"] {
            self.sinks.push(SinkSpec::function_at(f, XssStored, &[1]));
        }
        for s in [
            "htmlentities",
            "htmlspecialchars",
            "strip_tags",
            "urlencode",
            "rawurlencode",
        ] {
            self.sanitizers.push(SanitizerSpec::builtin(
                s,
                &[XssReflected, XssStored, CommentSpam],
            ));
        }

        // RCE & file injection sub-module
        self.sinks.push(SinkSpec {
            kind: SinkKind::Include,
            class: Lfi,
            args: SinkArgs::All,
        });
        for f in [
            "fopen", "file", "opendir", "unlink", "copy", "rename", "rmdir", "mkdir",
        ] {
            self.sinks
                .push(SinkSpec::function_at(f, DirTraversal, &[0]));
        }
        for f in [
            "readfile",
            "show_source",
            "highlight_file",
            "php_strip_whitespace",
        ] {
            self.sinks.push(SinkSpec::function_at(f, Scd, &[0]));
        }
        for f in [
            "exec",
            "system",
            "shell_exec",
            "passthru",
            "popen",
            "proc_open",
            "pcntl_exec",
        ] {
            self.sinks.push(SinkSpec::function_at(f, Osci, &[0]));
        }
        for f in ["eval", "assert", "create_function"] {
            self.sinks.push(SinkSpec::function(f, Phpci));
        }
        self.sanitizers.push(SanitizerSpec::builtin(
            "basename",
            &[Rfi, Lfi, DirTraversal, Scd],
        ));
        for s in ["escapeshellarg", "escapeshellcmd"] {
            self.sanitizers.push(SanitizerSpec::builtin(s, &[Osci]));
        }
    }

    /// Table IV: sensitive sinks added to the sub-modules for SF, CS,
    /// LDAPI, and XPathI. "No sanitization functions or entry points were
    /// added to the san and ep files."
    fn install_table_iv_extensions(&mut self) {
        use VulnClass::*;
        for c in [SessionFixation, CommentSpam, LdapI, XpathI] {
            self.classes.insert(c);
        }
        // RCE & file injection: SF
        for f in ["setcookie", "setrawcookie", "session_id"] {
            self.sinks.push(SinkSpec::function(f, SessionFixation));
        }
        // client-side injection: CS
        for f in ["file_put_contents", "file_get_contents"] {
            self.sinks
                .push(SinkSpec::function_at(f, CommentSpam, &[0, 1]));
        }
        // query injection: LDAPI
        for f in [
            "ldap_add",
            "ldap_delete",
            "ldap_list",
            "ldap_read",
            "ldap_search",
        ] {
            self.sinks.push(SinkSpec::function(f, LdapI));
        }
        self.sanitizers
            .push(SanitizerSpec::builtin("ldap_escape", &[LdapI]));
        // query injection: XPathI
        for f in ["xpath_eval", "xptr_eval", "xpath_eval_expression"] {
            self.sinks.push(SinkSpec::function(f, XpathI));
        }
    }

    // ---- mutation ----

    /// Links a batch of weapons in sorted-name order, so the resulting
    /// catalog (and therefore its fingerprint and any report enumerating
    /// weapons) is independent of the order the configurations were
    /// discovered in — e.g. directory iteration order of `--weapon` files.
    pub fn add_weapons(&mut self, mut weapons: Vec<WeaponConfig>) {
        weapons.sort_by(|a, b| a.name.cmp(&b.name));
        for w in weapons {
            self.add_weapon(w);
        }
    }

    /// Links a weapon into the catalog: enables its class(es), adds its
    /// sinks, sanitizers, entry points, and dynamic symptoms.
    ///
    /// The linked-weapon list is kept sorted by name; when loading several
    /// weapons at once prefer [`Catalog::add_weapons`], which also makes
    /// the *contribution* order (sinks, sanitizers) canonical.
    pub fn add_weapon(&mut self, weapon: WeaponConfig) {
        let default_class = weapon.class();
        self.classes.insert(default_class.clone());
        for ep in &weapon.entry_points {
            if !self.entry_points.contains(ep) {
                self.entry_points.push(ep.clone());
            }
        }
        for sink in &weapon.sinks {
            let class = sink
                .class
                .as_deref()
                .map(WeaponConfig::resolve_class)
                .unwrap_or_else(|| default_class.clone());
            self.classes.insert(class.clone());
            let kind = if sink.method {
                SinkKind::Method {
                    receiver_hint: sink.receiver.clone(),
                    name: sink.name.clone(),
                }
            } else {
                SinkKind::Function(sink.name.clone())
            };
            self.sinks.push(SinkSpec {
                kind,
                class,
                args: SinkArgs::All,
            });
        }
        let weapon_classes: Vec<VulnClass> = weapon
            .sinks
            .iter()
            .map(|s| {
                s.class
                    .as_deref()
                    .map(WeaponConfig::resolve_class)
                    .unwrap_or_else(|| default_class.clone())
            })
            .collect();
        for s in weapon.sanitizers.iter().chain(&weapon.sanitizer_methods) {
            self.sanitizers
                .push(SanitizerSpec::user(s, &weapon_classes));
        }
        self.dynamic_symptoms
            .extend(weapon.dynamic_symptoms.iter().cloned());
        let at = self
            .weapons
            .partition_point(|w| w.name.as_str() <= weapon.name.as_str());
        self.weapons.insert(at, weapon);
    }

    /// Adds a user-defined sanitization function for specific classes — the
    /// §V-A `escape` study: feeding a non-native sanitizer removes the
    /// corresponding reports.
    pub fn add_user_sanitizer(&mut self, name: &str, classes: &[VulnClass]) {
        self.sanitizers.push(SanitizerSpec::user(name, classes));
    }

    /// Adds an extra entry point.
    pub fn add_entry_point(&mut self, ep: EntryPoint) {
        if !self.entry_points.contains(&ep) {
            self.entry_points.push(ep);
        }
    }

    /// Adds a sink.
    pub fn add_sink(&mut self, sink: SinkSpec) {
        self.classes.insert(sink.class.clone());
        self.sinks.push(sink);
    }

    /// Restricts the catalog to the given classes (detection flags).
    pub fn retain_classes(&mut self, keep: &[VulnClass]) {
        self.classes.retain(|c| keep.contains(c));
        self.sinks.retain(|s| keep.contains(&s.class));
    }

    // ---- queries ----

    /// Enabled vulnerability classes.
    pub fn classes(&self) -> impl Iterator<Item = &VulnClass> {
        self.classes.iter()
    }

    /// Whether `class` detection is enabled.
    pub fn has_class(&self, class: &VulnClass) -> bool {
        self.classes.contains(class)
    }

    /// All sensitive sinks (enabled classes only).
    pub fn sinks(&self) -> impl Iterator<Item = &SinkSpec> {
        self.sinks
            .iter()
            .filter(|s| self.classes.contains(&s.class))
    }

    /// All sanitizers.
    pub fn sanitizers(&self) -> &[SanitizerSpec] {
        &self.sanitizers
    }

    /// All entry points.
    pub fn entry_points(&self) -> &[EntryPoint] {
        &self.entry_points
    }

    /// Dynamic symptoms contributed by weapons.
    pub fn dynamic_symptoms(&self) -> &[DynamicSymptom] {
        &self.dynamic_symptoms
    }

    /// Linked weapons, always in sorted-name order.
    pub fn weapons(&self) -> &[WeaponConfig] {
        &self.weapons
    }

    /// Lint rules declared by linked weapons, in weapon-name order.
    ///
    /// Weapons are kept sorted by [`Catalog::add_weapons`], so the rule
    /// sequence is deterministic regardless of configuration discovery
    /// order — `wap lint` findings never depend on flag ordering.
    pub fn lint_rules(&self) -> impl Iterator<Item = &crate::weapon::LintRuleSpec> {
        self.weapons.iter().flat_map(|w| w.lint_rules.iter())
    }

    /// A canonical string covering every piece of catalog state that can
    /// influence analysis results: classes, entry points, sinks,
    /// sanitizers, dynamic symptoms, and linked weapons. The incremental
    /// cache hashes this into its keys, so editing a weapon or adding a
    /// sanitizer invalidates exactly the runs configured with it.
    ///
    /// Two catalogs with equal state produce equal material; [`Catalog`]
    /// construction goes through [`Catalog::add_weapons`]' sorted linking,
    /// so the material does not depend on configuration discovery order.
    pub fn fingerprint_material(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "classes:{:?};", self.classes);
        let _ = write!(s, "entry_points:{:?};", self.entry_points);
        let _ = write!(s, "sinks:{:?};", self.sinks);
        let _ = write!(s, "sanitizers:{:?};", self.sanitizers);
        let _ = write!(s, "dynamic_symptoms:{:?};", self.dynamic_symptoms);
        let _ = write!(s, "weapons:{:?};", self.weapons);
        s
    }

    /// Whether a superglobal name (e.g. `_GET`) is an entry point.
    pub fn is_entry_superglobal(&self, name: &str) -> bool {
        self.entry_points
            .iter()
            .any(|ep| matches!(ep, EntryPoint::Superglobal(n) if n == name))
    }

    /// Whether calling `name` returns tainted data (weapon entry points).
    pub fn is_entry_function(&self, name: &str) -> bool {
        self.entry_points
            .iter()
            .any(|ep| matches!(ep, EntryPoint::FunctionReturn(n) if n.eq_ignore_ascii_case(name)))
    }

    /// Whether a bare variable is tainted from the start.
    pub fn is_entry_variable(&self, name: &str) -> bool {
        self.entry_points
            .iter()
            .any(|ep| matches!(ep, EntryPoint::Variable(n) if n == name))
    }

    /// The classes function/method `name` sanitizes (case-insensitive).
    pub fn sanitized_classes(&self, name: &str) -> Vec<&VulnClass> {
        self.sanitizers
            .iter()
            .filter(|s| s.name.eq_ignore_ascii_case(name))
            .flat_map(|s| s.classes.iter())
            .collect()
    }

    /// Whether `name` is a sanitizer for `class`.
    pub fn is_sanitizer_for(&self, name: &str, class: &VulnClass) -> bool {
        self.sanitizers
            .iter()
            .any(|s| s.name.eq_ignore_ascii_case(name) && s.sanitizes(class))
    }

    /// Whether `name` is a sanitizer for any class.
    pub fn is_sanitizer(&self, name: &str) -> bool {
        self.sanitizers
            .iter()
            .any(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Table IV data: the sinks added to each sub-module for the new
    /// classes, as `(sub-module, class, sink name)` rows.
    pub fn table_iv_rows(&self) -> Vec<(SubModule, VulnClass, String)> {
        let new: BTreeSet<VulnClass> = [
            VulnClass::SessionFixation,
            VulnClass::CommentSpam,
            VulnClass::LdapI,
            VulnClass::XpathI,
        ]
        .into_iter()
        .collect();
        self.sinks
            .iter()
            .filter(|s| new.contains(&s.class))
            .filter_map(|s| match &s.kind {
                SinkKind::Function(name) => {
                    Some((s.class.submodule(), s.class.clone(), name.clone()))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wap_v21_detects_eight_classes() {
        let c = Catalog::wap_v21();
        let acronyms: BTreeSet<_> = c.classes().map(|c| c.acronym()).collect();
        assert_eq!(acronyms.len(), 8);
        assert!(c.has_class(&VulnClass::Sqli));
        assert!(!c.has_class(&VulnClass::LdapI));
        assert!(!c.has_class(&VulnClass::NoSqlI));
    }

    #[test]
    fn wape_adds_table_iv_classes() {
        let c = Catalog::wape();
        for cls in [
            VulnClass::SessionFixation,
            VulnClass::CommentSpam,
            VulnClass::LdapI,
            VulnClass::XpathI,
        ] {
            assert!(c.has_class(&cls), "{cls} missing");
        }
        assert!(!c.has_class(&VulnClass::NoSqlI), "NoSQLI needs its weapon");
    }

    #[test]
    fn wape_full_detects_fifteen_classes() {
        let c = Catalog::wape_full();
        // 8 original + 7 new → acronym count (XSS merged, WPSQLI extra)
        let acronyms: BTreeSet<_> = c.classes().map(|c| c.acronym().to_string()).collect();
        assert!(acronyms.contains("NOSQLI"));
        assert!(acronyms.contains("HI"));
        assert!(acronyms.contains("EI"));
        assert!(acronyms.contains("WPSQLI"));
        // 8 + 7 = 15 paper classes, +1 for the WordPress weapon's class
        assert_eq!(acronyms.len(), 16);
    }

    #[test]
    fn sqli_sinks_and_sanitizers() {
        let c = Catalog::wape();
        assert!(c
            .sinks()
            .any(|s| matches!(&s.kind, SinkKind::Function(f) if f == "mysql_query")));
        assert!(c.is_sanitizer_for("mysql_real_escape_string", &VulnClass::Sqli));
        assert!(c.is_sanitizer_for("MYSQL_REAL_ESCAPE_STRING", &VulnClass::Sqli));
        assert!(!c.is_sanitizer_for("htmlentities", &VulnClass::Sqli));
        assert!(c.is_sanitizer_for("htmlentities", &VulnClass::XssReflected));
    }

    #[test]
    fn weapon_linking_enables_class_and_sinks() {
        let mut c = Catalog::wape();
        assert!(!c.has_class(&VulnClass::NoSqlI));
        c.add_weapon(WeaponConfig::nosqli());
        assert!(c.has_class(&VulnClass::NoSqlI));
        assert!(c
            .sinks()
            .any(|s| matches!(&s.kind, SinkKind::Method { name, .. } if name == "findOne")));
        assert!(c.is_sanitizer_for("mysql_real_escape_string", &VulnClass::NoSqlI));
    }

    #[test]
    fn hei_weapon_maps_sinks_to_two_classes() {
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::hei());
        let header = c
            .sinks()
            .find(|s| matches!(&s.kind, SinkKind::Function(f) if f == "header"))
            .unwrap();
        assert_eq!(header.class, VulnClass::HeaderI);
        let mail = c
            .sinks()
            .find(|s| matches!(&s.kind, SinkKind::Function(f) if f == "mail"))
            .unwrap();
        assert_eq!(mail.class, VulnClass::EmailI);
    }

    #[test]
    fn wpsqli_weapon_entry_points_and_symptoms() {
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::wpsqli());
        assert!(c.is_entry_function("get_query_var"));
        assert!(!c.dynamic_symptoms().is_empty());
        assert!(c.is_sanitizer("esc_sql"));
        assert!(c.is_sanitizer("prepare"));
    }

    #[test]
    fn weapon_lint_rules_are_exposed_and_fingerprinted() {
        let mut c = Catalog::wape();
        assert_eq!(c.lint_rules().count(), 0);
        let plain = c.fingerprint_material();
        c.add_weapon(WeaponConfig::wpsqli());
        let rules: Vec<_> = c.lint_rules().collect();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].id, "wp-unprepared-query");
        assert_eq!(rules[0].function, "query");
        // Declaring a lint rule must invalidate cached analyses.
        assert_ne!(plain, c.fingerprint_material());
    }

    #[test]
    fn user_sanitizer_study() {
        let mut c = Catalog::wape();
        assert!(!c.is_sanitizer("escape"));
        c.add_user_sanitizer("escape", &[VulnClass::Sqli, VulnClass::XssReflected]);
        assert!(c.is_sanitizer_for("escape", &VulnClass::Sqli));
    }

    #[test]
    fn retain_classes_filters_sinks() {
        let mut c = Catalog::wape();
        c.retain_classes(&[VulnClass::Sqli]);
        assert!(c.sinks().all(|s| s.class == VulnClass::Sqli));
        assert!(!c.has_class(&VulnClass::XssReflected));
    }

    #[test]
    fn table_iv_rows_match_paper() {
        let c = Catalog::wape();
        let rows = c.table_iv_rows();
        let sf: Vec<_> = rows
            .iter()
            .filter(|(_, cls, _)| *cls == VulnClass::SessionFixation)
            .map(|(_, _, f)| f.as_str())
            .collect();
        assert_eq!(sf, vec!["setcookie", "setrawcookie", "session_id"]);
        let ldap: Vec<_> = rows
            .iter()
            .filter(|(_, cls, _)| *cls == VulnClass::LdapI)
            .map(|(_, _, f)| f.as_str())
            .collect();
        assert_eq!(
            ldap,
            vec![
                "ldap_add",
                "ldap_delete",
                "ldap_list",
                "ldap_read",
                "ldap_search"
            ]
        );
    }

    #[test]
    fn weapons_enumerate_in_sorted_name_order() {
        let c = Catalog::wape_full();
        let names: Vec<_> = c.weapons().iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["hei", "nosqli", "wpsqli"]);

        // single-weapon linking keeps the list sorted too
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::wpsqli());
        c.add_weapon(WeaponConfig::nosqli());
        c.add_weapon(WeaponConfig::hei());
        let names: Vec<_> = c.weapons().iter().map(|w| w.name.as_str()).collect();
        assert_eq!(names, vec!["hei", "nosqli", "wpsqli"]);
    }

    #[test]
    fn fingerprint_independent_of_weapon_discovery_order() {
        let mut a = Catalog::wape();
        a.add_weapons(vec![
            WeaponConfig::nosqli(),
            WeaponConfig::hei(),
            WeaponConfig::wpsqli(),
        ]);
        let mut b = Catalog::wape();
        b.add_weapons(vec![
            WeaponConfig::wpsqli(),
            WeaponConfig::hei(),
            WeaponConfig::nosqli(),
        ]);
        assert_eq!(a.fingerprint_material(), b.fingerprint_material());
        assert_eq!(
            a.fingerprint_material(),
            Catalog::wape_full().fingerprint_material()
        );
    }

    #[test]
    fn fingerprint_changes_when_catalog_changes() {
        let base = Catalog::wape().fingerprint_material();
        assert_ne!(base, Catalog::wap_v21().fingerprint_material());
        assert_ne!(base, Catalog::wape_full().fingerprint_material());

        let mut edited = Catalog::wape();
        edited.add_user_sanitizer("escape", &[VulnClass::Sqli]);
        assert_ne!(base, edited.fingerprint_material());

        let mut retained = Catalog::wape();
        retained.retain_classes(&[VulnClass::Sqli]);
        assert_ne!(base, retained.fingerprint_material());
    }

    #[test]
    fn entry_point_queries() {
        let c = Catalog::wape();
        assert!(c.is_entry_superglobal("_GET"));
        assert!(c.is_entry_superglobal("_COOKIE"));
        assert!(!c.is_entry_superglobal("GLOBALS"));
        assert!(!c.is_entry_function("rand"));
        let mut c = c;
        c.add_entry_point(EntryPoint::Variable("user_input".into()));
        assert!(c.is_entry_variable("user_input"));
    }
}
