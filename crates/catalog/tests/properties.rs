//! Property-based tests for the catalog and weapon configuration model.

use proptest::prelude::*;
use wap_catalog::{Catalog, EntryPoint, FixTemplateSpec, VulnClass, WeaponConfig, WeaponSink};

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,12}"
}

fn sink_strategy() -> impl Strategy<Value = WeaponSink> {
    (ident(), any::<bool>(), prop::option::of(ident())).prop_map(|(name, method, receiver)| {
        WeaponSink {
            name,
            method,
            receiver: if method { receiver } else { None },
            class: None,
        }
    })
}

fn fix_strategy() -> impl Strategy<Value = FixTemplateSpec> {
    prop_oneof![
        ident().prop_map(|sanitizer| FixTemplateSpec::PhpSanitization { sanitizer }),
        (prop::collection::vec("[!-~]{1,3}", 1..4), " |_").prop_map(|(malicious, neutralizer)| {
            FixTemplateSpec::UserSanitization {
                malicious,
                neutralizer: neutralizer.to_string(),
            }
        }),
        prop::collection::vec("[!-~]{1,3}", 1..4)
            .prop_map(|malicious| FixTemplateSpec::UserValidation { malicious }),
    ]
}

fn weapon_strategy() -> impl Strategy<Value = WeaponConfig> {
    (
        ident(),
        "[A-Z]{2,8}",
        prop::collection::vec(sink_strategy(), 1..5),
        prop::collection::vec(ident(), 0..3),
        fix_strategy(),
    )
        .prop_map(|(name, class_name, sinks, sanitizers, fix)| WeaponConfig {
            name,
            class_name,
            entry_points: vec![],
            sinks,
            sanitizers,
            sanitizer_methods: vec![],
            fix,
            dynamic_symptoms: vec![],
            lint_rules: vec![],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every generated weapon config survives a JSON round trip.
    #[test]
    fn weapon_json_round_trip(w in weapon_strategy()) {
        let json = serde_json::to_string(&w).expect("serializes");
        let back: WeaponConfig = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(w, back);
    }

    /// Linking a weapon enables its class and adds at least one sink;
    /// its sanitizers become known.
    #[test]
    fn weapon_linking_enables_class(w in weapon_strategy()) {
        let mut c = Catalog::wape();
        let before = c.sinks().count();
        c.add_weapon(w.clone());
        prop_assert!(c.has_class(&w.class()));
        prop_assert!(c.sinks().count() >= before + 1);
        for s in &w.sanitizers {
            prop_assert!(c.is_sanitizer(s));
        }
    }

    /// retain_classes never leaves sinks of disabled classes behind.
    #[test]
    fn retain_is_consistent(keep_sqli in any::<bool>(), keep_xss in any::<bool>()) {
        let mut keep = Vec::new();
        if keep_sqli { keep.push(VulnClass::Sqli); }
        if keep_xss { keep.push(VulnClass::XssReflected); }
        let mut c = Catalog::wape_full();
        c.retain_classes(&keep);
        for s in c.sinks() {
            prop_assert!(keep.contains(&s.class));
        }
    }

    /// Entry point queries match what was added.
    #[test]
    fn entry_points_round_trip(names in prop::collection::vec(ident(), 1..5)) {
        let mut c = Catalog::empty();
        for n in &names {
            c.add_entry_point(EntryPoint::FunctionReturn(n.clone()));
        }
        for n in &names {
            prop_assert!(c.is_entry_function(n));
            prop_assert!(!c.is_entry_variable(n));
        }
        prop_assert!(!c.is_entry_function("definitely_not_added_fn"));
    }

    /// resolve_class is total and stable: resolving twice gives the same
    /// class, and resolving an acronym is idempotent.
    #[test]
    fn resolve_class_total(acr in "[A-Za-z]{1,10}") {
        let a = WeaponConfig::resolve_class(&acr);
        let b = WeaponConfig::resolve_class(&acr);
        prop_assert_eq!(a.clone(), b);
        let re = WeaponConfig::resolve_class(a.acronym());
        prop_assert_eq!(re.acronym(), a.acronym());
    }
}
