//! # wap-obs — structured tracing and metrics for the wap pipeline
//!
//! A zero-dependency observability layer shared by every crate in the
//! workspace. It provides three primitives:
//!
//! * [`Collector`] — a thread-safe sink for [`Span`]s (monotonic
//!   start/stop timings labelled with a [`Phase`], an optional file, and
//!   a job id) and [`Event`]s (point-in-time counters such as cache
//!   hits). A collector is either *enabled* (records everything) or
//!   *disabled* (every API is an inert no-op costing one branch), so the
//!   instrumented pipeline pays nothing when tracing is off.
//! * [`Histogram`] — a fixed-bucket, atomically updated latency
//!   histogram in the Prometheus exposition style, used by `wap-serve`'s
//!   `/metrics` endpoint.
//! * an NDJSON trace writer ([`Collector::render_ndjson`]) emitting a
//!   schema-versioned span log (`wap-trace-v1`) consumed by
//!   `scripts/trace_assert.jq`.
//!
//! ## Determinism contract
//!
//! Tracing must never change analysis *output*: the collector only
//! observes — it is never consulted by the pipeline — so findings and
//! machine-format report bytes are bit-identical with tracing on or off
//! at any worker count. The trace itself is *not* deterministic (it
//! contains wall-clock durations and reflects scheduling), which is why
//! it is a separate artifact and never part of a report.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod mem;

pub use mem::{allocations_now, peak_rss_bytes, CountingAlloc};

/// Schema identifier stamped on the first line of every NDJSON trace.
pub const TRACE_SCHEMA: &str = "wap-trace-v1";

/// A pipeline phase label for spans and [`ScanStats`-style] aggregation.
///
/// The variants mirror the stages of the WAP pipeline: lexing/parsing,
/// the per-file taint pass (phase A), the interprocedural summary merge
/// barrier, top-level execution (phase B), symptom collection + committee
/// vote, false-positive prediction, fixing, and cache probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Lexing and parsing a source file.
    Parse,
    /// Per-file taint summarization (interprocedural pass A).
    Taint,
    /// Merging per-file function summaries at the pass barrier.
    SummaryMerge,
    /// Top-level execution against merged summaries (pass B).
    TopLevelExec,
    /// Symptom collection and the committee vote on one candidate.
    Vote,
    /// The false-positive prediction phase as a whole.
    Predict,
    /// Applying a fix to a vulnerable file.
    Fix,
    /// Incremental-cache probe and (de)serialization overhead.
    Cache,
    /// Lowering parsed sources into control-flow graphs (`wap-cfg`).
    Cfg,
    /// Running the lint rule engine over the control-flow graphs.
    Lint,
    /// One live re-analysis revision (a `wap watch` or `wap lsp` edit
    /// cycle through the incremental path).
    Live,
    /// Assembling and compiling rule-pack rule sets (`wap-rules`).
    Rules,
    /// Interprocedural constant/string value analysis (`wap-cfg::values`).
    Values,
}

impl Phase {
    /// Number of phases (the length of [`Phase::ALL`]).
    pub const COUNT: usize = 13;

    /// Every phase, in pipeline order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Parse,
        Phase::Taint,
        Phase::SummaryMerge,
        Phase::TopLevelExec,
        Phase::Vote,
        Phase::Predict,
        Phase::Fix,
        Phase::Cache,
        Phase::Cfg,
        Phase::Lint,
        Phase::Live,
        Phase::Rules,
        Phase::Values,
    ];

    /// Stable snake_case name used in traces and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Taint => "taint",
            Phase::SummaryMerge => "summary_merge",
            Phase::TopLevelExec => "toplevel_exec",
            Phase::Vote => "vote",
            Phase::Predict => "predict",
            Phase::Fix => "fix",
            Phase::Cache => "cache",
            Phase::Cfg => "cfg",
            Phase::Lint => "lint",
            Phase::Live => "live",
            Phase::Rules => "rules",
            Phase::Values => "values",
        }
    }

    /// Index into a `[u64; Phase::COUNT]` table.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// A completed timed region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Pipeline phase.
    pub phase: Phase,
    /// File the work was for, when the phase is per-file.
    pub file: Option<String>,
    /// Job (scan) the span belongs to; collectors shared across scans —
    /// as in `wap-serve` — disambiguate concurrent scans with this.
    pub job: u64,
    /// Nanoseconds since the collector's epoch when the span started.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// A point-in-time occurrence (e.g. one cache hit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Event name, e.g. `cache_hit`.
    pub name: &'static str,
    /// File the event concerns, when applicable.
    pub file: Option<String>,
    /// Job (scan) the event belongs to.
    pub job: u64,
    /// Nanoseconds since the collector's epoch.
    pub at_ns: u64,
}

/// One trace record: a span or an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A completed timed region.
    Span(Span),
    /// A point-in-time occurrence.
    Event(Event),
}

/// Thread-safe span/event sink.
///
/// Cheap to share by reference across worker threads: recording takes one
/// short mutex hold, and a *disabled* collector never touches the lock.
#[derive(Debug)]
pub struct Collector {
    enabled: bool,
    epoch: Instant,
    next_job: AtomicU64,
    records: Mutex<Vec<Record>>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new(false)
    }
}

impl Collector {
    /// A collector; `enabled = false` makes every recording API a no-op.
    pub fn new(enabled: bool) -> Self {
        Collector {
            enabled,
            epoch: Instant::now(),
            next_job: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
        }
    }

    /// Whether this collector records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts a new job (one scan) and returns its recording handle.
    /// Job ids are unique for the collector's lifetime.
    pub fn job(&self) -> JobHandle<'_> {
        JobHandle {
            collector: self,
            job: self.next_job.fetch_add(1, Ordering::Relaxed),
        }
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn push(&self, record: Record) {
        self.records.lock().expect("obs lock").push(record);
    }

    /// A snapshot of everything recorded so far.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().expect("obs lock").clone()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.lock().expect("obs lock").len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all recorded spans and events (job ids keep advancing).
    pub fn clear(&self) {
        self.records.lock().expect("obs lock").clear();
    }

    /// How many events named `name` were recorded.
    pub fn event_count(&self, name: &str) -> u64 {
        self.records
            .lock()
            .expect("obs lock")
            .iter()
            .filter(|r| matches!(r, Record::Event(e) if e.name == name))
            .count() as u64
    }

    /// Total span nanoseconds per file for one job, sorted by descending
    /// duration (ties broken by file name for determinism of the *shape*
    /// of the output; the durations themselves are wall-clock).
    pub fn file_totals(&self, job: u64) -> Vec<(String, u64)> {
        let mut by_file: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for r in self.records.lock().expect("obs lock").iter() {
            if let Record::Span(s) = r {
                if s.job == job {
                    if let Some(file) = &s.file {
                        *by_file.entry(file.clone()).or_insert(0) += s.dur_ns;
                    }
                }
            }
        }
        let mut totals: Vec<(String, u64)> = by_file.into_iter().collect();
        totals.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        totals
    }

    /// Total span nanoseconds per phase for one job.
    pub fn phase_totals(&self, job: u64) -> [u64; Phase::COUNT] {
        let mut totals = [0u64; Phase::COUNT];
        for r in self.records.lock().expect("obs lock").iter() {
            if let Record::Span(s) = r {
                if s.job == job {
                    totals[s.phase.index()] += s.dur_ns;
                }
            }
        }
        totals
    }

    /// Renders the schema-versioned NDJSON trace: a meta line first, then
    /// one object per record, spans and events ordered by start time.
    pub fn render_ndjson(&self) -> String {
        let mut records = self.records();
        records.sort_by_key(|r| match r {
            Record::Span(s) => (s.start_ns, s.job),
            Record::Event(e) => (e.at_ns, e.job),
        });
        let spans = records.iter().filter(|r| matches!(r, Record::Span(_))).count();
        let events = records.len() - spans;
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"{TRACE_SCHEMA}\",\"kind\":\"meta\",\"spans\":{spans},\"events\":{events}}}\n"
        ));
        for r in &records {
            match r {
                Record::Span(s) => {
                    out.push_str(&format!(
                        "{{\"kind\":\"span\",\"phase\":\"{}\",\"file\":{},\"job\":{},\"start_ns\":{},\"dur_ns\":{}}}\n",
                        s.phase.name(),
                        json_opt_str(s.file.as_deref()),
                        s.job,
                        s.start_ns,
                        s.dur_ns
                    ));
                }
                Record::Event(e) => {
                    out.push_str(&format!(
                        "{{\"kind\":\"event\",\"name\":\"{}\",\"file\":{},\"job\":{},\"at_ns\":{}}}\n",
                        e.name,
                        json_opt_str(e.file.as_deref()),
                        e.job,
                        e.at_ns
                    ));
                }
            }
        }
        out
    }
}

/// A process-wide disabled collector for call sites that need *some*
/// collector but have tracing off (e.g. the plain `analyze` helpers).
pub fn disabled() -> &'static Collector {
    static DISABLED: OnceLock<Collector> = OnceLock::new();
    DISABLED.get_or_init(|| Collector::new(false))
}

fn json_opt_str(s: Option<&str>) -> String {
    match s {
        None => "null".to_string(),
        Some(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
    }
}

/// A copyable per-scan recording handle. All span/event APIs funnel
/// through this so every record carries the scan's job id — collectors
/// shared across concurrent scans (the serve executors) stay attributable.
#[derive(Debug, Clone, Copy)]
pub struct JobHandle<'a> {
    collector: &'a Collector,
    job: u64,
}

impl<'a> JobHandle<'a> {
    /// The job id records made through this handle carry.
    pub fn id(&self) -> u64 {
        self.job
    }

    /// Whether the underlying collector records anything.
    pub fn enabled(&self) -> bool {
        self.collector.enabled
    }

    /// The collector this handle records into.
    pub fn collector(&self) -> &'a Collector {
        self.collector
    }

    /// Starts a phase span; the span is recorded when the guard drops.
    pub fn span(&self, phase: Phase) -> SpanGuard<'a> {
        self.span_inner(phase, None)
    }

    /// Starts a per-file phase span.
    pub fn span_file(&self, phase: Phase, file: &str) -> SpanGuard<'a> {
        self.span_inner(phase, Some(file.to_string()))
    }

    fn span_inner(&self, phase: Phase, file: Option<String>) -> SpanGuard<'a> {
        if !self.collector.enabled {
            return SpanGuard { active: None };
        }
        SpanGuard {
            active: Some(ActiveSpan {
                collector: self.collector,
                phase,
                file,
                job: self.job,
                start_ns: self.collector.now_ns(),
            }),
        }
    }

    /// Records a point-in-time event.
    pub fn event(&self, name: &'static str) {
        self.event_inner(name, None);
    }

    /// Records a point-in-time event about one file.
    pub fn event_file(&self, name: &'static str, file: &str) {
        self.event_inner(name, Some(file.to_string()));
    }

    fn event_inner(&self, name: &'static str, file: Option<String>) {
        if !self.collector.enabled {
            return;
        }
        self.collector.push(Record::Event(Event {
            name,
            file,
            job: self.job,
            at_ns: self.collector.now_ns(),
        }));
    }
}

#[derive(Debug)]
struct ActiveSpan<'a> {
    collector: &'a Collector,
    phase: Phase,
    file: Option<String>,
    job: u64,
    start_ns: u64,
}

/// RAII span: records a [`Span`] when dropped. Inert (no allocation, no
/// lock) when the collector is disabled.
#[derive(Debug)]
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let end = active.collector.now_ns();
            active.collector.push(Record::Span(Span {
                phase: active.phase,
                file: active.file,
                job: active.job,
                start_ns: active.start_ns,
                dur_ns: end.saturating_sub(active.start_ns),
            }));
        }
    }
}

/// Default latency bucket upper bounds, in seconds (Prometheus `le`).
pub const DEFAULT_BUCKETS: [f64; 13] = [
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
];

/// A fixed-bucket latency histogram with atomic updates, shaped for the
/// Prometheus text exposition (`_bucket`/`_sum`/`_count` series).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One count per bound, plus the `+Inf` overflow bucket at the end.
    counts: Vec<AtomicU64>,
    sum_ns: AtomicU64,
    total: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(&DEFAULT_BUCKETS)
    }
}

impl Histogram {
    /// A histogram over the given upper bounds (seconds, ascending).
    pub fn new(bounds: &'static [f64]) -> Self {
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let secs = ns as f64 / 1e9;
        let idx = self
            .bounds
            .iter()
            .position(|b| secs <= *b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Appends the `_bucket`/`_sum`/`_count` series for one labelled
    /// histogram to a Prometheus exposition. `labels` is either empty or
    /// a rendered label list without braces, e.g. `phase="parse"`.
    pub fn render_into(&self, out: &mut String, name: &str, labels: &str) {
        let sep = if labels.is_empty() { "" } else { "," };
        let bare = |l: &str| {
            if l.is_empty() {
                String::new()
            } else {
                format!("{{{l}}}")
            }
        };
        let mut cumulative = 0u64;
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        out.push_str(&format!(
            "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}\n"
        ));
        let sum_secs = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9;
        out.push_str(&format!("{name}_sum{} {sum_secs:.9}\n", bare(labels)));
        out.push_str(&format!(
            "{name}_count{} {}\n",
            bare(labels),
            self.total.load(Ordering::Relaxed)
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_collector_records_spans_and_events() {
        let c = Collector::new(true);
        let job = c.job();
        {
            let _s = job.span_file(Phase::Parse, "a.php");
            job.event_file("cache_miss", "a.php");
        }
        {
            let _s = job.span(Phase::Predict);
        }
        let records = c.records();
        assert_eq!(records.len(), 3);
        assert_eq!(c.event_count("cache_miss"), 1);
        let span = records
            .iter()
            .find_map(|r| match r {
                Record::Span(s) if s.phase == Phase::Parse => Some(s),
                _ => None,
            })
            .expect("parse span recorded");
        assert_eq!(span.file.as_deref(), Some("a.php"));
        assert_eq!(span.job, job.id());
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new(false);
        let job = c.job();
        {
            let _s = job.span_file(Phase::Taint, "x.php");
            job.event("cache_hit");
        }
        assert!(c.is_empty());
        assert!(!job.enabled());
        // the shared disabled collector behaves the same
        let d = disabled().job();
        let _s = d.span(Phase::Fix);
        drop(_s);
        assert_eq!(disabled().event_count("anything"), 0);
    }

    #[test]
    fn job_ids_are_unique_and_label_records() {
        let c = Collector::new(true);
        let j0 = c.job();
        let j1 = c.job();
        assert_ne!(j0.id(), j1.id());
        drop(j0.span_file(Phase::Taint, "a.php"));
        drop(j1.span_file(Phase::Taint, "a.php"));
        assert_eq!(c.file_totals(j0.id()).len(), 1);
        assert_eq!(c.file_totals(j1.id()).len(), 1);
    }

    #[test]
    fn file_totals_aggregate_and_sort_by_duration() {
        let c = Collector::new(true);
        let job = c.job();
        // synthesize spans directly so durations are controlled
        c.push(Record::Span(Span {
            phase: Phase::Taint,
            file: Some("small.php".into()),
            job: job.id(),
            start_ns: 0,
            dur_ns: 10,
        }));
        c.push(Record::Span(Span {
            phase: Phase::Parse,
            file: Some("big.php".into()),
            job: job.id(),
            start_ns: 0,
            dur_ns: 70,
        }));
        c.push(Record::Span(Span {
            phase: Phase::TopLevelExec,
            file: Some("big.php".into()),
            job: job.id(),
            start_ns: 80,
            dur_ns: 30,
        }));
        let totals = c.file_totals(job.id());
        assert_eq!(
            totals,
            vec![("big.php".to_string(), 100), ("small.php".to_string(), 10)]
        );
        let phases = c.phase_totals(job.id());
        assert_eq!(phases[Phase::Parse.index()], 70);
        assert_eq!(phases[Phase::Taint.index()], 10);
    }

    #[test]
    fn ndjson_trace_has_meta_line_and_valid_records() {
        let c = Collector::new(true);
        let job = c.job();
        drop(job.span_file(Phase::Parse, "with \"quote\".php"));
        job.event("cache_hit");
        let trace = c.render_ndjson();
        let lines: Vec<&str> = trace.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"schema\":\"wap-trace-v1\""));
        assert!(lines[0].contains("\"spans\":1"));
        assert!(lines[0].contains("\"events\":1"));
        assert!(trace.contains("\\\"quote\\\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_sum_consistent() {
        let h = Histogram::default();
        h.observe_ns(500_000); // 0.5 ms -> first bucket
        h.observe_ns(30_000_000); // 30 ms -> le=0.05
        h.observe_ns(60_000_000_000); // 60 s -> +Inf only
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 60_030_500_000);
        let mut out = String::new();
        h.render_into(&mut out, "t_seconds", "");
        assert!(out.contains("t_seconds_bucket{le=\"0.001\"} 1\n"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"0.05\"} 2\n"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"10\"} 2\n"), "{out}");
        assert!(out.contains("t_seconds_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("t_seconds_count 3\n"), "{out}");
        let mut labelled = String::new();
        h.render_into(&mut labelled, "t_seconds", "phase=\"parse\"");
        assert!(
            labelled.contains("t_seconds_bucket{phase=\"parse\",le=\"+Inf\"} 3\n"),
            "{labelled}"
        );
        assert!(labelled.contains("t_seconds_sum{phase=\"parse\"} "), "{labelled}");
    }

    #[test]
    fn spans_are_monotonic() {
        let c = Collector::new(true);
        let job = c.job();
        let first = job.span(Phase::Parse);
        drop(first);
        let second = job.span(Phase::Taint);
        drop(second);
        let records = c.records();
        let starts: Vec<u64> = records
            .iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s.start_ns),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 2);
        assert!(starts[0] <= starts[1]);
    }
}
