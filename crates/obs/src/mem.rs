//! Process memory and allocation accounting for the cold-path summary.
//!
//! Two zero-dependency probes, both observation-only (they can never
//! influence findings or machine-format bytes):
//!
//! * [`CountingAlloc`] — a global-allocator wrapper around the system
//!   allocator that counts every allocating call into a process-wide
//!   atomic. A *binary* opts in by installing it with
//!   `#[global_allocator]`; when it is not installed (unit tests,
//!   library consumers) the counter simply stays at zero and the
//!   pipeline reports no allocation figure.
//! * [`peak_rss_bytes`] — the process's peak resident set size, read
//!   from `/proc/self/status` (`VmHWM`) on Linux; 0 where unknown.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A system-allocator wrapper counting every allocating call
/// (`alloc`/`alloc_zeroed`/`realloc`). Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: wap_obs::CountingAlloc = wap_obs::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the only
// addition is a relaxed atomic increment, which allocates nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocating calls since process start. Stays 0 unless the
/// running binary installed [`CountingAlloc`]; diff two readings to
/// attribute allocations to a region of work.
pub fn allocations_now() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The process's peak resident set size in bytes (Linux `VmHWM`), or 0
/// when the platform does not expose it.
pub fn peak_rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kb: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_counter_is_monotonic() {
        let a = allocations_now();
        let _v: Vec<u8> = Vec::with_capacity(4096);
        let b = allocations_now();
        // the test binary may or may not have the allocator installed;
        // either way the counter never goes backwards
        assert!(b >= a);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        assert!(peak_rss_bytes() > 0, "VmHWM must parse on Linux");
    }
}
