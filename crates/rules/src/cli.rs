//! The `wap rules` subcommand: install/update/list/remove versioned rule
//! packs in the rules directory.

use crate::pack::RulePack;
use crate::store::{default_rules_dir, Store};
use std::path::PathBuf;

/// Usage text for `wap rules`.
pub const RULES_USAGE: &str = "\
usage: wap rules <COMMAND> [ARGS] [--rules-dir <DIR>]

Manage versioned rule packs (see `wap scan --rules <pack>`).

COMMANDS:
    install <PATH|NAME>   Install a pack from a manifest file, directory,
                          or tarball (pack.json / pack.yaml / pack.yml,
                          schema-checked). NAME installs a builtin starter
                          pack (available: wordpress, generic-php).
    update <PATH|NAME>    Alias of install: re-reads the source and
                          overwrites the stored name@version.
    list                  List installed packs with versions, rule counts,
                          matcher kinds, and fingerprints.
    remove <NAME[@VER]>   Remove one version, or every version of a pack.

OPTIONS:
    --rules-dir <DIR>     Pack store location (default: $WAP_RULES_DIR or
                          .wap-rules)
";

/// Runs `wap rules` with the given arguments (everything after the
/// `rules` word); returns the process exit code.
pub fn cli_main(args: Vec<String>) -> i32 {
    match run(args) {
        Ok(output) => {
            print!("{output}");
            0
        }
        Err(message) => {
            eprintln!("wap rules: {message}");
            2
        }
    }
}

fn run(args: Vec<String>) -> Result<String, String> {
    let mut rules_dir: Option<PathBuf> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--rules-dir" => {
                let dir = it.next().ok_or("--rules-dir needs a value")?;
                rules_dir = Some(PathBuf::from(dir));
            }
            "-h" | "--help" => return Ok(RULES_USAGE.to_string()),
            _ => positional.push(arg),
        }
    }
    let store = Store::new(rules_dir.unwrap_or_else(default_rules_dir));
    let mut positional = positional.into_iter();
    let command = positional.next().ok_or(RULES_USAGE.trim_end())?;
    match command.as_str() {
        "install" | "update" => {
            let source = positional
                .next()
                .ok_or(format!("{command} needs a pack path or starter name"))?;
            let installed = if let Some(starter) = starter_pack(&source) {
                store.install_pack(&starter)?
            } else {
                store.install(&PathBuf::from(&source))?
            };
            Ok(format!(
                "installed {}@{} ({} rules, fingerprint {})\n",
                installed.name, installed.version, installed.rules, installed.fingerprint
            ))
        }
        "list" => {
            let packs = store.list()?;
            if packs.is_empty() {
                return Ok(format!(
                    "no rule packs installed under {}\n",
                    store.root().display()
                ));
            }
            let mut out = String::new();
            for p in packs {
                // the kind summary comes from re-reading the stored
                // manifest; a pack that stopped parsing still lists
                let kinds = match store.resolve(&format!("{}@{}", p.name, p.version)) {
                    Ok(pack) => {
                        let mut ks: Vec<&'static str> =
                            pack.rules.iter().map(|r| r.matcher.kind_name()).collect();
                        ks.sort_unstable();
                        ks.dedup();
                        ks.join(",")
                    }
                    Err(_) => "?".to_string(),
                };
                out.push_str(&format!(
                    "{}@{} rules={} kinds={} fingerprint={}\n",
                    p.name, p.version, p.rules, kinds, p.fingerprint
                ));
            }
            Ok(out)
        }
        "remove" => {
            let reference = positional.next().ok_or("remove needs a pack name")?;
            let removed = store.remove(&reference)?;
            Ok(format!(
                "removed {removed} version{} of {reference}\n",
                if removed == 1 { "" } else { "s" }
            ))
        }
        other => Err(format!("unknown command '{other}'\n\n{RULES_USAGE}")),
    }
}

/// Builtin starter packs installable by name.
fn starter_pack(name: &str) -> Option<RulePack> {
    match name {
        "wordpress" => Some(RulePack::wordpress()),
        "generic-php" => Some(RulePack::generic_php()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "wap-rules-cli-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rules(args: &[&str]) -> Result<String, String> {
        run(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn starter_install_list_remove_flow() {
        let dir = temp_dir("flow");
        let dir_arg = dir.to_string_lossy().to_string();
        let out = rules(&["install", "wordpress", "--rules-dir", &dir_arg]).unwrap();
        assert!(out.contains("installed wordpress@1.0.0"), "{out}");
        let listed = rules(&["list", "--rules-dir", &dir_arg]).unwrap();
        assert!(
            listed.contains("wordpress@1.0.0 rules=3 kinds=call_with_arg,pattern fingerprint="),
            "{listed}"
        );
        let removed = rules(&["remove", "wordpress", "--rules-dir", &dir_arg]).unwrap();
        assert!(removed.contains("removed 1 version of wordpress"), "{removed}");
        let empty = rules(&["list", "--rules-dir", &dir_arg]).unwrap();
        assert!(empty.contains("no rule packs installed"), "{empty}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_name_the_problem() {
        let dir = temp_dir("errors");
        let dir_arg = dir.to_string_lossy().to_string();
        assert!(rules(&[]).unwrap_err().contains("usage: wap rules"));
        assert!(rules(&["frobnicate"]).unwrap_err().contains("unknown command"));
        assert!(rules(&["remove", "nope", "--rules-dir", &dir_arg])
            .unwrap_err()
            .contains("not installed"));
        assert!(rules(&["install"]).unwrap_err().contains("install needs"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn help_prints_usage() {
        assert_eq!(rules(&["--help"]).unwrap(), RULES_USAGE);
        assert!(RULES_USAGE.contains("--rules-dir"));
        assert!(RULES_USAGE.contains("WAP_RULES_DIR"));
    }
}
