//! The on-disk pack store: `<rules_dir>/<name>/<version>/pack.json`,
//! always written canonically so a pack's fingerprint can be recomputed
//! from the store bytes alone. Installation accepts a manifest file, a
//! directory containing one, or an uncompressed tarball; manifests are
//! named `pack.json` / `pack.yaml` / `pack.yml`.

use crate::pack::{version_key, RulePack};
use crate::tar;
use std::fs;
use std::path::{Path, PathBuf};

/// Manifest file names recognized inside directories and tarballs, in
/// preference order.
pub const MANIFEST_NAMES: [&str; 3] = ["pack.json", "pack.yaml", "pack.yml"];

/// The rules directory: `WAP_RULES_DIR` or `.wap-rules` under the
/// current directory.
pub fn default_rules_dir() -> PathBuf {
    std::env::var_os("WAP_RULES_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(".wap-rules"))
}

/// One installed pack, as listed by [`Store::list`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstalledPack {
    /// Pack name.
    pub name: String,
    /// Pack version.
    pub version: String,
    /// Deterministic pack fingerprint.
    pub fingerprint: String,
    /// Number of rules the pack declares.
    pub rules: usize,
}

/// A pack store rooted at a rules directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Opens (without creating) a store at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Store {
        Store { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Installs a pack from a manifest file, a directory containing one,
    /// or an uncompressed tarball. Re-installing an existing
    /// name@version overwrites it (that is also `update`).
    ///
    /// # Errors
    ///
    /// Returns a message when the source cannot be read, contains no
    /// manifest, or fails validation.
    pub fn install(&self, source: &Path) -> Result<InstalledPack, String> {
        let manifest = read_manifest(source)?;
        let pack = RulePack::parse(&manifest)
            .map_err(|e| format!("{}: {e}", source.display()))?;
        self.install_pack(&pack)
    }

    /// Installs an in-memory pack (used for builtin starter packs).
    ///
    /// # Errors
    ///
    /// Returns a message when the store directory cannot be written.
    pub fn install_pack(&self, pack: &RulePack) -> Result<InstalledPack, String> {
        let dir = self.root.join(&pack.name).join(&pack.version);
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = dir.join("pack.json");
        let tmp = dir.join(".pack.json.tmp");
        fs::write(&tmp, pack.to_canonical_json())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &path).map_err(|e| format!("rename {}: {e}", path.display()))?;
        Ok(InstalledPack {
            name: pack.name.clone(),
            version: pack.version.clone(),
            fingerprint: pack.fingerprint(),
            rules: pack.rules.len(),
        })
    }

    /// Lists installed packs, sorted by name then descending version.
    ///
    /// # Errors
    ///
    /// Returns a message when a stored manifest is unreadable or corrupt.
    pub fn list(&self) -> Result<Vec<InstalledPack>, String> {
        let mut out = Vec::new();
        let Ok(names) = fs::read_dir(&self.root) else {
            return Ok(out); // no store yet: nothing installed
        };
        let mut name_dirs: Vec<PathBuf> = names
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        name_dirs.sort();
        for name_dir in name_dirs {
            let mut versions: Vec<PathBuf> = fs::read_dir(&name_dir)
                .map_err(|e| format!("read {}: {e}", name_dir.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir() && p.join("pack.json").is_file())
                .collect();
            versions.sort_by_key(|p| {
                version_key(&p.file_name().unwrap_or_default().to_string_lossy())
                    .unwrap_or_default()
            });
            versions.reverse();
            for vdir in versions {
                let pack = load_dir(&vdir)?;
                out.push(InstalledPack {
                    fingerprint: pack.fingerprint(),
                    name: pack.name,
                    version: pack.version,
                    rules: pack.rules.len(),
                });
            }
        }
        Ok(out)
    }

    /// Resolves a `name` or `name@version` reference to a loaded pack;
    /// a bare name picks the highest installed version.
    ///
    /// # Errors
    ///
    /// Returns a message when the pack (or version) is not installed.
    pub fn resolve(&self, reference: &str) -> Result<RulePack, String> {
        let (name, version) = match reference.split_once('@') {
            Some((n, v)) => (n, Some(v)),
            None => (reference, None),
        };
        let name_dir = self.root.join(name);
        match version {
            Some(v) => {
                let dir = name_dir.join(v);
                if !dir.join("pack.json").is_file() {
                    return Err(format!("rule pack '{name}@{v}' is not installed"));
                }
                load_dir(&dir)
            }
            None => {
                let mut versions: Vec<(Vec<u64>, PathBuf)> = fs::read_dir(&name_dir)
                    .ok()
                    .into_iter()
                    .flatten()
                    .filter_map(|e| e.ok().map(|e| e.path()))
                    .filter(|p| p.join("pack.json").is_file())
                    .filter_map(|p| {
                        let v = p.file_name()?.to_string_lossy().to_string();
                        Some((version_key(&v)?, p))
                    })
                    .collect();
                versions.sort();
                let Some((_, dir)) = versions.pop() else {
                    return Err(format!("rule pack '{name}' is not installed"));
                };
                load_dir(&dir)
            }
        }
    }

    /// Removes a pack (`name` removes every version; `name@version` one).
    /// Returns how many versions were removed.
    ///
    /// # Errors
    ///
    /// Returns a message when nothing matched or removal failed.
    pub fn remove(&self, reference: &str) -> Result<usize, String> {
        let (name, version) = match reference.split_once('@') {
            Some((n, v)) => (n, Some(v)),
            None => (reference, None),
        };
        let name_dir = self.root.join(name);
        if !name_dir.is_dir() {
            return Err(format!("rule pack '{name}' is not installed"));
        }
        let removed = match version {
            Some(v) => {
                let dir = name_dir.join(v);
                if !dir.is_dir() {
                    return Err(format!("rule pack '{name}@{v}' is not installed"));
                }
                fs::remove_dir_all(&dir).map_err(|e| format!("remove {}: {e}", dir.display()))?;
                1
            }
            None => {
                let count = fs::read_dir(&name_dir)
                    .map_err(|e| format!("read {}: {e}", name_dir.display()))?
                    .filter_map(|e| e.ok())
                    .filter(|e| e.path().join("pack.json").is_file())
                    .count();
                fs::remove_dir_all(&name_dir)
                    .map_err(|e| format!("remove {}: {e}", name_dir.display()))?;
                count.max(1)
            }
        };
        // drop the now-empty name dir so list() stays clean
        if version.is_some() {
            let empty = fs::read_dir(&name_dir)
                .map(|mut d| d.next().is_none())
                .unwrap_or(false);
            if empty {
                let _ = fs::remove_dir(&name_dir);
            }
        }
        Ok(removed)
    }
}

fn load_dir(dir: &Path) -> Result<RulePack, String> {
    let path = dir.join("pack.json");
    let text =
        fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
    RulePack::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Reads the manifest text out of a file, directory, or tarball source.
fn read_manifest(source: &Path) -> Result<String, String> {
    if source.is_dir() {
        for name in MANIFEST_NAMES {
            let candidate = source.join(name);
            if candidate.is_file() {
                return fs::read_to_string(&candidate)
                    .map_err(|e| format!("read {}: {e}", candidate.display()));
            }
        }
        return Err(format!(
            "{}: no manifest found (expected one of {})",
            source.display(),
            MANIFEST_NAMES.join(", ")
        ));
    }
    let bytes = fs::read(source).map_err(|e| format!("read {}: {e}", source.display()))?;
    let name = source
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_default();
    if MANIFEST_NAMES.iter().any(|m| name == *m)
        || name.ends_with(".json")
        || name.ends_with(".yaml")
        || name.ends_with(".yml")
    {
        return String::from_utf8(bytes).map_err(|_| format!("{name}: not UTF-8"));
    }
    // otherwise: a tarball — pick the shallowest manifest entry
    let entries = tar::entries(&bytes).map_err(|e| format!("{name}: {e}"))?;
    let mut candidates: Vec<&tar::Entry> = entries
        .iter()
        .filter(|e| {
            let base = e.path.rsplit('/').next().unwrap_or(&e.path);
            MANIFEST_NAMES.contains(&base)
        })
        .collect();
    candidates.sort_by_key(|e| (e.path.matches('/').count(), e.path.clone()));
    let Some(entry) = candidates.first() else {
        return Err(format!(
            "{name}: no manifest in archive (expected one of {})",
            MANIFEST_NAMES.join(", ")
        ));
    };
    String::from_utf8(entry.data.clone()).map_err(|_| format!("{}: not UTF-8", entry.path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "wap-rules-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::new(dir)
    }

    #[test]
    fn install_list_resolve_remove_round_trip() {
        let store = temp_store("roundtrip");
        let installed = store.install_pack(&RulePack::wordpress()).unwrap();
        assert_eq!(installed.name, "wordpress");
        assert_eq!(installed.rules, 3);
        assert_eq!(installed.fingerprint, RulePack::wordpress().fingerprint());

        let listed = store.list().unwrap();
        assert_eq!(listed, vec![installed]);

        let resolved = store.resolve("wordpress").unwrap();
        assert_eq!(resolved, RulePack::wordpress());
        assert!(store.resolve("wordpress@9.9.9").is_err());
        assert!(store.resolve("nope").is_err());

        assert_eq!(store.remove("wordpress").unwrap(), 1);
        assert!(store.list().unwrap().is_empty());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn bare_name_resolves_highest_version() {
        let store = temp_store("versions");
        let mut v1 = RulePack::wordpress();
        v1.version = "1.2.0".to_string();
        let mut v2 = RulePack::wordpress();
        v2.version = "1.10.0".to_string();
        store.install_pack(&v1).unwrap();
        store.install_pack(&v2).unwrap();
        assert_eq!(store.resolve("wordpress").unwrap().version, "1.10.0");
        assert_eq!(store.resolve("wordpress@1.2.0").unwrap().version, "1.2.0");
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].version, "1.10.0", "descending version order");
        assert_eq!(store.remove("wordpress@1.2.0").unwrap(), 1);
        assert_eq!(store.list().unwrap().len(), 1);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn installs_from_dir_file_and_tarball() {
        let store = temp_store("sources");
        let scratch = store.root().join("src");
        fs::create_dir_all(&scratch).unwrap();
        let manifest = RulePack::wordpress().to_canonical_json();

        // directory source
        let dir = scratch.join("pack-dir");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("pack.json"), &manifest).unwrap();
        assert_eq!(store.install(&dir).unwrap().name, "wordpress");

        // bare manifest file
        let file = scratch.join("other.json");
        fs::write(&file, manifest.replace("wordpress", "othername")).unwrap();
        assert_eq!(store.install(&file).unwrap().name, "othername");

        // tarball with the manifest nested one level down
        let tarball = scratch.join("pack.tar");
        fs::write(
            &tarball,
            tar::build(&[("wordpress/pack.json", manifest.as_bytes())]),
        )
        .unwrap();
        assert_eq!(store.install(&tarball).unwrap().name, "wordpress");

        assert!(store
            .install(&scratch.join("missing.tar"))
            .unwrap_err()
            .contains("read"));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupt_stored_manifest_is_reported() {
        let store = temp_store("corrupt");
        store.install_pack(&RulePack::wordpress()).unwrap();
        let path = store.root().join("wordpress/1.0.0/pack.json");
        fs::write(&path, "{not json").unwrap();
        assert!(store.resolve("wordpress").is_err());
        assert!(store.list().is_err());
        let _ = fs::remove_dir_all(store.root());
    }
}
