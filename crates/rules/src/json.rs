//! Minimal recursive-descent JSON parser for pack manifests. Produces
//! the same [`Value`] tree as the YAML-lite parser so [`crate::pack`]
//! has one decoding path. Maps preserve declaration order.

use std::fmt;

/// A parsed manifest value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    List(Vec<Value>),
    /// An object, in declaration order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The list payload, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{}", quote(s)),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Map(entries) => {
                write!(f, "{{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{}:{v}", quote(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// JSON-quotes a string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input.
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes: Vec<char> = src.chars().collect();
    let mut p = Parser { chars: bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{c}' at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some('{') => self.map(),
            Some('[') => self.list(),
            Some('"') => Ok(Value::Str(self.string()?)),
            Some('t') => self.keyword("true", Value::Bool(true)),
            Some('f') => self.keyword("false", Value::Bool(false)),
            Some('n') => self.keyword("null", Value::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-')
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(e) = self.peek() else {
                        return Err("trailing escape".to_string());
                    };
                    self.pos += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'r' => out.push('\r'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            if self.pos + 4 > self.chars.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex: String = self.chars[self.pos..self.pos + 4].iter().collect();
                            self.pos += 4;
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{other}'")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn list(&mut self) -> Result<Value, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Value::List(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some(']') => {
                    self.pos += 1;
                    return Ok(Value::List(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn map(&mut self) -> Result<Value, String> {
        self.expect('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(',') => {
                    self.pos += 1;
                }
                Some('}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true, "d": null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_list().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(parse(&Value::Str("a\"b\\c\nd".into()).to_string()).unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn display_is_canonical_and_reparseable() {
        let v = parse(r#"{ "b" : 1 ,  "a" : [ "x" , true ] }"#).unwrap();
        let s = v.to_string();
        assert_eq!(s, r#"{"b":1,"a":["x",true]}"#);
        assert_eq!(parse(&s).unwrap(), v);
    }
}
