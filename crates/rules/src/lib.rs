//! # wap-rules — versioned rule packs for the wap pipeline
//!
//! The paper's pitch is extending detection "without programming":
//! analysts declare weapons instead of writing code. This crate turns
//! that into a distributable ecosystem — rules ship as **packs**:
//! named, versioned, schema-checked bundles of `RuleSpec`s (the unified
//! rule schema from `wap-cfg`) that install under a rules directory and
//! plug into every front-end (`wap --rules`, serve `?rules=`).
//!
//! * [`RulePack`] — parse/validate a JSON or YAML-lite manifest
//!   (auto-detected), serialize it canonically, and compute a
//!   deterministic [`RulePack::fingerprint`] that joins the `cfg`
//!   cache-entry key, so installing or upgrading a pack invalidates
//!   exactly the cached lint results and nothing else ([`pack`]).
//! * [`Store`] — `install` / `update` / `list` / `remove` over
//!   `<rules_dir>/<name>/<version>/pack.json`, accepting manifest files,
//!   directories, or uncompressed tarballs ([`store`], [`tar`]).
//! * [`cli_main`] — the `wap rules` subcommand ([`cli`]).
//! * [`RulePack::wordpress`] — the builtin starter pack (unprepared
//!   `$wpdb` queries via call-with-argument matching).
//!
//! Like the rest of the analysis core, this crate depends only on
//! workspace crates (`wap-cfg`, `wap-php`): the JSON, YAML-lite, and tar
//! codecs are hand-rolled std-only subsets.
//!
//! ## Quick start
//!
//! ```
//! use wap_rules::{RulePack, Store};
//!
//! let dir = std::env::temp_dir().join(format!("wap-rules-doc-{}", std::process::id()));
//! let store = Store::new(&dir);
//! store.install_pack(&RulePack::wordpress())?;
//! let pack = store.resolve("wordpress")?;
//! assert_eq!(pack.rules.len(), 3);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod pack;
pub mod store;
pub mod tar;
pub mod yaml;

pub use cli::{cli_main, RULES_USAGE};
pub use pack::{version_key, RulePack, PACK_SCHEMA_VERSION};
pub use store::{default_rules_dir, InstalledPack, Store, MANIFEST_NAMES};
