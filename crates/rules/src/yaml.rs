//! YAML-lite parser for pack manifests: indentation-scoped mappings,
//! `- ` block lists, quoted and plain scalars, `#` comments. Covers the
//! subset rule packs use; anchors, multi-line scalars, and flow
//! collections are out of scope. Produces the same [`Value`] tree as the
//! JSON parser.

use crate::json::Value;

/// Parses a YAML-lite document into a [`Value`].
///
/// # Errors
///
/// Returns a message with a 1-based line number on malformed input.
pub fn parse(src: &str) -> Result<Value, String> {
    let lines: Vec<Line> = src
        .lines()
        .enumerate()
        .filter_map(|(i, raw)| {
            let without_comment = strip_comment(raw);
            let trimmed = without_comment.trim_end();
            if trimmed.trim().is_empty() {
                return None;
            }
            let indent = trimmed.len() - trimmed.trim_start().len();
            Some(Line {
                number: i + 1,
                indent,
                text: trimmed.trim_start().to_string(),
            })
        })
        .collect();
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut pos = 0usize;
    let v = parse_block(&lines, &mut pos, lines[0].indent)?;
    if pos != lines.len() {
        return Err(format!(
            "line {}: unexpected dedent/content",
            lines[pos].number
        ));
    }
    Ok(v)
}

struct Line {
    number: usize,
    indent: usize,
    text: String,
}

fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut quote: Option<char> = None;
    for c in line.chars() {
        match quote {
            Some(q) => {
                if c == q {
                    quote = None;
                }
            }
            None => {
                if c == '\'' || c == '"' {
                    quote = Some(c);
                } else if c == '#' {
                    break;
                }
            }
        }
        out.push(c);
    }
    out
}

fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, String> {
    if lines[*pos].text.starts_with("- ") || lines[*pos].text == "-" {
        parse_list(lines, pos, indent)
    } else {
        parse_map(lines, pos, indent)
    }
}

fn parse_list(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, String> {
    let mut items = Vec::new();
    while *pos < lines.len() && lines[*pos].indent == indent && lines[*pos].text.starts_with('-') {
        let line = &lines[*pos];
        let rest = line.text[1..].trim_start().to_string();
        if rest.is_empty() {
            // "-" alone: nested block on the following lines
            *pos += 1;
            if *pos < lines.len() && lines[*pos].indent > indent {
                let inner = lines[*pos].indent;
                items.push(parse_block(lines, pos, inner)?);
            } else {
                items.push(Value::Null);
            }
            continue;
        }
        if let Some((key, val)) = split_key(&rest) {
            // "- key: ..." opens an inline mapping; its other keys sit on
            // following lines indented past the dash
            let item_indent = indent + (line.text.len() - rest.len());
            let mut entries = vec![entry_value(lines, pos, item_indent, key, val)?];
            while *pos < lines.len() && lines[*pos].indent == item_indent {
                let text = lines[*pos].text.clone();
                let Some((key, val)) = split_key(&text) else {
                    return Err(format!("line {}: expected 'key:' entry", lines[*pos].number));
                };
                entries.push(entry_value(lines, pos, item_indent, key, val)?);
            }
            items.push(Value::Map(entries));
        } else {
            *pos += 1;
            items.push(scalar(&rest));
        }
    }
    Ok(Value::List(items))
}

fn parse_map(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, String> {
    let mut entries = Vec::new();
    while *pos < lines.len() && lines[*pos].indent == indent {
        let text = lines[*pos].text.clone();
        let Some((key, val)) = split_key(&text) else {
            return Err(format!("line {}: expected 'key:' entry", lines[*pos].number));
        };
        entries.push(entry_value(lines, pos, indent, key, val)?);
    }
    Ok(Value::Map(entries))
}

/// Consumes one `key: value` line (and any nested block) and returns the
/// map entry. `*pos` is on the key line on entry, past the entry on exit.
fn entry_value(
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    key: String,
    val: Option<String>,
) -> Result<(String, Value), String> {
    *pos += 1;
    let value = match val {
        Some(v) => scalar(&v),
        None => {
            if *pos < lines.len() && lines[*pos].indent > indent {
                let inner = lines[*pos].indent;
                parse_block(lines, pos, inner)?
            } else {
                Value::Null
            }
        }
    };
    Ok((key, value))
}

/// Splits `key: value` / `key:`; returns `None` when the line has no
/// top-level colon (list scalars). Quoted keys are supported.
fn split_key(text: &str) -> Option<(String, Option<String>)> {
    let chars: Vec<char> = text.chars().collect();
    let mut quote: Option<char> = None;
    for (i, c) in chars.iter().enumerate() {
        match quote {
            Some(q) => {
                if *c == q {
                    quote = None;
                }
            }
            None => {
                if *c == '\'' || *c == '"' {
                    quote = Some(*c);
                } else if *c == ':'
                    && (i + 1 == chars.len() || chars[i + 1].is_whitespace())
                {
                    let key = unquote(chars[..i].iter().collect::<String>().trim());
                    let rest: String = chars[i + 1..].iter().collect();
                    let rest = rest.trim();
                    return Some((
                        key,
                        if rest.is_empty() {
                            None
                        } else {
                            Some(rest.to_string())
                        },
                    ));
                }
            }
        }
    }
    None
}

fn unquote(s: &str) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() >= 2 {
        if chars[0] == '\'' && chars[chars.len() - 1] == '\'' {
            return chars[1..chars.len() - 1].iter().collect();
        }
        if chars[0] == '"' && chars[chars.len() - 1] == '"' {
            let inner: String = chars[1..chars.len() - 1].iter().collect();
            let mut out = String::with_capacity(inner.len());
            let mut it = inner.chars();
            while let Some(c) = it.next() {
                if c == '\\' {
                    match it.next() {
                        Some('n') => out.push('\n'),
                        Some('t') => out.push('\t'),
                        Some('r') => out.push('\r'),
                        Some(other) => out.push(other),
                        None => out.push('\\'),
                    }
                } else {
                    out.push(c);
                }
            }
            return out;
        }
    }
    s.to_string()
}

fn scalar(s: &str) -> Value {
    let trimmed = s.trim();
    let first = trimmed.chars().next();
    if first == Some('\'') || first == Some('"') {
        return Value::Str(unquote(trimmed));
    }
    match trimmed {
        "null" | "~" => return Value::Null,
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(n) = trimmed.parse::<f64>() {
        return Value::Num(n);
    }
    Value::Str(trimmed.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_pack_shaped_document() {
        let doc = "\
schema: 1
name: wordpress   # starter pack
version: \"1.0.0\"
rules:
  - id: wp-a
    kind: call_with_arg
    function: query
    argument: \"\\\"[^\\\"]*\\\\$\"
  - id: wp-b
    kind: forbid_call
    function: eval
    where:
      X: \"^\\\\$_GET\"
";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_num(), Some(1.0));
        assert_eq!(v.get("name").unwrap().as_str(), Some("wordpress"));
        assert_eq!(v.get("version").unwrap().as_str(), Some("1.0.0"));
        let rules = v.get("rules").unwrap().as_list().unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].get("id").unwrap().as_str(), Some("wp-a"));
        assert_eq!(
            rules[0].get("argument").unwrap().as_str(),
            Some("\"[^\"]*\\$")
        );
        assert_eq!(
            rules[1].get("where").unwrap().get("X").unwrap().as_str(),
            Some("^\\$_GET")
        );
    }

    #[test]
    fn scalar_types_and_comments() {
        let v = parse("a: true\nb: 2.5\nc: null\nd: plain text\n# comment\ne: 'q # not comment'\n").unwrap();
        assert_eq!(v.get("a"), Some(&Value::Bool(true)));
        assert_eq!(v.get("b").unwrap().as_num(), Some(2.5));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("d").unwrap().as_str(), Some("plain text"));
        assert_eq!(v.get("e").unwrap().as_str(), Some("q # not comment"));
    }

    #[test]
    fn list_of_scalars() {
        let v = parse("xs:\n  - a\n  - b\n").unwrap();
        let xs = v.get("xs").unwrap().as_list().unwrap();
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].as_str(), Some("b"));
    }

    #[test]
    fn rejects_bad_structure() {
        assert!(parse("a: 1\n  stray\n").is_err());
        assert!(parse("just a scalar line\n").is_err());
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("\n# only comments\n").unwrap(), Value::Null);
    }
}
