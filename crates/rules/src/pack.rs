//! The rule-pack model: a named, versioned, schema-checked collection of
//! [`RuleSpec`]s with a deterministic fingerprint.
//!
//! Manifests are JSON or YAML-lite, auto-detected by the first
//! non-whitespace byte (`{` means JSON). Both decode through one
//! [`Value`] tree and one field reader, so the two formats cannot drift.
//! On install the manifest is re-serialized canonically
//! ([`RulePack::to_canonical_json`]), which is also the byte stream the
//! fingerprint hashes — a pack's fingerprint is independent of the
//! format, key order, and whitespace it was authored in.

use crate::json::{self, quote, Value};
use crate::yaml;
use wap_cfg::{MatchSpec, RuleSet, RuleSpec};
use wap_php::fingerprint::fields_hash;

/// The manifest schema version this build reads and writes.
pub const PACK_SCHEMA_VERSION: u32 = 1;

/// A loaded, validated rule pack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RulePack {
    /// Pack name (lowercase identifier, e.g. `wordpress`).
    pub name: String,
    /// Pack version (dotted numeric segments, e.g. `1.0.0`).
    pub version: String,
    /// Manifest schema version.
    pub schema: u32,
    /// The pack's rules; every spec carries `pack = Some(name)`.
    pub rules: Vec<RuleSpec>,
}

impl RulePack {
    /// Parses and validates a manifest (JSON or YAML-lite, auto-detected).
    ///
    /// # Errors
    ///
    /// Returns a message on parse errors, schema-version mismatch,
    /// missing fields, unknown rule kinds or severities, and rule
    /// patterns that fail to compile.
    pub fn parse(manifest: &str) -> Result<RulePack, String> {
        let is_json = manifest
            .chars()
            .find(|c| !c.is_whitespace())
            .is_some_and(|c| c == '{');
        let value = if is_json {
            json::parse(manifest).map_err(|e| format!("json: {e}"))?
        } else {
            yaml::parse(manifest).map_err(|e| format!("yaml: {e}"))?
        };
        RulePack::from_value(&value)
    }

    fn from_value(value: &Value) -> Result<RulePack, String> {
        let schema = value
            .get("schema")
            .and_then(Value::as_num)
            .ok_or("missing 'schema' version")? as u32;
        if schema != PACK_SCHEMA_VERSION {
            return Err(format!(
                "unsupported pack schema {schema} (this build reads schema {PACK_SCHEMA_VERSION})"
            ));
        }
        let name = req_str(value, "name")?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
        {
            return Err(format!(
                "pack name '{name}' must be a lowercase identifier"
            ));
        }
        let version = req_str(value, "version")?;
        if version.is_empty() || version_key(&version).is_none() {
            return Err(format!(
                "pack version '{version}' must be dotted numeric segments (e.g. 1.0.0)"
            ));
        }
        let rules_value = value.get("rules").ok_or("missing 'rules' list")?;
        let rules_list = rules_value.as_list().ok_or("'rules' must be a list")?;
        if rules_list.is_empty() {
            return Err("pack declares no rules".to_string());
        }
        let mut rules = Vec::with_capacity(rules_list.len());
        for (i, r) in rules_list.iter().enumerate() {
            rules.push(parse_rule(r, &name).map_err(|e| format!("rules[{i}]: {e}"))?);
        }
        let pack = RulePack {
            name,
            version,
            schema,
            rules,
        };
        // compile now so a broken pattern is an install-time error, not a
        // scan-time one
        RuleSet::compile(&pack.rules).map_err(|e| e.to_string())?;
        Ok(pack)
    }

    /// The canonical manifest serialization: stable key order, no
    /// optional fields when empty. Installing writes these bytes; the
    /// fingerprint hashes them.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": {},\n  \"name\": {},\n  \"version\": {},\n  \"rules\": [",
            self.schema,
            quote(&self.name),
            quote(&self.version)
        ));
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            let mut fields: Vec<(String, String)> = vec![
                ("id".to_string(), quote(&rule.id)),
                ("severity".to_string(), quote(&rule.severity)),
            ];
            if !rule.summary.is_empty() && rule.summary != rule.message {
                fields.push(("summary".to_string(), quote(&rule.summary)));
            }
            if !rule.message.is_empty() {
                fields.push(("message".to_string(), quote(&rule.message)));
            }
            match &rule.matcher {
                MatchSpec::Call { function } => {
                    fields.push(("kind".to_string(), quote("forbid_call")));
                    fields.push(("function".to_string(), quote(function)));
                }
                MatchSpec::CallGuarded { function } => {
                    fields.push(("kind".to_string(), quote("require_guard")));
                    fields.push(("function".to_string(), quote(function)));
                }
                MatchSpec::CallWithArg { function, argument } => {
                    fields.push(("kind".to_string(), quote("call_with_arg")));
                    fields.push(("function".to_string(), quote(function)));
                    fields.push(("argument".to_string(), quote(argument)));
                }
                MatchSpec::Pattern {
                    pattern,
                    constraints,
                } => {
                    fields.push(("kind".to_string(), quote("pattern")));
                    fields.push(("pattern".to_string(), quote(pattern)));
                    if !constraints.is_empty() {
                        let mut w = String::from("{");
                        for (j, (k, v)) in constraints.iter().enumerate() {
                            if j > 0 {
                                w.push(',');
                            }
                            w.push_str(&format!("{}: {}", quote(k), quote(v)));
                        }
                        w.push('}');
                        fields.push(("where".to_string(), w));
                    }
                }
                // structural builtins never appear in packs
                MatchSpec::Unreachable
                | MatchSpec::AssignInCond
                | MatchSpec::UnguardedSink { .. }
                | MatchSpec::TaintedSink
                | MatchSpec::UnresolvedInclude => {}
            }
            let rendered: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\n      {}: {v}", quote(k)))
                .collect();
            out.push_str(&rendered.join(","));
            out.push_str("\n    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// The pack's deterministic fingerprint: a hash over the canonical
    /// manifest bytes, so two installs of the same logical pack always
    /// fingerprint identically and any rule change re-fingerprints.
    pub fn fingerprint(&self) -> String {
        fields_hash([
            "rule-pack".as_bytes(),
            self.name.as_bytes(),
            self.version.as_bytes(),
            self.to_canonical_json().as_bytes(),
        ])
    }

    /// The starter `wordpress` pack: unprepared `$wpdb->query` calls
    /// whose argument is a double-quoted string interpolating a variable
    /// (the canonical WordPress SQL-injection shape), plus a
    /// guard-dominance rule on `esc_sql`-free `get_results`.
    pub fn wordpress() -> RulePack {
        let pack = RulePack {
            name: "wordpress".to_string(),
            version: "1.0.0".to_string(),
            schema: PACK_SCHEMA_VERSION,
            rules: vec![
                RuleSpec {
                    id: "wp-wpdb-interpolated-query".to_string(),
                    severity: "error".to_string(),
                    summary: "wpdb query built from an interpolated string".to_string(),
                    message: "unprepared query: interpolated variable reaches $wpdb->query; use $wpdb->prepare()".to_string(),
                    pack: Some("wordpress".to_string()),
                    matcher: MatchSpec::CallWithArg {
                        function: "query".to_string(),
                        argument: "\"[^\"]*\\$\\w".to_string(),
                    },
                },
                RuleSpec {
                    id: "wp-wpdb-interpolated-get-results".to_string(),
                    severity: "warning".to_string(),
                    summary: "wpdb get_results built from an interpolated string".to_string(),
                    message: "unprepared query: interpolated variable reaches $wpdb->get_results; use $wpdb->prepare()".to_string(),
                    pack: Some("wordpress".to_string()),
                    matcher: MatchSpec::CallWithArg {
                        function: "get_results".to_string(),
                        argument: "\"[^\"]*\\$\\w".to_string(),
                    },
                },
                RuleSpec {
                    id: "wp-unvalidated-extract".to_string(),
                    severity: "warning".to_string(),
                    summary: "extract() over request input".to_string(),
                    message: "extract() on request data injects attacker-controlled variables".to_string(),
                    pack: Some("wordpress".to_string()),
                    matcher: MatchSpec::Pattern {
                        pattern: "extract( $X )".to_string(),
                        constraints: vec![(
                            "X".to_string(),
                            "^\\$_(GET|POST|REQUEST)".to_string(),
                        )],
                    },
                },
            ],
        };
        debug_assert!(RuleSet::compile(&pack.rules).is_ok());
        pack
    }

    /// The starter `generic-php` pack: framework-agnostic rules built on
    /// the predicate `where` constraints. `tainted($X)` flags tainted
    /// data reaching `mysql_query` through a pattern binding (and stays
    /// silent on constants), `const($X)` flags `eval` over a string the
    /// value analysis proves constant — dead dynamism that should be
    /// plain code.
    pub fn generic_php() -> RulePack {
        let pack = RulePack {
            name: "generic-php".to_string(),
            version: "1.0.0".to_string(),
            schema: PACK_SCHEMA_VERSION,
            rules: vec![
                RuleSpec {
                    id: "gp-tainted-query".to_string(),
                    severity: "error".to_string(),
                    summary: "tainted data reaches a SQL query call".to_string(),
                    message: "tainted value reaches mysql_query; bind parameters instead"
                        .to_string(),
                    pack: Some("generic-php".to_string()),
                    matcher: MatchSpec::Pattern {
                        pattern: "mysql_query( $X )".to_string(),
                        constraints: vec![("X".to_string(), "tainted($X)".to_string())],
                    },
                },
                RuleSpec {
                    id: "gp-constant-eval".to_string(),
                    severity: "note".to_string(),
                    summary: "eval over a compile-time constant string".to_string(),
                    message: "eval of a constant string; write the code directly".to_string(),
                    pack: Some("generic-php".to_string()),
                    matcher: MatchSpec::Pattern {
                        pattern: "eval( $X )".to_string(),
                        constraints: vec![("X".to_string(), "const($X)".to_string())],
                    },
                },
            ],
        };
        debug_assert!(RuleSet::compile(&pack.rules).is_ok());
        pack
    }
}

fn req_str(value: &Value, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing '{key}' string"))
}

fn parse_rule(value: &Value, pack: &str) -> Result<RuleSpec, String> {
    let id = req_str(value, "id")?;
    if id.trim().is_empty() {
        return Err("empty rule id".to_string());
    }
    let severity = value
        .get("severity")
        .and_then(Value::as_str)
        .unwrap_or("warning")
        .to_string();
    if wap_cfg::Severity::parse(&severity).is_none() {
        return Err(format!("unknown severity '{severity}'"));
    }
    let message = value
        .get("message")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let summary = value
        .get("summary")
        .and_then(Value::as_str)
        .unwrap_or_default()
        .to_string();
    let kind = req_str(value, "kind")?;
    let function = || req_str(value, "function");
    let matcher = match kind.as_str() {
        "forbid_call" | "call" => MatchSpec::Call {
            function: function()?,
        },
        "require_guard" => MatchSpec::CallGuarded {
            function: function()?,
        },
        "call_with_arg" => MatchSpec::CallWithArg {
            function: function()?,
            argument: req_str(value, "argument")?,
        },
        "pattern" => {
            let pattern = req_str(value, "pattern")?;
            let mut constraints = Vec::new();
            if let Some(w) = value.get("where") {
                let Value::Map(entries) = w else {
                    return Err("'where' must be a map of metavariable constraints".to_string());
                };
                for (k, v) in entries {
                    let expr = v
                        .as_str()
                        .ok_or_else(|| format!("where.{k} must be a string"))?;
                    constraints.push((k.clone(), expr.to_string()));
                }
                // canonical order: fingerprints must not depend on
                // manifest key order
                constraints.sort();
            }
            MatchSpec::Pattern {
                pattern,
                constraints,
            }
        }
        other => {
            return Err(format!(
                "unknown rule kind '{other}' (expected forbid_call, require_guard, call_with_arg, or pattern)"
            ))
        }
    };
    let message = if message.is_empty() {
        format!("rule {id} matched")
    } else {
        message
    };
    Ok(RuleSpec {
        id,
        severity,
        summary,
        message,
        pack: Some(pack.to_string()),
        matcher,
    })
}

/// A sortable key for a dotted numeric version; `None` when a segment is
/// not numeric.
pub fn version_key(version: &str) -> Option<Vec<u64>> {
    version
        .split('.')
        .map(|seg| seg.parse::<u64>().ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_and_yaml_manifests_parse_identically() {
        let json = r#"{
            "schema": 1,
            "name": "demo",
            "version": "0.2.0",
            "rules": [
                {"id": "no-eval", "kind": "forbid_call", "function": "eval",
                 "severity": "error", "message": "eval is banned"}
            ]
        }"#;
        let yaml = "\
schema: 1
name: demo
version: \"0.2.0\"
rules:
  - id: no-eval
    kind: forbid_call
    function: eval
    severity: error
    message: eval is banned
";
        let a = RulePack::parse(json).unwrap();
        let b = RulePack::parse(yaml).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.rules[0].pack.as_deref(), Some("demo"));
    }

    #[test]
    fn canonical_json_round_trips() {
        let pack = RulePack::wordpress();
        let reparsed = RulePack::parse(&pack.to_canonical_json()).unwrap();
        assert_eq!(pack, reparsed);
        assert_eq!(pack.fingerprint(), reparsed.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_rule_changes() {
        let mut pack = RulePack::wordpress();
        let base = pack.fingerprint();
        pack.rules[0].message = "different".to_string();
        assert_ne!(pack.fingerprint(), base);
        let mut v2 = RulePack::wordpress();
        v2.version = "1.0.1".to_string();
        assert_ne!(v2.fingerprint(), base);
    }

    #[test]
    fn schema_mismatch_and_bad_fields_are_rejected() {
        assert!(RulePack::parse(r#"{"schema": 2, "name": "x", "version": "1", "rules": []}"#)
            .unwrap_err()
            .contains("schema"));
        assert!(RulePack::parse(r#"{"schema": 1, "name": "Bad Name", "version": "1", "rules": [{"id": "a", "kind": "forbid_call", "function": "f"}]}"#)
            .unwrap_err()
            .contains("lowercase"));
        assert!(RulePack::parse(r#"{"schema": 1, "name": "x", "version": "one", "rules": [{"id": "a", "kind": "forbid_call", "function": "f"}]}"#)
            .unwrap_err()
            .contains("numeric"));
        assert!(RulePack::parse(r#"{"schema": 1, "name": "x", "version": "1.0", "rules": []}"#)
            .unwrap_err()
            .contains("no rules"));
        assert!(RulePack::parse(r#"{"schema": 1, "name": "x", "version": "1.0", "rules": [{"id": "a", "kind": "frob"}]}"#)
            .unwrap_err()
            .contains("unknown rule kind"));
        assert!(RulePack::parse(r#"{"schema": 1, "name": "x", "version": "1.0", "rules": [{"id": "a", "kind": "forbid_call", "function": "f", "severity": "fatal"}]}"#)
            .unwrap_err()
            .contains("severity"));
    }

    #[test]
    fn broken_patterns_fail_at_parse_time() {
        let err = RulePack::parse(
            r#"{"schema": 1, "name": "x", "version": "1.0",
                "rules": [{"id": "a", "kind": "call_with_arg", "function": "f", "argument": "[oops"}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("unclosed"), "{err}");
    }

    #[test]
    fn version_keys_order_numerically() {
        assert!(version_key("1.10.0").unwrap() > version_key("1.9.9").unwrap());
        assert!(version_key("2.0").unwrap() > version_key("1.999.999").unwrap());
        assert!(version_key("1.x").is_none());
    }

    #[test]
    fn wordpress_starter_compiles_and_fingerprints_stably() {
        let pack = RulePack::wordpress();
        assert_eq!(pack.name, "wordpress");
        assert_eq!(pack.schema, PACK_SCHEMA_VERSION);
        assert_eq!(pack.rules.len(), 3);
        assert_eq!(pack.fingerprint(), RulePack::wordpress().fingerprint());
    }

    #[test]
    fn generic_php_starter_round_trips_predicate_constraints() {
        let pack = RulePack::generic_php();
        assert_eq!(pack.name, "generic-php");
        assert_eq!(pack.rules.len(), 2);
        assert_eq!(pack.fingerprint(), RulePack::generic_php().fingerprint());
        // the predicate constraint strings survive the canonical
        // manifest round trip byte for byte
        let reparsed = RulePack::parse(&pack.to_canonical_json()).unwrap();
        assert_eq!(reparsed, pack);
        assert_eq!(reparsed.fingerprint(), pack.fingerprint());
        // and the compiled set declares it consumes facts
        assert!(RuleSet::compile(&reparsed.rules).unwrap().needs_facts());
    }
}
