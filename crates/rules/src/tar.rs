//! Minimal ustar reader for pack tarballs: enough to list regular-file
//! entries and read their contents from an uncompressed POSIX/GNU tar
//! stream. Mirrors the subset wap-serve's uploader writes: 512-byte
//! blocks, `name` + `prefix` joined, octal sizes, typeflag `'0'`/NUL for
//! regular files; other entry types are skipped.

const BLOCK: usize = 512;

/// One regular-file entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Entry path as stored (prefix-joined).
    pub path: String,
    /// File contents.
    pub data: Vec<u8>,
}

/// Reads every regular-file entry from a tar byte stream.
///
/// # Errors
///
/// Returns a message for truncated streams, non-octal sizes, and unsafe
/// paths (absolute or containing `..`).
pub fn entries(bytes: &[u8]) -> Result<Vec<Entry>, String> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + BLOCK <= bytes.len() {
        let header = &bytes[off..off + BLOCK];
        if header.iter().all(|&b| b == 0) {
            break; // end-of-archive marker
        }
        let name = field_str(&header[0..100]);
        let prefix = field_str(&header[345..500]);
        let path = if prefix.is_empty() {
            name.clone()
        } else {
            format!("{prefix}/{name}")
        };
        let size = octal_field(&header[124..136])
            .ok_or_else(|| format!("bad size field in entry '{path}'"))?;
        let typeflag = header[156];
        off += BLOCK;
        let data_len = size as usize;
        if off + data_len > bytes.len() {
            return Err(format!("truncated entry '{path}'"));
        }
        if typeflag == b'0' || typeflag == 0 {
            check_path(&path)?;
            out.push(Entry {
                path,
                data: bytes[off..off + data_len].to_vec(),
            });
        }
        off += data_len.div_ceil(BLOCK) * BLOCK;
    }
    Ok(out)
}

fn field_str(field: &[u8]) -> String {
    let end = field.iter().position(|&b| b == 0).unwrap_or(field.len());
    String::from_utf8_lossy(&field[..end]).trim().to_string()
}

fn octal_field(field: &[u8]) -> Option<u64> {
    let text = field_str(field);
    if text.is_empty() {
        return Some(0);
    }
    u64::from_str_radix(&text, 8).ok()
}

fn check_path(path: &str) -> Result<(), String> {
    if path.starts_with('/') {
        return Err(format!("absolute path '{path}' in archive"));
    }
    if path.split('/').any(|seg| seg == "..") {
        return Err(format!("path traversal in '{path}'"));
    }
    Ok(())
}

/// Builds a tar stream from `(path, contents)` pairs — test/tooling
/// helper matching what [`entries`] reads.
pub fn build(files: &[(&str, &[u8])]) -> Vec<u8> {
    let mut out = Vec::new();
    for (path, data) in files {
        let mut header = [0u8; BLOCK];
        let name = path.as_bytes();
        header[..name.len().min(100)].copy_from_slice(&name[..name.len().min(100)]);
        header[100..108].copy_from_slice(b"0000644\0");
        header[108..116].copy_from_slice(b"0000000\0");
        header[116..124].copy_from_slice(b"0000000\0");
        let size = format!("{:011o}\0", data.len());
        header[124..136].copy_from_slice(size.as_bytes());
        header[136..148].copy_from_slice(b"00000000000\0");
        header[156] = b'0';
        header[257..263].copy_from_slice(b"ustar\0");
        header[263..265].copy_from_slice(b"00");
        // checksum: spaces while summing, then the octal sum
        header[148..156].copy_from_slice(b"        ");
        let sum: u32 = header.iter().map(|&b| b as u32).sum();
        let chk = format!("{sum:06o}\0 ");
        header[148..156].copy_from_slice(chk.as_bytes());
        out.extend_from_slice(&header);
        out.extend_from_slice(data);
        let pad = data.len().div_ceil(BLOCK) * BLOCK - data.len();
        out.extend(std::iter::repeat_n(0u8, pad));
    }
    out.extend(std::iter::repeat_n(0u8, BLOCK * 2));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_regular_files() {
        let tar = build(&[("pack.json", b"{}"), ("docs/README", b"hello")]);
        let got = entries(&tar).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].path, "pack.json");
        assert_eq!(got[0].data, b"{}");
        assert_eq!(got[1].path, "docs/README");
        assert_eq!(got[1].data, b"hello");
    }

    #[test]
    fn rejects_traversal_and_truncation() {
        let evil = build(&[("../escape", b"x")]);
        assert!(entries(&evil).unwrap_err().contains("traversal"));
        let tar = build(&[("a", b"data")]);
        assert!(entries(&tar[..513]).unwrap_err().contains("truncated"));
    }

    #[test]
    fn empty_archive_is_empty() {
        assert!(entries(&build(&[])).unwrap().is_empty());
        assert!(entries(&[]).unwrap().is_empty());
    }
}
