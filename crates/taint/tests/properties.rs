//! Property-based tests for the taint engine.

use proptest::prelude::*;
use wap_catalog::{Catalog, VulnClass};
use wap_php::parse;
use wap_taint::{analyze, analyze_program, AnalysisOptions, SourceFile};

/// Sink/sanitizer pairs, one per representative class.
const SCENARIOS: &[(&str, &str, &str)] = &[
    // (sink template, sanitizer, class acronym)
    (
        "mysql_query(\"SELECT * FROM t WHERE x = '{}'\");",
        "mysql_real_escape_string",
        "SQLI",
    ),
    ("echo {};", "htmlentities", "XSS"),
    ("system(\"cmd {}\");", "escapeshellarg", "OSCI"),
    ("ldap_search($c, $b, {});", "ldap_escape", "LDAPI"),
];

fn entry(i: usize) -> String {
    let keys = ["id", "name", "page", "q"];
    let globals = ["_GET", "_POST", "_COOKIE", "_REQUEST"];
    format!("$_{}['{}']", &globals[i % 4][1..], keys[i / 4 % 4])
}

/// Builds a program with a chain of assignments from an entry point to a
/// sink, optionally passing through the class sanitizer at `sanitize_at`.
fn build_flow(
    scenario: usize,
    chain_len: usize,
    sanitize_at: Option<usize>,
    entry_idx: usize,
) -> String {
    let (sink_tpl, sanitizer, _) = SCENARIOS[scenario % SCENARIOS.len()];
    let mut src = String::from("<?php\n");
    let mut current = entry(entry_idx);
    for i in 0..chain_len {
        let var = format!("$v{i}");
        if sanitize_at == Some(i) {
            src.push_str(&format!("{var} = {sanitizer}({current});\n"));
        } else {
            src.push_str(&format!("{var} = {current};\n"));
        }
        current = var;
    }
    let sink_line = sink_tpl.replace("{}", &current);
    src.push_str(&sink_line);
    src.push('\n');
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A seeded unsanitized flow is ALWAYS detected, regardless of chain
    /// length, entry point, or class (no false negatives on direct flows).
    #[test]
    fn seeded_flow_is_always_detected(
        scenario in 0usize..4,
        chain_len in 0usize..6,
        entry_idx in 0usize..16,
    ) {
        let src = build_flow(scenario, chain_len, None, entry_idx);
        let program = parse(&src).expect("generated source parses");
        let found = analyze_program(&Catalog::wape(), &program);
        prop_assert_eq!(found.len(), 1, "missed flow in:\n{}", src);
    }

    /// A flow through the class's sanitizer is NEVER reported, wherever the
    /// sanitizer sits in the chain (sanitization is respected).
    #[test]
    fn sanitized_flow_is_never_reported(
        scenario in 0usize..4,
        chain_len in 1usize..6,
        pos in 0usize..6,
        entry_idx in 0usize..16,
    ) {
        let pos = pos % chain_len;
        let src = build_flow(scenario, chain_len, Some(pos), entry_idx);
        let program = parse(&src).expect("generated source parses");
        let found = analyze_program(&Catalog::wape(), &program);
        prop_assert!(found.is_empty(), "false positive in:\n{}\n{:?}", src, found);
    }

    /// Monotonicity: adding a *user sanitizer* for an unrelated function
    /// name never changes results; registering the actual pass-through
    /// function as sanitizer never *adds* findings.
    #[test]
    fn adding_sanitizers_is_monotone_decreasing(
        scenario in 0usize..4,
        chain_len in 1usize..5,
        entry_idx in 0usize..16,
    ) {
        let (.., acr) = SCENARIOS[scenario % SCENARIOS.len()];
        let class = match acr {
            "SQLI" => VulnClass::Sqli,
            "XSS" => VulnClass::XssReflected,
            "OSCI" => VulnClass::Osci,
            _ => VulnClass::LdapI,
        };
        // wrap the flow in a user function to have a name to bless
        let (sink_tpl, ..) = SCENARIOS[scenario % SCENARIOS.len()];
        let sink_line = sink_tpl.replace("{}", "$x");
        let src = format!(
            "<?php\nfunction my_clean($v) {{ return trim($v); }}\n$x = my_clean({});\n{}\n",
            entry(entry_idx),
            sink_line
        );
        let program = parse(&src).expect("parses");
        let base = analyze_program(&Catalog::wape(), &program);

        let mut unrelated = Catalog::wape();
        unrelated.add_user_sanitizer("never_called_fn", &[class.clone()]);
        let with_unrelated = analyze_program(&unrelated, &program);
        prop_assert_eq!(base.len(), with_unrelated.len());

        let mut blessed = Catalog::wape();
        blessed.add_user_sanitizer("my_clean", &[class]);
        let with_blessed = analyze_program(&blessed, &program);
        prop_assert!(with_blessed.len() <= base.len());
        let _ = chain_len;
    }

    /// Determinism: two analyses of the same input agree exactly.
    #[test]
    fn analysis_is_deterministic(
        scenario in 0usize..4,
        chain_len in 0usize..5,
        entry_idx in 0usize..16,
    ) {
        let src = build_flow(scenario, chain_len, None, entry_idx);
        let program = parse(&src).expect("parses");
        let a = analyze_program(&Catalog::wape(), &program);
        let b = analyze_program(&Catalog::wape(), &program);
        prop_assert_eq!(a, b);
    }

    /// Reported lines always point into the file.
    #[test]
    fn findings_have_valid_locations(
        scenario in 0usize..4,
        chain_len in 0usize..6,
        entry_idx in 0usize..16,
    ) {
        let src = build_flow(scenario, chain_len, None, entry_idx);
        let nlines = src.lines().count() as u32;
        let program = parse(&src).expect("parses");
        let files = vec![SourceFile { name: "gen.php".into(), program }];
        for c in analyze(&Catalog::wape(), &AnalysisOptions::default(), &files) {
            prop_assert!(c.line >= 1 && c.line <= nlines);
            prop_assert!((c.sink_span.end() as usize) <= src.len());
            prop_assert_eq!(c.file.as_deref(), Some("gen.php"));
            prop_assert!(!c.path.is_empty());
            prop_assert!(!c.sources.is_empty());
        }
    }

    /// More loop passes never lose findings (join is monotone).
    #[test]
    fn loop_passes_monotone(passes in 1usize..4) {
        let src = r#"<?php
            $q = "SELECT 1";
            foreach ($_POST['f'] as $f) { $q = $q . " AND $f"; }
            mysql_query($q);
        "#;
        let program = parse(src).expect("parses");
        let files = vec![SourceFile { name: "x.php".into(), program }];
        let one = analyze(
            &Catalog::wape(),
            &AnalysisOptions { loop_passes: passes, ..AnalysisOptions::default() },
            &files,
        );
        let more = analyze(
            &Catalog::wape(),
            &AnalysisOptions { loop_passes: passes + 1, ..AnalysisOptions::default() },
            &files,
        );
        prop_assert!(more.len() >= one.len());
    }
}
