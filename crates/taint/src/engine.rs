//! The taint analysis engine.
//!
//! Walks the AST of every file (the paper's tree-walker detectors), tracking
//! how untrusted data flows from entry points through variables, string
//! construction, and user-defined functions, and reporting a [`Candidate`]
//! whenever tainted data reaches a sensitive sink without passing through a
//! sanitizer recognized for that class.
//!
//! The engine is deliberately faithful to WAP's design, including its known
//! blind spot: *validation* (e.g. `is_int` guards, `preg_match` checks) does
//! **not** stop taint — that is exactly what produces the false positives
//! the data-mining predictor exists to catch (§II).

use crate::finding::Candidate;
use crate::state::{TaintState, TaintStep};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;
use wap_catalog::{Catalog, SinkArgs, SinkKind, VulnClass};
use wap_obs::Phase;
use wap_php::ast::*;
use wap_php::fingerprint::fields_hash;
use wap_php::Span;
use wap_php::Symbol;
use wap_runtime::Runtime;

/// Tuning knobs for an analysis run.
#[derive(Debug, Clone)]
pub struct AnalysisOptions {
    /// Follow flows through user-defined functions (summaries). Turning
    /// this off is the `ablation-interproc` configuration.
    pub interprocedural: bool,
    /// How many times loop bodies are re-executed to propagate
    /// loop-carried taint (2 reaches a fixpoint for our lattice).
    pub loop_passes: usize,
    /// Second-order (stored XSS) analysis: when tainted data is written
    /// into the database by an INSERT/UPDATE, a second pass treats the
    /// results of `mysql_fetch_*` as tainted stored data, so echoing them
    /// is reported as stored XSS. Off by default (matches the headline
    /// tables); turn on for the extension experiment.
    pub second_order: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            interprocedural: true,
            loop_passes: 2,
            second_order: false,
        }
    }
}

/// A named source file to analyze.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// File name (reported in candidates).
    pub name: String,
    /// Parsed program.
    pub program: Program,
}

/// Analyzes a set of files as one application: user functions defined in
/// any file are visible to all files, mirroring PHP includes.
///
/// Returns all candidate vulnerabilities, ordered by file and line.
///
/// # Examples
///
/// ```
/// use wap_php::parse;
/// use wap_taint::{analyze, AnalysisOptions, SourceFile};
/// use wap_catalog::Catalog;
///
/// let program = parse(r#"<?php
///     $id = $_GET['id'];
///     mysql_query("SELECT * FROM users WHERE id = $id");
/// "#)?;
/// let files = vec![SourceFile { name: "index.php".into(), program }];
/// let found = analyze(&Catalog::wape(), &AnalysisOptions::default(), &files);
/// assert_eq!(found.len(), 1);
/// assert_eq!(found[0].sink, "mysql_query");
/// # Ok::<(), wap_php::ParseError>(())
/// ```
pub fn analyze(
    catalog: &Catalog,
    options: &AnalysisOptions,
    files: &[SourceFile],
) -> Vec<Candidate> {
    analyze_with(catalog, options, files, &Runtime::serial())
}

/// [`analyze`] with an explicit [`Runtime`]: files are analyzed as
/// independent tasks fanned out over the runtime's workers.
///
/// The analysis runs in two parallel phases per pass. **Phase A** builds a
/// per-function summary for every user function (each file summarizes the
/// functions it canonically declares); the summaries are then merged into
/// one read-only map. **Phase B** executes every file's top-level flow
/// against the merged map. Because each file is a self-contained task and
/// the joins are index-ordered, the output is bit-identical for any job
/// count — `Runtime::serial()` runs the exact same decomposition inline.
pub fn analyze_with(
    catalog: &Catalog,
    options: &AnalysisOptions,
    files: &[SourceFile],
    runtime: &Runtime,
) -> Vec<Candidate> {
    analyze_with_obs(catalog, options, files, runtime, wap_obs::disabled().job())
}

/// [`analyze_with`] recording per-file taint spans, the summary-merge
/// barrier, and top-level execution into a `wap-obs` job. Tracing is
/// observation only — the candidate stream is bit-identical to an
/// untraced run at any job count.
pub fn analyze_with_obs(
    catalog: &Catalog,
    options: &AnalysisOptions,
    files: &[SourceFile],
    runtime: &Runtime,
    obs: wap_obs::JobHandle<'_>,
) -> Vec<Candidate> {
    analyze_with_resolutions(catalog, options, files, &HashMap::new(), runtime, obs)
}

/// [`analyze_with_obs`] plus value-analysis resolution facts (see
/// [`FileResolution`]): resolved dynamic includes are executed inline and
/// resolved dynamic calls dispatch through function summaries. An empty
/// map reproduces [`analyze_with_obs`] byte-for-byte.
pub fn analyze_with_resolutions(
    catalog: &Catalog,
    options: &AnalysisOptions,
    files: &[SourceFile],
    resolutions: &HashMap<String, FileResolution>,
    runtime: &Runtime,
    obs: wap_obs::JobHandle<'_>,
) -> Vec<Candidate> {
    let (mut candidates, store_seen) =
        run_pass(catalog, options, files, resolutions, runtime, false, obs);
    if options.second_order && store_seen {
        // second-order pass: stored data coming back from the database is
        // attacker-controlled; duplicates are removed by the final dedup
        let (more, _) = run_pass(catalog, options, files, resolutions, runtime, true, obs);
        candidates.extend(more);
    }
    dedup_and_sort(candidates)
}

/// Everything a phase-A task hands back: the summaries this file
/// canonically owns, the candidates found inside function bodies, and the
/// literal-tracking state the same file's phase-B task resumes from.
struct PhaseA {
    summaries: HashMap<Symbol, FnSummary>,
    candidates: Vec<Candidate>,
    state: CarriedState,
    store_seen: bool,
}

/// The per-file artifacts of one analysis pass: everything the pass
/// barrier consumes and everything needed to replay this file's
/// contribution without re-analyzing it. This is the unit the incremental
/// cache stores (serialized via [`crate::serial`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PassArtifacts {
    /// Summaries of the functions this file canonically declares.
    pub(crate) summaries: HashMap<Symbol, FnSummary>,
    /// Candidates reported while summarizing function bodies (phase A).
    pub(crate) a_candidates: Vec<Candidate>,
    /// Candidates reported by the top-level flow (phase B).
    pub(crate) b_candidates: Vec<Candidate>,
    /// Whether this file stored tainted data via INSERT/UPDATE/REPLACE.
    pub(crate) store_seen: bool,
}

impl PassArtifacts {
    /// Whether this file stored tainted data (drives the second-order pass).
    pub fn store_seen(&self) -> bool {
        self.store_seen
    }

    /// Total candidates this file contributed in this pass.
    pub fn candidate_count(&self) -> usize {
        self.a_candidates.len() + self.b_candidates.len()
    }
}

/// One file fed into [`run_pass_incremental`].
///
/// Contract (upheld by `wap-core`'s cache orchestration):
/// - `decl_names` lists the lowercased function names the file declares,
///   in declaration order — for a parsed file this must equal
///   [`declared_names`] of its program.
/// - `program` must be `Some` for every file analyzed fresh
///   (`cached == None`), and for every file that declares functions
///   whenever *any* file in the set is analyzed fresh (so lazy foreign
///   walks behave exactly as in a cold run). A fully cached set may leave
///   every `program` as `None`.
pub struct PassInput<'a> {
    /// File name (reported in candidates).
    pub name: String,
    /// Parsed program, when available this run.
    pub program: Option<&'a Program>,
    /// Lowercased declared function names, in declaration order.
    pub decl_names: Vec<Symbol>,
    /// Artifacts replayed from the cache, or `None` to analyze fresh.
    pub cached: Option<PassArtifacts>,
}

/// Outcome of an incremental pass over a file set.
pub struct PassOutcome {
    /// Per-file artifacts, in input order: cached entries passed through
    /// untouched, fresh files newly computed.
    pub artifacts: Vec<PassArtifacts>,
    /// Which artifacts were computed fresh this run (parallel to
    /// `artifacts`) — these are the entries worth writing to the cache.
    pub fresh: Vec<bool>,
}

/// Lowercased function names a program declares, in declaration order.
pub fn declared_names(program: &Program) -> Vec<Symbol> {
    program
        .functions()
        .into_iter()
        .map(|f| f.name.lower())
        .collect()
}


/// Lowercased names of every call target a program references: plain
/// function calls, method calls (the engine's user-method lookup is
/// class-insensitive, by bare method name), and static-call method names.
/// Sorted and deduplicated.
///
/// These are the only names through which a file's analysis can depend on
/// another file's declarations, so the incremental cache uses them to
/// scope invalidation to actual dependents of an edited function.
pub fn referenced_names(program: &Program) -> Vec<Symbol> {
    let mut c = CallTargets(BTreeSet::new());
    use wap_php::visitor::Visitor as _;
    c.visit_program(program);
    c.0.into_iter().collect()
}

/// [`referenced_names`] restricted to one function declaration (its body,
/// parameter defaults, and any nested declarations).
pub fn function_refs(func: &Function) -> Vec<Symbol> {
    let mut c = CallTargets(BTreeSet::new());
    use wap_php::visitor::Visitor as _;
    c.visit_function(func);
    c.0.into_iter().collect()
}

struct CallTargets(BTreeSet<Symbol>);

impl wap_php::visitor::Visitor for CallTargets {
    fn visit_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Call { callee, .. } => {
                if let ExprKind::Name(n) = &callee.kind {
                    self.0.insert(n.lower());
                }
            }
            ExprKind::MethodCall { method, .. } | ExprKind::StaticCall { method, .. } => {
                self.0.insert(method.lower());
            }
            _ => {}
        }
        wap_php::visitor::walk_expr(self, e);
    }
}

/// A stable fingerprint of one function declaration, used by the
/// incremental cache to detect when any callee a file might depend on has
/// changed.
///
/// Hashes the declaration's source slice plus its position (start offset
/// and line), so it is exactly as sensitive as the Debug-format AST hash
/// it replaced — summaries carry absolute spans, so a declaration that
/// merely moves must still re-fingerprint — while reading only the
/// function's bytes instead of formatting its whole AST.
pub fn function_fingerprint(src: &str, func: &Function) -> String {
    let start = func.span.start() as usize;
    let end = (func.span.end() as usize).min(src.len());
    let text: &[u8] = src.as_bytes().get(start..end.max(start)).unwrap_or(b"");
    let start_bytes = func.span.start().to_le_bytes();
    let line_bytes = func.span.line().to_le_bytes();
    fields_hash([
        func.name.as_str().as_bytes(),
        &start_bytes[..],
        &line_bytes[..],
        text,
    ])
}

/// Value-analysis resolution facts for one file, produced by
/// `wap-cfg::values` and consumed by phase B: extra call-graph edges the
/// purely syntactic walk cannot see.
///
/// Offsets are the `span.start()` of the include's *path expression*
/// (for `includes`) and of the *call expression* (for `calls`) — the same
/// keys `wap_cfg::ValueResolution` records, so `wap-core` can convert one
/// into the other without re-deriving spans.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FileResolution {
    /// Include path-expression start offset → resolved scan-set file
    /// names (sorted). Phase B executes each target's top-level
    /// statements inline, attributing candidates to the included file.
    pub includes: HashMap<u32, Vec<String>>,
    /// Dynamic call-expression start offset → resolved function names
    /// (sorted). Phase B dispatches the call to each target's summary
    /// instead of the conservative join-all-arguments fallback.
    pub calls: HashMap<u32, Vec<String>>,
}

/// Shared, read-only view of every file's resolution facts plus the
/// parsed programs includes can be inlined from. Copied into each
/// phase-B engine; phase A never resolves (summaries must not depend on
/// other files' top-level flow).
#[derive(Clone, Copy)]
struct ResolveCtx<'a> {
    resolutions: &'a HashMap<String, FileResolution>,
    programs: &'a HashMap<&'a str, &'a Program>,
}

/// Re-executing resolved includes nests at most this deep (cycles are
/// cut by the include stack; this bounds pathological chains).
const MAX_INCLUDE_DEPTH: usize = 8;

/// Canonical record in the shared function index: the first declaration
/// of a name in (file order, declaration order). `func` is `None` when
/// the owning file's body was not parsed this run (only possible for
/// cached files in a fully warm incremental pass).
struct FnDecl<'a> {
    owner: usize,
    func: Option<&'a Function>,
}

type FnIndex<'a> = HashMap<Symbol, FnDecl<'a>>;

fn build_fn_index<'a>(files: &[PassInput<'a>]) -> FnIndex<'a> {
    let mut index = FnIndex::new();
    for (i, f) in files.iter().enumerate() {
        let funcs: Vec<&'a Function> = f.program.map(|p| p.functions()).unwrap_or_default();
        for (j, name) in f.decl_names.iter().enumerate() {
            index.entry(*name).or_insert(FnDecl {
                owner: i,
                func: funcs.get(j).copied(),
            });
        }
    }
    index
}

/// Runs one analysis pass, re-analyzing only the files without cached
/// artifacts. With `cached == None` everywhere this is exactly the cold
/// pass: phase A summarizes each fresh file's functions, a barrier merges
/// cached and fresh summaries (canonical ownership keeps the key sets
/// disjoint), and phase B runs each fresh file's top-level flow against
/// the merged map. Joins are index-ordered, so for a fixed input the
/// outcome is bit-identical for any job count and any cached/fresh split.
pub fn run_pass_incremental(
    catalog: &Catalog,
    options: &AnalysisOptions,
    files: &[PassInput<'_>],
    runtime: &Runtime,
    fetch_is_tainted: bool,
    obs: wap_obs::JobHandle<'_>,
) -> PassOutcome {
    run_pass_incremental_with_resolutions(
        catalog,
        options,
        files,
        &HashMap::new(),
        runtime,
        fetch_is_tainted,
        obs,
    )
}

/// [`run_pass_incremental`] with value-analysis resolution facts: phase B
/// inlines resolved includes and dispatches resolved dynamic calls. With
/// an empty map this is byte-identical to the plain pass (the default
/// configuration never constructs resolutions).
pub fn run_pass_incremental_with_resolutions(
    catalog: &Catalog,
    options: &AnalysisOptions,
    files: &[PassInput<'_>],
    resolutions: &HashMap<String, FileResolution>,
    runtime: &Runtime,
    fetch_is_tainted: bool,
    obs: wap_obs::JobHandle<'_>,
) -> PassOutcome {
    let index = build_fn_index(files);
    let programs_by_name: HashMap<&str, &Program> = files
        .iter()
        .filter_map(|f| f.program.map(|p| (f.name.as_str(), p)))
        .collect();
    let resolve = (!resolutions.is_empty()).then_some(ResolveCtx {
        resolutions,
        programs: &programs_by_name,
    });
    let miss: Vec<usize> = files
        .iter()
        .enumerate()
        .filter(|(_, f)| f.cached.is_none())
        .map(|(i, _)| i)
        .collect();

    // Phase A: summarize every fresh file's functions, one task per file.
    let phase_a: Vec<PhaseA> = runtime.map(miss.clone(), |_, i| {
        let f = &files[i];
        let _span = obs.span_file(Phase::Taint, &f.name);
        let program = f.program.expect("fresh file must be parsed");
        let mut engine = Engine::for_file(
            catalog,
            options,
            &index,
            i,
            &f.name,
            program,
            None,
            None,
            fetch_is_tainted,
            CarriedState::default(),
        );
        engine.summarize_own();
        engine.into_phase_a()
    });

    // Barrier: merge cached and fresh summaries.
    let merge_span = obs.span(Phase::SummaryMerge);
    let mut fresh_a: Vec<Option<PhaseA>> = files.iter().map(|_| None).collect();
    for (j, pa) in phase_a.into_iter().enumerate() {
        fresh_a[miss[j]] = Some(pa);
    }
    let mut merged: HashMap<Symbol, FnSummary> = HashMap::new();
    for (i, f) in files.iter().enumerate() {
        match (&f.cached, &fresh_a[i]) {
            (Some(c), _) => merged.extend(c.summaries.clone()),
            (None, Some(pa)) => merged.extend(pa.summaries.clone()),
            (None, None) => unreachable!("fresh file has phase-A output"),
        }
    }
    let merged = Arc::new(merged);
    drop(merge_span);

    // Phase B: top-level flow of every fresh file against the merged
    // summaries, resuming the literal-tracking state from its phase A.
    let states: Vec<(usize, CarriedState)> = miss
        .iter()
        .map(|&i| {
            let state = std::mem::take(&mut fresh_a[i].as_mut().expect("fresh").state);
            (i, state)
        })
        .collect();
    let results = runtime.map(states, |_, (i, state)| {
        let f = &files[i];
        let _span = obs.span_file(Phase::TopLevelExec, &f.name);
        let program = f.program.expect("fresh file must be parsed");
        let mut engine = Engine::for_file(
            catalog,
            options,
            &index,
            i,
            &f.name,
            program,
            Some(Arc::clone(&merged)),
            resolve,
            fetch_is_tainted,
            state,
        );
        engine.run_toplevel();
        (
            i,
            std::mem::take(&mut engine.candidates),
            engine.tainted_store_seen,
        )
    });
    let mut phase_b: Vec<Option<(Vec<Candidate>, bool)>> = files.iter().map(|_| None).collect();
    for (i, found, seen) in results {
        phase_b[i] = Some((found, seen));
    }

    let mut artifacts = Vec::with_capacity(files.len());
    let mut fresh = Vec::with_capacity(files.len());
    for (i, f) in files.iter().enumerate() {
        if let Some(c) = &f.cached {
            artifacts.push(c.clone());
            fresh.push(false);
        } else {
            let pa = fresh_a[i].take().expect("fresh file has phase-A output");
            let (b_candidates, b_seen) = phase_b[i].take().expect("fresh file has phase-B output");
            artifacts.push(PassArtifacts {
                summaries: pa.summaries,
                a_candidates: pa.candidates,
                b_candidates,
                store_seen: pa.store_seen || b_seen,
            });
            fresh.push(true);
        }
    }
    PassOutcome { artifacts, fresh }
}

/// Flattens per-file pass artifacts into the pass's candidate stream in
/// canonical order: all phase-A candidates in file order, then all
/// phase-B candidates in file order — the exact interleaving a cold
/// [`analyze_with`] run produces, which [`dedup_and_sort`] (first
/// occurrence wins) relies on.
pub fn pass_candidates(artifacts: &[PassArtifacts]) -> Vec<Candidate> {
    let mut out = Vec::new();
    for a in artifacts {
        out.extend(a.a_candidates.iter().cloned());
    }
    for a in artifacts {
        out.extend(a.b_candidates.iter().cloned());
    }
    out
}

fn run_pass(
    catalog: &Catalog,
    options: &AnalysisOptions,
    files: &[SourceFile],
    resolutions: &HashMap<String, FileResolution>,
    runtime: &Runtime,
    fetch_is_tainted: bool,
    obs: wap_obs::JobHandle<'_>,
) -> (Vec<Candidate>, bool) {
    let inputs: Vec<PassInput<'_>> = files
        .iter()
        .map(|f| PassInput {
            name: f.name.clone(),
            program: Some(&f.program),
            decl_names: declared_names(&f.program),
            cached: None,
        })
        .collect();
    let outcome = run_pass_incremental_with_resolutions(
        catalog,
        options,
        &inputs,
        resolutions,
        runtime,
        fetch_is_tainted,
        obs,
    );
    let store_seen = outcome.artifacts.iter().any(|a| a.store_seen);
    (pass_candidates(&outcome.artifacts), store_seen)
}

/// Final join: deduplicate (loop re-execution, joined branches, and the
/// second-order pass can repeat a finding at the same sink), then sort by
/// a total key so the output order never depends on task scheduling.
///
/// Public so the incremental pipeline in `wap-core` can finalize a
/// candidate stream reassembled from cached and fresh pass artifacts
/// exactly as a cold run would.
pub fn dedup_and_sort(mut candidates: Vec<Candidate>) -> Vec<Candidate> {
    let mut seen = HashSet::new();
    candidates.retain(|c| {
        let key = (
            c.class.clone(),
            c.sink_span,
            c.sink.clone(),
            c.sources.clone(),
            c.file.clone(),
        );
        seen.insert(key)
    });
    candidates.sort_by(|a, b| {
        (
            a.file.as_deref(),
            a.line,
            a.sink_span.start(),
            &a.class,
            &a.sink,
            &a.sources,
        )
            .cmp(&(
                b.file.as_deref(),
                b.line,
                b.sink_span.start(),
                &b.class,
                &b.sink,
                &b.sources,
            ))
    });
    candidates
}

/// Convenience wrapper for a single anonymous program.
pub fn analyze_program(catalog: &Catalog, program: &Program) -> Vec<Candidate> {
    let files = vec![SourceFile {
        name: "<input>".into(),
        program: program.clone(),
    }];
    analyze(catalog, &AnalysisOptions::default(), &files)
}

// ---- function summaries ----

/// Flow of one parameter to the function's return value.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ParamFlow {
    pub(crate) flows: bool,
    pub(crate) sanitized: BTreeSet<VulnClass>,
}

/// A sink inside a function reachable from one of its parameters.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ParamSink {
    pub(crate) param: usize,
    pub(crate) class: VulnClass,
    pub(crate) sink: String,
    pub(crate) span: Span,
    pub(crate) fix_site: Span,
    pub(crate) tainted_arg: Option<usize>,
    pub(crate) literals: Vec<String>,
    pub(crate) sanitized: BTreeSet<VulnClass>,
    pub(crate) inner_steps: Vec<TaintStep>,
}

#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FnSummary {
    pub(crate) ret_from_params: Vec<ParamFlow>,
    pub(crate) ret_direct: TaintState,
    pub(crate) param_sinks: Vec<ParamSink>,
}

// Hash, not BTree: `Symbol` orders by *string* (determinism contract), so
// a BTreeMap pays a string comparison per tree level on every variable
// read/write in the hot evaluation loops. Nothing iterates an `Env` except
// `join_envs`, whose per-key fold is order-independent, so map iteration
// order never reaches output.
type Env = HashMap<Symbol, TaintState>;

/// Literal-tracking state threaded from a file's phase-A task into its
/// phase-B task, so within-file behavior matches a straight serial walk.
#[derive(Debug, Default)]
struct CarriedState {
    var_literals: HashMap<Symbol, Vec<String>>,
    var_fix_site: HashMap<Symbol, Span>,
}

struct Engine<'a> {
    catalog: &'a Catalog,
    options: &'a AnalysisOptions,
    /// The file this task analyzes.
    file_idx: usize,
    /// The analyzed file's parsed program.
    program: &'a Program,
    /// Canonical declaration of every user function: the first declaration
    /// in (file, declaration) order. Built once per pass and shared by all
    /// of the pass's tasks.
    functions: &'a FnIndex<'a>,
    summaries: HashMap<Symbol, FnSummary>,
    /// Merged summaries from phase A (read-only, shared across phase-B
    /// tasks). `None` during phase A, where summaries are computed locally.
    shared: Option<Arc<HashMap<Symbol, FnSummary>>>,
    in_progress: HashSet<Symbol>,
    candidates: Vec<Candidate>,
    current_file: String,
    /// Return-taint accumulator for the function currently being summarized.
    ret_stack: Vec<TaintState>,
    /// Literal string fragments ever assigned into each variable — a
    /// flow-insensitive over-approximation of the query text a variable
    /// holds, feeding the SQL-manipulation attributes of Table I.
    var_literals: HashMap<Symbol, Vec<String>>,
    /// Per-variable span of the expression a fix should wrap: the single
    /// tainted leaf of the assignment that tainted the variable (when the
    /// leaf is wrappable, i.e. not inside an interpolated string).
    var_fix_site: HashMap<Symbol, Span>,
    /// Set when a first pass saw tainted data stored via INSERT/UPDATE.
    tainted_store_seen: bool,
    /// Second-order pass: fetch functions return tainted stored data.
    fetch_is_tainted: bool,
    /// Value-analysis resolution facts (`--values` only). `None` in
    /// phase A and in every default-configuration run.
    resolve: Option<ResolveCtx<'a>>,
    /// Files currently being inlined (cycle guard for resolved includes);
    /// holds the *parents* of `current_file`, root first.
    include_stack: Vec<String>,
}

impl<'a> Engine<'a> {
    #[allow(clippy::too_many_arguments)]
    fn for_file(
        catalog: &'a Catalog,
        options: &'a AnalysisOptions,
        functions: &'a FnIndex<'a>,
        file_idx: usize,
        name: &str,
        program: &'a Program,
        shared: Option<Arc<HashMap<Symbol, FnSummary>>>,
        resolve: Option<ResolveCtx<'a>>,
        fetch_is_tainted: bool,
        state: CarriedState,
    ) -> Self {
        Engine {
            catalog,
            options,
            file_idx,
            program,
            functions,
            summaries: HashMap::new(),
            shared,
            in_progress: HashSet::new(),
            candidates: Vec::new(),
            current_file: name.to_string(),
            ret_stack: Vec::new(),
            var_literals: state.var_literals,
            var_fix_site: state.var_fix_site,
            tainted_store_seen: false,
            fetch_is_tainted,
            resolve,
            include_stack: Vec::new(),
        }
    }

    /// Tears a phase-A engine down into what the pass aggregator needs,
    /// keeping only the summaries this file canonically declares (lazily
    /// computed foreign summaries are recomputed identically — and kept —
    /// by their defining file's task).
    fn into_phase_a(mut self) -> PhaseA {
        let functions = self.functions;
        let file_idx = self.file_idx;
        self.summaries
            .retain(|name, _| functions.get(name).is_some_and(|d| d.owner == file_idx));
        PhaseA {
            summaries: self.summaries,
            candidates: self.candidates,
            state: CarriedState {
                var_literals: self.var_literals,
                var_fix_site: self.var_fix_site,
            },
            store_seen: self.tainted_store_seen,
        }
    }

    /// Records the literal fragments visible in an assignment, so that
    /// queries built across several statements keep their text.
    fn track_var_literals(&mut self, target: &Expr, value: &Expr, append: bool) {
        let Some(root) = target.root_var_symbol() else {
            return;
        };
        let mut fragments = collect_literals(value);
        // pull in fragments of variables referenced by the value
        let mut referenced = Vec::new();
        collect_vars_into(value, &mut referenced);
        for v in referenced {
            if let Some(fs) = self.var_literals.get(&v) {
                fragments.extend(fs.iter().cloned());
            }
        }
        let entry = self.var_literals.entry(root).or_default();
        if !append {
            entry.clear();
        }
        for f in fragments {
            if entry.len() >= MAX_LITERALS {
                break;
            }
            if !entry.contains(&f) {
                entry.push(f);
            }
        }
    }

    /// When a sink argument is a plain variable, the fix can wrap the
    /// expression that originally tainted it (sanitize at entry).
    fn var_assignment_site(&self, arg: &Expr) -> Option<Span> {
        match &arg.kind {
            ExprKind::Var(n) => self.var_fix_site.get(n).copied(),
            _ => None,
        }
    }

    /// Literal fragments associated with the carrier variables of a flow.
    fn carrier_literals(&self, carriers: impl IntoIterator<Item = Symbol>) -> Vec<String> {
        let mut out = Vec::new();
        for c in carriers {
            if let Some(fs) = self.var_literals.get(&c) {
                for f in fs {
                    if !out.contains(f) {
                        out.push(f.clone());
                    }
                }
            }
        }
        out
    }

    /// Phase A: summarize every user function this file canonically
    /// declares, in name order. This also reports flows that start at entry
    /// points *inside* function bodies, attributed to the declaring file.
    fn summarize_own(&mut self) {
        let mut decls: Vec<(Symbol, &'a Function)> = self
            .program
            .functions()
            .into_iter()
            .map(|func| (func.name.lower(), func))
            .collect();
        decls.sort_by(|a, b| a.0.cmp(&b.0));
        let file_idx = self.file_idx;
        for (name, func) in decls {
            // skip shadowed re-declarations: only the canonical declaration
            // (first in file order) defines the summary
            if self
                .functions
                .get(&name)
                .is_some_and(|d| d.owner == file_idx)
            {
                self.summary_for_decl(name, func);
            }
        }
    }

    /// Phase B: the top-level flow of this file.
    fn run_toplevel(&mut self) {
        let mut env = Env::new();
        let stmts = &self.program.stmts;
        self.exec_block(&mut env, stmts);
    }

    // ---- summaries ----

    fn param_marker(name: Symbol, i: usize) -> String {
        format!("@param:{name}:{i}")
    }

    fn summary_for_decl(&mut self, name: Symbol, func: &'a Function) {
        if self.summaries.contains_key(&name)
            || self.in_progress.contains(&name)
            || self.shared.as_ref().is_some_and(|s| s.contains_key(&name))
        {
            return;
        }
        self.in_progress.insert(name);
        // candidates recorded from here on belong to this function's body
        let checkpoint = self.candidates.len();

        let mut env = Env::new();
        for (i, p) in func.params.iter().enumerate() {
            env.insert(
                p.name,
                TaintState::source(Self::param_marker(name, i), func.span).with_carrier(p.name),
            );
        }
        self.ret_stack.push(TaintState::Clean);
        self.exec_block(&mut env, &func.body);
        let ret = self.ret_stack.pop().expect("pushed above");

        // decompose the return taint into per-param flows + direct taint
        let mut ret_from_params = vec![ParamFlow::default(); func.params.len()];
        let mut ret_direct = TaintState::Clean;
        if let TaintState::Tainted(info) = &ret {
            let mut direct_sources: BTreeSet<Symbol> = BTreeSet::new();
            for s in &info.sources {
                if let Some(idx) = parse_param_marker(s.as_str(), name.as_str()) {
                    if idx < ret_from_params.len() {
                        ret_from_params[idx] = ParamFlow {
                            flows: true,
                            sanitized: info.sanitized.clone(),
                        };
                    }
                } else {
                    direct_sources.insert(*s);
                }
            }
            if !direct_sources.is_empty() {
                let mut d = crate::TaintInfo::clone(info);
                d.sources = direct_sources;
                ret_direct = TaintState::Tainted(std::sync::Arc::new(d));
            }
        }

        // candidates recorded during summarization that reference param
        // markers are internal flows, not real findings: split them out.
        // Real-source flows inside a *foreign* function's body are dropped
        // here — the declaring file's task finds and keeps the same flows.
        let owns = self
            .functions
            .get(&name)
            .is_none_or(|d| d.owner == self.file_idx);
        let mut param_sinks = Vec::new();
        for c in self.candidates.split_off(checkpoint) {
            let param_srcs: Vec<usize> = c
                .sources
                .iter()
                .filter_map(|s| parse_param_marker(s, name.as_str()))
                .collect();
            let real_srcs: Vec<String> = c
                .sources
                .iter()
                .filter(|s| !s.starts_with("@param:"))
                .cloned()
                .collect();
            if !real_srcs.is_empty() && owns {
                let mut c2 = c.clone();
                c2.sources = real_srcs;
                self.candidates.push(c2);
            }
            for p in param_srcs {
                param_sinks.push(ParamSink {
                    param: p,
                    class: c.class.clone(),
                    sink: c.sink.clone(),
                    span: c.sink_span,
                    fix_site: c.fix_site,
                    tainted_arg: c.tainted_arg,
                    literals: c.literal_fragments.clone(),
                    sanitized: BTreeSet::new(),
                    inner_steps: c.path.clone(),
                });
            }
        }

        self.in_progress.remove(&name);
        self.summaries.insert(
            name,
            FnSummary {
                ret_from_params,
                ret_direct,
                param_sinks,
            },
        );
    }

    fn summary(&mut self, name: Symbol) -> FnSummary {
        let lname = name.lower();
        if let Some(s) = self.summaries.get(&lname) {
            return s.clone();
        }
        if let Some(s) = self.shared.as_ref().and_then(|s| s.get(&lname)) {
            return s.clone();
        }
        if self.in_progress.contains(&lname) {
            return FnSummary::default(); // recursion cut-off
        }
        if let Some(decl) = self.functions.get(&lname) {
            if let Some(func) = decl.func {
                self.summary_for_decl(lname, func);
                return self.summaries.get(&lname).cloned().unwrap_or_default();
            }
            // The owner's body was not parsed this run — only possible in
            // a fully warm incremental pass, where every canonical summary
            // is already in `shared` (checked above), so this arm is a
            // defensive fallback rather than a reachable path.
            return FnSummary::default();
        }
        FnSummary::default()
    }

    // ---- statements ----

    fn exec_block(&mut self, env: &mut Env, stmts: &'a [Stmt]) {
        for s in stmts {
            self.exec_stmt(env, s);
        }
    }

    fn exec_stmt(&mut self, env: &mut Env, stmt: &'a Stmt) {
        match &stmt.kind {
            StmtKind::Expr(e) | StmtKind::Throw(e) => {
                self.eval(env, e);
            }
            StmtKind::Echo(items) => {
                for e in items {
                    let t = self.eval(env, e);
                    self.check_echo_sink("echo", e, &t, stmt.span);
                }
            }
            StmtKind::InlineHtml(_) | StmtKind::Nop => {}
            StmtKind::If {
                cond,
                then_branch,
                elseifs,
                else_branch,
            } => {
                self.eval(env, cond);
                let mut branches: Vec<Env> = Vec::new();
                let mut b1 = env.clone();
                self.exec_block(&mut b1, then_branch);
                branches.push(b1);
                for (c, b) in elseifs {
                    self.eval(env, c);
                    let mut bi = env.clone();
                    self.exec_block(&mut bi, b);
                    branches.push(bi);
                }
                match else_branch {
                    Some(b) => {
                        let mut be = env.clone();
                        self.exec_block(&mut be, b);
                        branches.push(be);
                    }
                    None => branches.push(env.clone()), // fall-through path
                }
                *env = join_envs(branches);
            }
            StmtKind::While { cond, body } => {
                for _ in 0..self.options.loop_passes.max(1) {
                    self.eval(env, cond);
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    *env = join_envs(vec![env.clone(), b]);
                }
            }
            StmtKind::DoWhile { body, cond } => {
                for _ in 0..self.options.loop_passes.max(1) {
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    *env = join_envs(vec![env.clone(), b]);
                    self.eval(env, cond);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.eval(env, e);
                }
                for _ in 0..self.options.loop_passes.max(1) {
                    for e in cond {
                        self.eval(env, e);
                    }
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    for e in step {
                        self.eval(&mut b, e);
                    }
                    *env = join_envs(vec![env.clone(), b]);
                }
            }
            StmtKind::Foreach {
                array,
                key,
                by_ref: _,
                value,
                body,
            } => {
                let arr = self.eval(env, array);
                let elem = arr.with_step("foreach element", stmt.span);
                if let Some(k) = key {
                    self.assign_to(env, k, elem.clone());
                }
                self.assign_to(env, value, elem);
                for _ in 0..self.options.loop_passes.max(1) {
                    let mut b = env.clone();
                    self.exec_block(&mut b, body);
                    *env = join_envs(vec![env.clone(), b]);
                }
            }
            StmtKind::Switch { subject, cases } => {
                self.eval(env, subject);
                let mut branches: Vec<Env> = vec![env.clone()];
                for c in cases {
                    if let Some(t) = &c.test {
                        self.eval(env, t);
                    }
                    let mut b = env.clone();
                    self.exec_block(&mut b, &c.body);
                    branches.push(b);
                }
                *env = join_envs(branches);
            }
            StmtKind::Break(_) | StmtKind::Continue(_) => {}
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    let t = self.eval(env, e);
                    if let Some(acc) = self.ret_stack.last_mut() {
                        *acc = acc.join(&t);
                    }
                }
            }
            StmtKind::Global(names) => {
                // globals are conservatively clean (DB handles, config)
                for n in names {
                    env.insert(*n, TaintState::Clean);
                }
            }
            StmtKind::StaticVars(vars) => {
                for (n, d) in vars {
                    let t = d
                        .as_ref()
                        .map(|e| self.eval(env, e))
                        .unwrap_or(TaintState::Clean);
                    env.insert(*n, t);
                }
            }
            StmtKind::Function(_) | StmtKind::Class(_) => {
                // summarized up front
            }
            StmtKind::Include { path, .. } => {
                let t = self.eval(env, path);
                self.check_include_sink(path, &t, stmt.span);
                self.exec_resolved_include(env, path);
            }
            StmtKind::Unset(targets) => {
                for t in targets {
                    if let Some(root) = t.root_var_symbol() {
                        env.remove(&root);
                    }
                }
            }
            StmtKind::Block(b) => self.exec_block(env, b),
            StmtKind::Try {
                body,
                catches,
                finally,
            } => {
                self.exec_block(env, body);
                let mut branches = vec![env.clone()];
                for c in catches {
                    let mut b = env.clone();
                    if let Some(v) = c.var {
                        b.insert(v, TaintState::Clean);
                    }
                    self.exec_block(&mut b, &c.body);
                    branches.push(b);
                }
                *env = join_envs(branches);
                if let Some(f) = finally {
                    self.exec_block(env, f);
                }
            }
        }
    }

    // ---- expressions ----

    fn eval(&mut self, env: &mut Env, expr: &'a Expr) -> TaintState {
        match &expr.kind {
            ExprKind::Var(n) => {
                if self.catalog.is_entry_superglobal(n.as_str())
                    || self.catalog.is_entry_variable(n.as_str())
                {
                    TaintState::source(format!("${n}"), expr.span)
                } else if let Some(t) = env.get(n) {
                    t.clone()
                } else if let Some(t) = env.get(&extract_all_key()) {
                    // unknown variable after extract(): attacker-supplied
                    t.clone().with_carrier(*n)
                } else {
                    TaintState::Clean
                }
            }
            ExprKind::Lit(_) | ExprKind::Name(_) | ExprKind::ClassConst { .. } => TaintState::Clean,
            ExprKind::Interp(parts) => {
                let mut t = TaintState::Clean;
                let mut literals = Vec::new();
                for p in parts {
                    match &p.kind {
                        ExprKind::Lit(Lit::Str(s)) => literals.push(s.clone()),
                        _ => {
                            let pt = self.eval(env, p);
                            t = t.join(&pt);
                        }
                    }
                }
                let t = t.with_step("string interpolation", expr.span);
                attach_literals(t, literals)
            }
            ExprKind::ArrayDim { base, index } => {
                // superglobal element: the canonical entry point
                if let ExprKind::Var(n) = &base.kind {
                    if self.catalog.is_entry_superglobal(n.as_str()) {
                        let key = index
                            .as_deref()
                            .and_then(|i| i.as_str_lit().map(str::to_string))
                            .unwrap_or_else(|| "?".to_string());
                        if let Some(i) = index {
                            self.eval(env, i);
                        }
                        return TaintState::source(format!("${n}['{key}']"), expr.span);
                    }
                }
                let bt = self.eval(env, base);
                if let Some(i) = index {
                    self.eval(env, i);
                }
                bt
            }
            ExprKind::Prop { base, name } => {
                if let Some(root) = base.root_var() {
                    let key = format!("{root}->{name}");
                    if let Some(t) = env.get(&Symbol::intern(&key)) {
                        return t.clone();
                    }
                }
                self.eval(env, base)
            }
            ExprKind::StaticProp { class, name } => env
                .get(&Symbol::intern(&format!("{class}::${name}")))
                .cloned()
                .unwrap_or(TaintState::Clean),
            ExprKind::Call { callee, args } => self.eval_call(env, callee, args, expr.span),
            ExprKind::MethodCall {
                target,
                method,
                args,
            } => self.eval_method_call(env, target, *method, args, expr.span),
            ExprKind::StaticCall {
                class,
                method,
                args,
            } => {
                let arg_taints: Vec<TaintState> = args.iter().map(|a| self.eval(env, a)).collect();
                let full = format!("{class}::{method}");
                self.apply_function_semantics(
                    Symbol::intern(&full),
                    *method,
                    args,
                    &arg_taints,
                    expr.span,
                    env,
                )
            }
            ExprKind::New { args, .. } => {
                let mut t = TaintState::Clean;
                for a in args {
                    t = t.join(&self.eval(env, a));
                }
                t.with_step("constructor argument", expr.span)
            }
            ExprKind::Assign {
                target, op, value, ..
            } => {
                let vt = self.eval(env, value);
                self.track_var_literals(target, value, *op == AssignOp::Concat);
                // remember where a fix could sanitize this variable's taint
                if let Some(root) = target.root_var_symbol() {
                    let site = vt.info().and_then(|info| {
                        single_tainted_leaf(value, info).or_else(|| wrappable_value_span(value))
                    });
                    match site {
                        Some(s) if *op == AssignOp::Assign => {
                            self.var_fix_site.insert(root, s);
                        }
                        _ => {
                            self.var_fix_site.remove(&root);
                        }
                    }
                }
                let new = match op {
                    AssignOp::Assign => vt,
                    AssignOp::Concat => {
                        let old = self.read_lvalue(env, target);
                        let joined = old
                            .join(&vt)
                            .with_step(format!("concat into {}", lvalue_name(target)), expr.span);
                        merge_literals(joined, &old, &vt)
                    }
                    AssignOp::Coalesce => {
                        let old = self.read_lvalue(env, target);
                        old.join(&vt)
                    }
                    // arithmetic compound assignments produce numbers
                    _ => TaintState::Clean,
                };
                self.assign_to(env, target, new.clone());
                new
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.eval(env, lhs);
                let rt = self.eval(env, rhs);
                match op {
                    BinOp::Concat => {
                        let joined = lt.join(&rt).with_step("string concatenation", expr.span);
                        let joined = merge_literals(joined, &lt, &rt);
                        let joined = absorb_literal(joined, lhs);
                        absorb_literal(joined, rhs)
                    }
                    BinOp::Coalesce => lt.join(&rt),
                    // comparisons, arithmetic, logic, and bit ops yield
                    // numbers/booleans that cannot carry a payload
                    _ => TaintState::Clean,
                }
            }
            ExprKind::Unary { expr: inner, .. } => {
                self.eval(env, inner);
                TaintState::Clean
            }
            ExprKind::IncDec { target, .. } => {
                self.read_lvalue(env, target);
                TaintState::Clean
            }
            ExprKind::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let ct = self.eval(env, cond);
                let tt = match then {
                    Some(t) => self.eval(env, t),
                    None => ct, // `?:` returns the condition value
                };
                let ot = self.eval(env, otherwise);
                tt.join(&ot)
            }
            ExprKind::Cast { ty, expr: inner } => {
                let t = self.eval(env, inner);
                if ty.is_sanitizing() {
                    TaintState::Clean
                } else {
                    t.with_step(format!("({}) cast", ty.keyword()), expr.span)
                }
            }
            ExprKind::Isset(es) => {
                for e in es {
                    self.eval(env, e);
                }
                TaintState::Clean
            }
            ExprKind::Empty(e) | ExprKind::InstanceOf { expr: e, .. } => {
                self.eval(env, e);
                TaintState::Clean
            }
            ExprKind::Array(items) => {
                let mut t = TaintState::Clean;
                for it in items {
                    if let Some(k) = &it.key {
                        self.eval(env, k);
                    }
                    t = t.join(&self.eval(env, &it.value));
                }
                t
            }
            ExprKind::List(_) => TaintState::Clean,
            ExprKind::Closure { body, uses, .. } => {
                // analyze the closure body with captured taint
                let mut inner = Env::new();
                for (name, _) in uses {
                    if let Some(t) = env.get(name) {
                        inner.insert(*name, t.clone());
                    }
                }
                self.exec_block(&mut inner, body);
                TaintState::Clean
            }
            ExprKind::ShellExec(parts) => {
                let mut t = TaintState::Clean;
                let mut literals = Vec::new();
                for p in parts {
                    match &p.kind {
                        ExprKind::Lit(Lit::Str(s)) => literals.push(s.clone()),
                        _ => t = t.join(&self.eval(env, p)),
                    }
                }
                // the backtick operator is an OS command injection sink
                let class = VulnClass::Osci;
                if self.catalog.has_class(&class) && t.is_tainted_for(&class) {
                    let info = t.info().expect("tainted");
                    let mut path = info.steps.clone();
                    path.push(TaintStep::new("sensitive sink ` ` (shell exec)", expr.span));
                    self.candidates.push(Candidate {
                        class,
                        sink: "`backtick`".to_string(),
                        sink_span: expr.span,
                        line: expr.span.line(),
                        sources: info.sources.iter().map(|s| s.as_str().to_string()).collect(),
                        path,
                        carriers: info.carriers.iter().map(|c| c.as_str().to_string()).collect(),
                        tainted_arg: None,
                        // report-only: the corrector cannot wrap an operator
                        fix_site: Span::synthetic(),
                        literal_fragments: literals,
                        file: Some(self.current_file.clone()),
                    });
                }
                // command output is fresh data, not the attacker's string
                TaintState::Clean
            }
            ExprKind::ErrorSuppress(e) => self.eval(env, e),
            ExprKind::Exit(arg) => {
                if let Some(a) = arg {
                    let t = self.eval(env, a);
                    self.check_echo_sink("exit", a, &t, expr.span);
                }
                TaintState::Clean
            }
            ExprKind::Print(e) => {
                let t = self.eval(env, e);
                self.check_echo_sink("print", e, &t, expr.span);
                TaintState::Clean
            }
            ExprKind::Clone(e) => self.eval(env, e),
            ExprKind::IncludeExpr { path, .. } => {
                let t = self.eval(env, path);
                self.check_include_sink(path, &t, expr.span);
                self.exec_resolved_include(env, path);
                TaintState::Clean
            }
        }
    }

    fn read_lvalue(&mut self, env: &mut Env, target: &'a Expr) -> TaintState {
        match &target.kind {
            ExprKind::Var(n) => env.get(n).cloned().unwrap_or(TaintState::Clean),
            ExprKind::ArrayDim { base, .. } => self.read_lvalue(env, base),
            ExprKind::Prop { base, name } => {
                if let Some(root) = base.root_var() {
                    env.get(&Symbol::intern(&format!("{root}->{name}")))
                        .cloned()
                        .unwrap_or(TaintState::Clean)
                } else {
                    TaintState::Clean
                }
            }
            ExprKind::StaticProp { class, name } => env
                .get(&Symbol::intern(&format!("{class}::${name}")))
                .cloned()
                .unwrap_or(TaintState::Clean),
            _ => TaintState::Clean,
        }
    }

    fn assign_to(&mut self, env: &mut Env, target: &'a Expr, value: TaintState) {
        match &target.kind {
            ExprKind::Var(n) => {
                let value = value.with_carrier(*n);
                env.insert(*n, value);
            }
            ExprKind::ArrayDim { base, .. } => {
                // element-insensitive: a tainted element taints the array
                if let Some(root) = base.root_var_symbol() {
                    let old = env.get(&root).cloned().unwrap_or(TaintState::Clean);
                    env.insert(root, old.join(&value).with_carrier(root));
                }
            }
            ExprKind::Prop { base, name } => {
                if let Some(root) = base.root_var() {
                    let key = Symbol::intern(&format!("{root}->{name}"));
                    let value = value.with_carrier(key);
                    env.insert(key, value);
                }
            }
            ExprKind::StaticProp { class, name } => {
                env.insert(Symbol::intern(&format!("{class}::${name}")), value);
            }
            ExprKind::List(items) => {
                for it in items.iter().flatten() {
                    self.assign_to(env, it, value.clone());
                }
            }
            _ => {}
        }
    }

    // ---- calls ----

    fn eval_call(
        &mut self,
        env: &mut Env,
        callee: &'a Expr,
        args: &'a [Expr],
        span: Span,
    ) -> TaintState {
        let arg_taints: Vec<TaintState> = args.iter().map(|a| self.eval(env, a)).collect();
        let name = match &callee.kind {
            ExprKind::Name(n) => *n,
            _ => {
                // dynamic call `$f(...)`: dispatch through the value
                // analysis' resolved targets when it pinned the callee
                // down, else propagate args conservatively
                self.eval(env, callee);
                if let Some(t) = self.dispatch_resolved(span, args, &arg_taints, env) {
                    return t;
                }
                return join_all(&arg_taints).with_step("dynamic call", span);
            }
        };
        if is_call_user_func(name.as_str()) && !args.is_empty() {
            // call_user_func($cb, ...$rest): when the value analysis
            // resolved $cb, dispatch $rest through the targets' semantics
            if let Some(t) = self.dispatch_resolved(span, &args[1..], &arg_taints[1..], env) {
                return t;
            }
        }
        self.apply_function_semantics(name, name, args, &arg_taints, span, env)
    }

    /// Resolved targets the value analysis recorded for the dynamic call
    /// at `span` in the current file, if any.
    fn resolved_call_targets(&self, span: Span) -> Option<Vec<String>> {
        let ctx = self.resolve?;
        ctx.resolutions
            .get(self.current_file.as_str())?
            .calls
            .get(&span.start())
            .cloned()
    }

    /// Dispatches a value-resolved dynamic call: every target's full
    /// function semantics (sinks, sanitizers, summaries) joined in the
    /// resolution's sorted order. `None` when the site is unresolved.
    fn dispatch_resolved(
        &mut self,
        span: Span,
        args: &'a [Expr],
        arg_taints: &[TaintState],
        env: &mut Env,
    ) -> Option<TaintState> {
        let targets = self.resolved_call_targets(span)?;
        let mut out = TaintState::Clean;
        for t in &targets {
            let sym = Symbol::intern(t);
            out = out.join(&self.apply_function_semantics(sym, sym, args, arg_taints, span, env));
        }
        Some(out.with_step("resolved dynamic call", span))
    }

    /// Phase-B, top-level only: when the value analysis resolved this
    /// include's path to scan-set files, execute their top-level
    /// statements inline against the caller's environment, attributing
    /// candidates to the included file. Cycles are cut by the include
    /// stack; depth is bounded by [`MAX_INCLUDE_DEPTH`].
    fn exec_resolved_include(&mut self, env: &mut Env, path: &'a Expr) {
        if self.shared.is_none() || !self.ret_stack.is_empty() {
            return;
        }
        let Some(ctx) = self.resolve else { return };
        let targets = match ctx
            .resolutions
            .get(self.current_file.as_str())
            .and_then(|r| r.includes.get(&path.span.start()))
        {
            Some(t) => t.clone(),
            None => return,
        };
        if self.include_stack.len() >= MAX_INCLUDE_DEPTH {
            return;
        }
        for target in targets {
            if target == self.current_file || self.include_stack.contains(&target) {
                continue;
            }
            let Some(program) = ctx.programs.get(target.as_str()).copied() else {
                continue;
            };
            let parent = std::mem::replace(&mut self.current_file, target);
            self.include_stack.push(parent.clone());
            self.exec_block(env, &program.stmts);
            self.include_stack.pop();
            self.current_file = parent;
        }
    }

    /// Shared semantics for plain and static calls.
    fn apply_function_semantics(
        &mut self,
        lookup_name: Symbol,
        display_name: Symbol,
        args: &'a [Expr],
        arg_taints: &[TaintState],
        span: Span,
        env: &mut Env,
    ) -> TaintState {
        // 0a. extract($_POST) imports attacker-controlled variables: every
        // unknown variable read afterwards must be considered tainted
        if display_name.as_str().eq_ignore_ascii_case("extract") {
            if let Some(t) = arg_taints.first() {
                if t.is_tainted() {
                    env.insert(
                        extract_all_key(),
                        t.with_step("extract() imported request data", span),
                    );
                }
            }
            return TaintState::Clean;
        }
        // 0b. second-order pass: database fetch results are stored data
        if self.fetch_is_tainted && is_fetch_function(display_name.as_str()) {
            return TaintState::source(STORED_DATA_SOURCE, span);
        }

        // 0c. decoders revoke sanitization: stripslashes() undoes
        // addslashes(), urldecode() re-introduces encoded payloads
        if is_desanitizer(display_name.as_str()) {
            let t = join_all(arg_taints);
            if let TaintState::Tainted(mut info) = t {
                std::sync::Arc::make_mut(&mut info).sanitized.clear();
                return TaintState::Tainted(info)
                    .with_step(format!("de-sanitized by {display_name}()"), span);
            }
            return TaintState::Clean;
        }

        // 1. sensitive sink?
        self.check_function_sink(display_name.as_str(), args, arg_taints, span);

        // 2. sanitizer?
        let sanitized_classes = self.catalog.sanitized_classes(display_name.as_str());
        if !sanitized_classes.is_empty() {
            let t = join_all(arg_taints);
            return t.sanitize(&sanitized_classes, display_name.as_str(), span);
        }

        // 3. entry-point function (weapon-provided)?
        if self.catalog.is_entry_function(display_name.as_str()) {
            return TaintState::source(format!("{display_name}()"), span);
        }

        // 4. user-defined function?
        if self.options.interprocedural && self.functions.contains_key(&lookup_name.lower()) {
            return self.apply_summary(lookup_name, display_name, arg_taints, span);
        }

        // 5. known clean-returning builtin?
        if returns_clean(display_name.as_str()) {
            return TaintState::Clean;
        }

        // 6. unknown function: conservatively propagate argument taint
        join_all(arg_taints).with_step(format!("through {display_name}()"), span)
    }

    fn apply_summary(
        &mut self,
        lookup_name: Symbol,
        display_name: Symbol,
        arg_taints: &[TaintState],
        span: Span,
    ) -> TaintState {
        let summary = self.summary(lookup_name);

        // report internal sinks reached by tainted call arguments
        for ps in &summary.param_sinks {
            if let Some(t) = arg_taints.get(ps.param) {
                if t.is_tainted_for(&ps.class) && !ps.sanitized.contains(&ps.class) {
                    if let Some(info) = t.info() {
                        let mut path = info.steps.clone();
                        path.push(TaintStep::new(
                            format!("into {display_name}() parameter {}", ps.param),
                            span,
                        ));
                        path.extend(ps.inner_steps.iter().cloned());
                        self.candidates.push(Candidate {
                            class: ps.class.clone(),
                            sink: ps.sink.clone(),
                            sink_span: ps.span,
                            line: ps.span.line(),
                            sources: info.sources.iter().map(|s| s.as_str().to_string()).collect(),
                            path,
                            carriers: info.carriers.iter().map(|c| c.as_str().to_string()).collect(),
                            tainted_arg: ps.tainted_arg,
                            fix_site: ps.fix_site,
                            literal_fragments: ps.literals.clone(),
                            file: Some(self.current_file.clone()),
                        });
                    }
                }
            }
        }

        // return taint
        let mut out = summary.ret_direct.clone();
        for (i, flow) in summary.ret_from_params.iter().enumerate() {
            if flow.flows {
                if let Some(TaintState::Tainted(info)) = arg_taints.get(i) {
                    let mut info = std::sync::Arc::clone(info);
                    let m = std::sync::Arc::make_mut(&mut info);
                    for c in &flow.sanitized {
                        m.sanitized.insert(c.clone());
                    }
                    out = out.join(&TaintState::Tainted(info));
                }
            }
        }
        out.with_step(format!("through {display_name}()"), span)
    }

    fn eval_method_call(
        &mut self,
        env: &mut Env,
        target: &'a Expr,
        method: Symbol,
        args: &'a [Expr],
        span: Span,
    ) -> TaintState {
        let target_taint = self.eval(env, target);
        let arg_taints: Vec<TaintState> = args.iter().map(|a| self.eval(env, a)).collect();
        let receiver = target.root_var();

        // second-order pass: $result->fetch_assoc() returns stored data
        if self.fetch_is_tainted && is_fetch_function(method.as_str()) {
            return TaintState::source(STORED_DATA_SOURCE, span);
        }

        // 1. method sink?
        self.check_method_sink(method.as_str(), receiver, args, &arg_taints, span);

        // 2. sanitizer method (e.g. $wpdb->prepare, $db->escape)?
        let sanitized_classes = self.catalog.sanitized_classes(method.as_str());
        if !sanitized_classes.is_empty() {
            return join_all(&arg_taints).sanitize(&sanitized_classes, method.as_str(), span);
        }

        // 3. user-defined method (by name, class-insensitive)?
        if self.options.interprocedural && self.functions.contains_key(&method.lower()) {
            return self.apply_summary(method, method, &arg_taints, span);
        }

        // 4. unknown method: propagate receiver + args
        target_taint
            .join(&join_all(&arg_taints))
            .with_step(format!("through ->{method}()"), span)
    }

    // ---- sink checks ----

    fn check_function_sink(
        &mut self,
        name: &str,
        args: &'a [Expr],
        arg_taints: &[TaintState],
        span: Span,
    ) {
        let specs: Vec<(VulnClass, SinkArgs)> = self
            .catalog
            .sinks()
            .filter_map(|s| match &s.kind {
                SinkKind::Function(f) if f.eq_ignore_ascii_case(name) => {
                    Some((s.class.clone(), s.args.clone()))
                }
                _ => None,
            })
            .collect();
        for (class, policy) in specs {
            self.record_if_tainted(&class, name, args, arg_taints, &policy, span);
        }
    }

    fn check_method_sink(
        &mut self,
        method: &str,
        receiver: Option<&str>,
        args: &'a [Expr],
        arg_taints: &[TaintState],
        span: Span,
    ) {
        let specs: Vec<(VulnClass, SinkArgs)> = self
            .catalog
            .sinks()
            .filter_map(|s| match &s.kind {
                SinkKind::Method {
                    receiver_hint,
                    name,
                } if name.eq_ignore_ascii_case(method) => {
                    let receiver_ok = match (receiver_hint, receiver) {
                        (None, _) => true,
                        (Some(h), Some(r)) => h.eq_ignore_ascii_case(r),
                        (Some(_), None) => false,
                    };
                    receiver_ok.then(|| (s.class.clone(), s.args.clone()))
                }
                _ => None,
            })
            .collect();
        let display = match receiver {
            Some(r) => format!("${r}->{method}"),
            None => format!("->{method}"),
        };
        for (class, policy) in specs {
            self.record_if_tainted(&class, &display, args, arg_taints, &policy, span);
        }
    }

    fn record_if_tainted(
        &mut self,
        class: &VulnClass,
        sink: &str,
        args: &'a [Expr],
        arg_taints: &[TaintState],
        policy: &SinkArgs,
        span: Span,
    ) {
        let mut joined = TaintState::Clean;
        let mut first_arg = None;
        let mut fix_site = span;
        let mut literals = Vec::new();
        for (i, t) in arg_taints.iter().enumerate() {
            if policy.is_sensitive(i) && t.is_tainted_for(class) {
                if first_arg.is_none() {
                    first_arg = Some(i);
                    fix_site = t
                        .info()
                        .and_then(|info| single_tainted_leaf(&args[i], info))
                        .or_else(|| self.var_assignment_site(&args[i]))
                        .unwrap_or(args[i].span);
                }
                joined = joined.join(t);
                if let Some(info) = t.info() {
                    for l in &info.literals {
                        if !literals.contains(l) {
                            literals.push(l.clone());
                        }
                    }
                }
                for l in collect_literals(&args[i]) {
                    if !literals.contains(&l) {
                        literals.push(l);
                    }
                }
            }
        }
        if let TaintState::Tainted(info) = joined {
            for l in self.carrier_literals(info.carriers.iter().cloned()) {
                if !literals.contains(&l) {
                    literals.push(l);
                }
            }
            literals.dedup();
            // remember stores of XSS-capable data for the second-order pass
            if *class == VulnClass::Sqli
                && !info.sanitized.contains(&VulnClass::XssStored)
                && literals.iter().any(|l| {
                    let u = l.to_ascii_uppercase();
                    u.contains("INSERT") || u.contains("UPDATE") || u.contains("REPLACE")
                })
            {
                self.tainted_store_seen = true;
            }
            let mut path = info.steps.clone();
            path.push(TaintStep::new(format!("sensitive sink {sink}"), span));
            self.candidates.push(Candidate {
                class: class.clone(),
                sink: sink.to_string(),
                sink_span: span,
                line: span.line(),
                sources: info.sources.iter().map(|s| s.as_str().to_string()).collect(),
                path,
                carriers: info.carriers.iter().map(|c| c.as_str().to_string()).collect(),
                tainted_arg: first_arg,
                fix_site,
                literal_fragments: literals,
                file: Some(self.current_file.clone()),
            });
        }
    }

    fn check_echo_sink(&mut self, sink: &str, arg: &'a Expr, taint: &TaintState, span: Span) {
        let has_echo_sink = self
            .catalog
            .sinks()
            .any(|s| matches!(s.kind, SinkKind::EchoLike));
        if !has_echo_sink {
            return;
        }
        let stored = taint
            .info()
            .map(|i| i.sources.contains(&stored_data_source()))
            .unwrap_or(false);
        let class = if stored {
            VulnClass::XssStored
        } else {
            VulnClass::XssReflected
        };
        if taint.is_tainted_for(&class) {
            let info = taint.info().expect("tainted");
            let mut literals = info.literals.clone();
            for l in collect_literals(arg) {
                if !literals.contains(&l) {
                    literals.push(l);
                }
            }
            for l in self.carrier_literals(info.carriers.iter().cloned()) {
                if !literals.contains(&l) {
                    literals.push(l);
                }
            }
            let mut path = info.steps.clone();
            path.push(TaintStep::new(format!("sensitive sink {sink}"), span));
            let fix_site = single_tainted_leaf(arg, info)
                .or_else(|| self.var_assignment_site(arg))
                .unwrap_or(arg.span);
            self.candidates.push(Candidate {
                class,
                sink: sink.to_string(),
                sink_span: span,
                line: span.line(),
                sources: info.sources.iter().map(|s| s.as_str().to_string()).collect(),
                path,
                carriers: info.carriers.iter().map(|c| c.as_str().to_string()).collect(),
                tainted_arg: None,
                fix_site,
                literal_fragments: literals,
                file: Some(self.current_file.clone()),
            });
        }
    }

    fn check_include_sink(&mut self, path_expr: &'a Expr, taint: &TaintState, span: Span) {
        let include_classes: Vec<VulnClass> = self
            .catalog
            .sinks()
            .filter(|s| matches!(s.kind, SinkKind::Include))
            .map(|s| s.class.clone())
            .collect();
        if include_classes.is_empty() {
            return;
        }
        let literals = collect_literals(path_expr);
        // classification: a fully attacker-controlled path (or one with a
        // URL-ish literal) is remote file inclusion; a path anchored by a
        // local literal prefix is local file inclusion
        let class = if literals.is_empty() || literals.iter().any(|l| l.contains("://")) {
            VulnClass::Rfi
        } else {
            VulnClass::Lfi
        };
        if taint.is_tainted_for(&class) {
            let info = taint.info().expect("tainted");
            let mut path = info.steps.clone();
            path.push(TaintStep::new("sensitive sink include", span));
            self.candidates.push(Candidate {
                class,
                sink: "include".to_string(),
                sink_span: span,
                line: span.line(),
                sources: info.sources.iter().map(|s| s.as_str().to_string()).collect(),
                path,
                carriers: info.carriers.iter().map(|c| c.as_str().to_string()).collect(),
                tainted_arg: None,
                fix_site: path_expr.span,
                literal_fragments: literals,
                file: Some(self.current_file.clone()),
            });
        }
    }
}

/// When a sink argument is a concatenation with exactly one tainted leaf,
/// the corrector can wrap just that leaf instead of the whole argument —
/// a semantically tighter fix. Interpolated strings cannot be wrapped
/// (a call inside `"..."` would be literal text), so they return `None`.
fn single_tainted_leaf(expr: &Expr, info: &crate::state::TaintInfo) -> Option<Span> {
    fn leaves(expr: &Expr, info: &crate::state::TaintInfo, out: &mut Vec<Span>) {
        match &expr.kind {
            ExprKind::Binary {
                op: BinOp::Concat,
                lhs,
                rhs,
            } => {
                leaves(lhs, info, out);
                leaves(rhs, info, out);
            }
            ExprKind::Var(_) | ExprKind::ArrayDim { .. } | ExprKind::Prop { .. } => {
                let tainted = expr
                    .root_var_symbol()
                    .map(|r| {
                        info.carriers.contains(&r)
                            || info.sources.iter().any(|s| {
                                s.as_str()
                                    .strip_prefix('$')
                                    .is_some_and(|rest| rest.starts_with(r.as_str()))
                            })
                    })
                    .unwrap_or(false);
                if tainted {
                    out.push(expr.span);
                }
            }
            _ => {}
        }
    }
    // only meaningful when the argument is a concatenation tree
    if !matches!(
        expr.kind,
        ExprKind::Binary {
            op: BinOp::Concat,
            ..
        }
    ) {
        return None;
    }
    let mut out = Vec::new();
    leaves(expr, info, &mut out);
    if out.len() == 1 {
        Some(out[0])
    } else {
        None
    }
}

/// A value expression the corrector can wrap directly: a variable,
/// array/property fetch, or call — anything that is not an interpolated
/// string or literal.
fn wrappable_value_span(value: &Expr) -> Option<Span> {
    match &value.kind {
        ExprKind::Var(_)
        | ExprKind::ArrayDim { .. }
        | ExprKind::Prop { .. }
        | ExprKind::Call { .. }
        | ExprKind::MethodCall { .. } => Some(value.span),
        _ => None,
    }
}

/// Functions that *revoke* prior sanitization: decoding or un-escaping a
/// sanitized string brings the payload back.
fn is_desanitizer(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "stripslashes"
            | "stripcslashes"
            | "urldecode"
            | "rawurldecode"
            | "html_entity_decode"
            | "htmlspecialchars_decode"
            | "base64_decode"
    )
}

/// Environment marker set by `extract()` on tainted input.
const EXTRACT_ALL: &str = "@extract_all";

/// The interned environment key for [`EXTRACT_ALL`].
fn extract_all_key() -> Symbol {
    Symbol::intern(EXTRACT_ALL)
}

/// Source label for second-order (database-stored) data.
const STORED_DATA_SOURCE: &str = "stored data (second-order)";

/// The interned source symbol for [`STORED_DATA_SOURCE`].
fn stored_data_source() -> Symbol {
    Symbol::intern(STORED_DATA_SOURCE)
}

/// `call_user_func`-style indirection whose first argument names the
/// real callee (the value analysis resolves it like a variable call).
fn is_call_user_func(name: &str) -> bool {
    name.eq_ignore_ascii_case("call_user_func") || name.eq_ignore_ascii_case("call_user_func_array")
}

/// Database result-fetch functions/methods for the second-order pass.
fn is_fetch_function(name: &str) -> bool {
    matches!(
        name.to_ascii_lowercase().as_str(),
        "mysql_fetch_assoc"
            | "mysql_fetch_array"
            | "mysql_fetch_row"
            | "mysql_fetch_object"
            | "mysql_result"
            | "mysqli_fetch_assoc"
            | "mysqli_fetch_array"
            | "mysqli_fetch_row"
            | "mysqli_fetch_object"
            | "pg_fetch_assoc"
            | "pg_fetch_array"
            | "pg_fetch_row"
            | "fetch_assoc"
            | "fetch_array"
            | "fetch_row"
            | "fetch_object"
    )
}

/// Display name for an assignment target, e.g. `$q` or `$row['k']`.
fn lvalue_name(target: &Expr) -> String {
    match target.root_var() {
        Some(v) => format!("${v}"),
        None => "<expr>".to_string(),
    }
}

fn parse_param_marker(source: &str, fname: &str) -> Option<usize> {
    let rest = source.strip_prefix("@param:")?;
    let (name, idx) = rest.rsplit_once(':')?;
    if name == fname {
        idx.parse().ok()
    } else {
        None
    }
}

fn join_all(taints: &[TaintState]) -> TaintState {
    taints.iter().fold(TaintState::Clean, |acc, t| acc.join(t))
}

fn join_envs(mut envs: Vec<Env>) -> Env {
    let mut out = envs.pop().unwrap_or_default();
    for env in envs {
        for (k, v) in env {
            let joined = match out.get(&k) {
                Some(existing) => existing.join(&v),
                None => v,
            };
            out.insert(k, joined);
        }
    }
    out
}

/// String literal fragments syntactically present in an expression
/// (interpolation parts, concatenation operands, direct literals).
pub fn collect_literals(expr: &Expr) -> Vec<String> {
    let mut out = Vec::new();
    collect_literals_into(expr, &mut out);
    out
}

/// Collects the names of plain variables referenced anywhere in `expr`.
fn collect_vars_into(expr: &Expr, out: &mut Vec<Symbol>) {
    use wap_php::visitor::{walk_expr, Visitor};
    struct V<'v>(&'v mut Vec<Symbol>);
    impl Visitor for V<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Var(n) = &e.kind {
                if !self.0.contains(n) {
                    self.0.push(*n);
                }
            }
            walk_expr(self, e);
        }
    }
    V(out).visit_expr(expr);
}

fn collect_literals_into(expr: &Expr, out: &mut Vec<String>) {
    match &expr.kind {
        ExprKind::Lit(Lit::Str(s)) => out.push(s.clone()),
        ExprKind::Interp(parts) => {
            for p in parts {
                collect_literals_into(p, out);
            }
        }
        ExprKind::Binary {
            op: BinOp::Concat,
            lhs,
            rhs,
        } => {
            collect_literals_into(lhs, out);
            collect_literals_into(rhs, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_literals_into(a, out);
            }
        }
        _ => {}
    }
}

const MAX_LITERALS: usize = 16;

fn attach_literals(t: TaintState, literals: Vec<String>) -> TaintState {
    match t {
        TaintState::Clean => TaintState::Clean,
        TaintState::Tainted(mut info) => {
            let m = std::sync::Arc::make_mut(&mut info);
            for l in literals {
                if m.literals.len() >= MAX_LITERALS {
                    break;
                }
                m.literals.push(l);
            }
            TaintState::Tainted(info)
        }
    }
}

fn merge_literals(t: TaintState, a: &TaintState, b: &TaintState) -> TaintState {
    match t {
        TaintState::Clean => TaintState::Clean,
        TaintState::Tainted(mut info) => {
            let m = std::sync::Arc::make_mut(&mut info);
            for side in [a, b] {
                if let Some(i) = side.info() {
                    for l in &i.literals {
                        if m.literals.len() < MAX_LITERALS && !m.literals.contains(l) {
                            m.literals.push(l.clone());
                        }
                    }
                }
            }
            TaintState::Tainted(info)
        }
    }
}

fn absorb_literal(t: TaintState, e: &Expr) -> TaintState {
    if let ExprKind::Lit(Lit::Str(s)) = &e.kind {
        attach_literals(t, vec![s.clone()])
    } else {
        t
    }
}

/// PHP builtins whose return value cannot carry an injection payload
/// (numbers, booleans, hashes). Validation functions deliberately appear
/// here as *symptoms*, not sanitizers — calling `preg_match($re, $x)`
/// returns a clean int, but `$x` itself stays tainted.
fn returns_clean(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    if lower.starts_with("is_") || lower.starts_with("ctype_") {
        return true;
    }
    matches!(
        lower.as_str(),
        "count"
            | "sizeof"
            | "strlen"
            | "abs"
            | "floor"
            | "ceil"
            | "round"
            | "time"
            | "mktime"
            | "strtotime"
            | "checkdate"
            | "rand"
            | "mt_rand"
            | "random_int"
            | "intval"
            | "floatval"
            | "doubleval"
            | "boolval"
            | "md5"
            | "sha1"
            | "crc32"
            | "hash"
            | "bin2hex"
            | "dechex"
            | "hexdec"
            | "ord"
            | "preg_match"
            | "preg_match_all"
            | "strcmp"
            | "strncmp"
            | "strcasecmp"
            | "strncasecmp"
            | "strnatcmp"
            | "strpos"
            | "stripos"
            | "strrpos"
            | "in_array"
            | "array_key_exists"
            | "uniqid"
            | "number_format"
            | "filter_var"
            | "mysql_num_rows"
            | "mysqli_num_rows"
            | "mysql_affected_rows"
            | "mysql_insert_id"
            | "error_log"
            | "error_reporting"
            | "header_sent"
            | "headers_sent"
            | "session_start"
            | "ob_start"
            | "define"
            | "defined"
            | "function_exists"
            | "class_exists"
            | "file_exists"
            | "is_dir"
            | "is_file"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_catalog::WeaponConfig;
    use wap_php::parse;

    fn run(src: &str) -> Vec<Candidate> {
        run_with(&Catalog::wape(), src)
    }

    fn run_with(catalog: &Catalog, src: &str) -> Vec<Candidate> {
        let program = parse(src).unwrap_or_else(|e| panic!("parse: {e}"));
        analyze_program(catalog, &program)
    }

    fn classes(found: &[Candidate]) -> Vec<VulnClass> {
        found.iter().map(|c| c.class.clone()).collect()
    }

    // ---- SQLI ----

    #[test]
    fn sqli_direct_interpolation() {
        let found = run(r#"<?php mysql_query("SELECT * FROM u WHERE id = $_GET[id]");"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
        assert_eq!(found[0].sources, vec!["$_GET['id']".to_string()]);
    }

    #[test]
    fn sqli_through_variable_and_concat() {
        let found = run(r#"<?php
            $id = $_POST['id'];
            $q = "SELECT * FROM users WHERE id = '" . $id . "'";
            mysql_query($q);"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
        assert!(found[0].carriers.contains(&"q".to_string()));
        assert!(found[0].carriers.contains(&"id".to_string()));
        assert!(found[0].literal_text().contains("SELECT"));
    }

    #[test]
    fn sqli_through_dot_assign_chain() {
        let found = run(r#"<?php
            $q = "SELECT name ";
            $q .= "FROM users ";
            $q .= "WHERE id = " . $_GET['id'];
            mysqli_query($conn, $q);"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
        assert!(found[0].literal_text().contains("FROM users"));
    }

    #[test]
    fn sqli_sanitized_is_silent() {
        let found = run(r#"<?php
            $id = mysql_real_escape_string($_GET['id']);
            mysql_query("SELECT * FROM u WHERE id = '$id'");"#);
        assert!(
            found.is_empty(),
            "sanitized flow must not be reported: {found:?}"
        );
    }

    #[test]
    fn sqli_sanitizer_is_class_specific() {
        // htmlentities does not stop SQLI
        let found = run(r#"<?php
            $id = htmlentities($_GET['id']);
            mysql_query("SELECT * FROM u WHERE id = '$id'");"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    #[test]
    fn sqli_int_cast_sanitizes() {
        let found = run(r#"<?php
            $id = (int)$_GET['id'];
            mysql_query("SELECT * FROM u WHERE id = $id");"#);
        assert!(found.is_empty());
    }

    #[test]
    fn sqli_intval_sanitizes_return_value() {
        let found = run(r#"<?php
            $id = intval($_GET['id']);
            mysql_query("SELECT * FROM u WHERE id = $id");"#);
        assert!(found.is_empty());
    }

    #[test]
    fn sqli_validation_does_not_untaint() {
        // the canonical false-positive shape: guarded but unsanitized
        let found = run(r#"<?php
            $id = $_GET['id'];
            if (is_numeric($id)) {
                mysql_query("SELECT * FROM u WHERE id = $id");
            }"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    #[test]
    fn sqli_method_sink() {
        let found = run(r#"<?php $db->query("DELETE FROM t WHERE k = $_GET[k]");"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
        assert!(found[0].sink.contains("query"));
    }

    #[test]
    fn sqli_heredoc_flow() {
        let found = run("<?php\n$w = $_GET['w'];\n$q = <<<SQL\nSELECT * FROM t WHERE c = '$w'\nSQL;\nmysql_query($q);\n");
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    // ---- XSS ----

    #[test]
    fn xss_reflected_echo() {
        let found = run(r#"<?php echo "Hello " . $_GET['name'];"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
        assert_eq!(found[0].sink, "echo");
    }

    #[test]
    fn xss_short_echo_tag() {
        let found = run("<p><?= $_GET['q'] ?></p>");
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    #[test]
    fn xss_print_and_printf() {
        let found = run(r#"<?php print $_GET['a']; printf("%s", $_COOKIE['b']);"#);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|c| c.class == VulnClass::XssReflected));
    }

    #[test]
    fn xss_sanitized_with_htmlspecialchars() {
        let found = run(r#"<?php echo htmlspecialchars($_GET['name']);"#);
        assert!(found.is_empty());
    }

    #[test]
    fn xss_stored_via_fwrite() {
        let found = run(r#"<?php
            $fh = fopen('comments.txt', 'a');
            fwrite($fh, $_POST['comment']);"#);
        assert!(classes(&found).contains(&VulnClass::XssStored));
    }

    #[test]
    fn xss_ternary_isset_pattern() {
        let found = run(r#"<?php $n = isset($_GET['n']) ? $_GET['n'] : 'anon'; echo $n;"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    // ---- file classes ----

    #[test]
    fn rfi_fully_controlled_include() {
        let found = run(r#"<?php include $_GET['page'];"#);
        assert_eq!(classes(&found), vec![VulnClass::Rfi]);
    }

    #[test]
    fn lfi_prefixed_include() {
        let found = run(r#"<?php include 'pages/' . $_GET['page'] . '.php';"#);
        assert_eq!(classes(&found), vec![VulnClass::Lfi]);
    }

    #[test]
    fn lfi_basename_sanitizes() {
        let found = run(r#"<?php include 'pages/' . basename($_GET['page']);"#);
        assert!(found.is_empty());
    }

    #[test]
    fn dt_via_file_functions() {
        let found = run(r#"<?php $f = fopen($_GET['f'], 'r'); unlink($_POST['victim']);"#);
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|c| c.class == VulnClass::DirTraversal));
    }

    #[test]
    fn dt_mode_argument_is_not_sensitive() {
        let found = run(r#"<?php fopen('data.txt', $_GET['mode']);"#);
        assert!(found.is_empty(), "only the path argument is sensitive");
    }

    #[test]
    fn scd_readfile() {
        let found = run(r#"<?php readfile($_GET['doc']);"#);
        assert_eq!(classes(&found), vec![VulnClass::Scd]);
    }

    // ---- command/code injection ----

    #[test]
    fn osci_system_and_sanitizer() {
        let v = run(r#"<?php system("ping " . $_GET['host']);"#);
        assert_eq!(classes(&v), vec![VulnClass::Osci]);
        let ok = run(r#"<?php system("ping " . escapeshellarg($_GET['host']));"#);
        assert!(ok.is_empty());
    }

    #[test]
    fn phpci_eval() {
        let found = run(r#"<?php eval('$x = ' . $_POST['expr'] . ';');"#);
        assert_eq!(classes(&found), vec![VulnClass::Phpci]);
    }

    // ---- the seven new classes ----

    #[test]
    fn ldapi_search() {
        let found = run(r#"<?php
            $filter = "(uid=" . $_GET['user'] . ")";
            ldap_search($conn, $base, $filter);"#);
        assert_eq!(classes(&found), vec![VulnClass::LdapI]);
    }

    #[test]
    fn xpathi_eval() {
        let found = run(r#"<?php xpath_eval($ctx, "//user[name='" . $_POST['u'] . "']");"#);
        assert_eq!(classes(&found), vec![VulnClass::XpathI]);
    }

    #[test]
    fn session_fixation_session_id() {
        let found = run(r#"<?php session_id($_GET['sid']); session_start();"#);
        assert_eq!(classes(&found), vec![VulnClass::SessionFixation]);
    }

    #[test]
    fn session_fixation_setcookie() {
        let found = run(r#"<?php setcookie('PHPSESSID', $_REQUEST['token']);"#);
        assert_eq!(classes(&found), vec![VulnClass::SessionFixation]);
    }

    #[test]
    fn comment_spam_file_put_contents() {
        let found = run(r#"<?php file_put_contents('comments.html', $_POST['comment']);"#);
        assert!(classes(&found).contains(&VulnClass::CommentSpam));
    }

    #[test]
    fn hi_and_ei_require_weapon() {
        let src = r#"<?php header("Location: " . $_GET['to']); mail($_POST['to'], 'Hi', 'msg');"#;
        // without the weapon: nothing
        assert!(run(src).is_empty());
        // with the -hei weapon: HI + EI
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::hei());
        let found = run_with(&c, src);
        let cls = classes(&found);
        assert!(cls.contains(&VulnClass::HeaderI));
        assert!(cls.contains(&VulnClass::EmailI));
    }

    #[test]
    fn nosqli_weapon_mongodb() {
        let src = r#"<?php
            $m = new MongoClient();
            $col = $m->selectCollection('db', 'users');
            $col->find(array('name' => $_GET['name']));"#;
        assert!(run(src).is_empty());
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::nosqli());
        let found = run_with(&c, src);
        assert_eq!(classes(&found), vec![VulnClass::NoSqlI]);
    }

    #[test]
    fn nosqli_weapon_sanitizer() {
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::nosqli());
        let found = run_with(
            &c,
            r#"<?php $col->find(array('n' => mysql_real_escape_string($_GET['n'])));"#,
        );
        assert!(found.is_empty());
    }

    #[test]
    fn wpsqli_weapon_wpdb() {
        let src = r#"<?php
            global $wpdb;
            $title = $_POST['title'];
            $wpdb->query("SELECT * FROM {$wpdb->prefix}posts WHERE title = '$title'");"#;
        assert!(run(src).is_empty(), "plain WAPe does not know $wpdb");
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::wpsqli());
        let found = run_with(&c, src);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].class, VulnClass::Custom("WPSQLI".into()));
        assert!(found[0].sink.contains("wpdb"));
    }

    #[test]
    fn wpsqli_prepare_sanitizes() {
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::wpsqli());
        let found = run_with(
            &c,
            r#"<?php
            $sql = $wpdb->prepare("SELECT * FROM t WHERE id = %d", $_GET['id']);
            $wpdb->query($sql);"#,
        );
        assert!(found.is_empty());
    }

    #[test]
    fn weapon_entry_point_function() {
        let mut c = Catalog::wape();
        c.add_weapon(WeaponConfig::wpsqli());
        let found = run_with(
            &c,
            r#"<?php $p = get_query_var('page'); $wpdb->get_results("SELECT * FROM t LIMIT $p");"#,
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].sources, vec!["get_query_var()".to_string()]);
    }

    // ---- interprocedural ----

    #[test]
    fn interproc_taint_through_function_return() {
        let found = run(r#"<?php
            function get_input($key) { return trim($_GET[$key]); }
            $id = get_input('id');
            mysql_query("SELECT * FROM t WHERE id = $id");"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    #[test]
    fn interproc_param_to_sink_inside_function() {
        let found = run(r#"<?php
            function find_user($db, $name) {
                return mysql_query("SELECT * FROM users WHERE name = '$name'", $db);
            }
            find_user($conn, $_POST['name']);"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
        assert_eq!(found[0].sources, vec!["$_POST['name']".to_string()]);
    }

    #[test]
    fn interproc_sanitizing_wrapper() {
        let found = run(r#"<?php
            function clean($v) { return mysql_real_escape_string($v); }
            $id = clean($_GET['id']);
            mysql_query("SELECT * FROM t WHERE id = '$id'");"#);
        assert!(
            found.is_empty(),
            "sanitization inside a wrapper must be tracked"
        );
    }

    #[test]
    fn interproc_entry_point_inside_function() {
        let found = run(r#"<?php
            function handler() {
                echo $_GET['msg'];
            }
            handler();"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    #[test]
    fn interproc_entry_point_in_uncalled_function_still_flagged() {
        let found = run(r#"<?php
            function dead_code() { mysql_query("X" . $_GET['a']); }"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    #[test]
    fn interproc_disabled_by_option() {
        let program = parse(
            r#"<?php
            function get_input($k) { return $_GET[$k]; }
            mysql_query("SELECT " . get_input('c'));"#,
        )
        .unwrap();
        let files = vec![SourceFile {
            name: "f.php".into(),
            program,
        }];
        let opts = AnalysisOptions {
            interprocedural: false,
            ..AnalysisOptions::default()
        };
        let found = analyze(&Catalog::wape(), &opts, &files);
        // the flow through get_input's return is invisible; but the direct
        // flow inside the (summarized) function body is also skipped
        assert!(found
            .iter()
            .all(|c| !c.path.iter().any(|s| s.what.as_str().contains("through get_input"))));
    }

    #[test]
    fn interproc_method_summary() {
        let found = run(r#"<?php
            class Repo {
                function find($id) {
                    return mysql_query("SELECT * FROM t WHERE id = $id");
                }
            }
            $r = new Repo();
            $r->find($_GET['id']);"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    #[test]
    fn recursion_terminates() {
        let found = run(r#"<?php
            function f($x) { if ($x) { return f($x . 'a'); } return $x; }
            mysql_query("Q" . f($_GET['v']));"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    // ---- control flow ----

    #[test]
    fn taint_joins_across_branches() {
        let found = run(r#"<?php
            if ($_GET['mode'] == 'a') { $v = $_GET['a']; } else { $v = 'default'; }
            echo $v;"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    #[test]
    fn loop_carried_taint() {
        let found = run(r#"<?php
            $q = "SELECT * FROM t WHERE 1=1";
            foreach ($_POST['filters'] as $f) {
                $q = $q . " AND c = '$f'";
            }
            mysql_query($q);"#);
        assert_eq!(classes(&found), vec![VulnClass::Sqli]);
    }

    #[test]
    fn foreach_taints_key_and_value() {
        let found = run(r#"<?php foreach ($_GET as $k => $v) { echo $k; echo $v; }"#);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn switch_branches_join() {
        let found = run(r#"<?php
            switch ($_GET['t']) {
                case 'x': $out = $_GET['x']; break;
                default: $out = 'none';
            }
            echo $out;"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    #[test]
    fn unset_clears_taint() {
        let found = run(r#"<?php $x = $_GET['a']; unset($x); echo $x;"#);
        assert!(found.is_empty());
    }

    #[test]
    fn overwrite_with_literal_clears_taint() {
        let found = run(r#"<?php $x = $_GET['a']; $x = 'safe'; echo $x;"#);
        assert!(found.is_empty());
    }

    #[test]
    fn closure_body_is_analyzed() {
        let found = run(r#"<?php
            $handler = function () {
                echo $_GET['q'];
            };"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    #[test]
    fn closure_captured_taint() {
        let found = run(r#"<?php
            $q = $_GET['q'];
            $f = function () use ($q) { echo $q; };"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    // ---- misc semantics ----

    #[test]
    fn arithmetic_kills_taint() {
        let found = run(r#"<?php $n = $_GET['n'] + 1; echo $n;"#);
        assert!(found.is_empty());
    }

    #[test]
    fn comparison_kills_taint() {
        let found = run(r#"<?php $ok = ($_GET['a'] == 'x'); echo $ok;"#);
        assert!(found.is_empty());
    }

    #[test]
    fn md5_kills_taint() {
        let found = run(r#"<?php echo md5($_GET['p']);"#);
        assert!(found.is_empty());
    }

    #[test]
    fn array_element_insensitivity() {
        // storing tainted data in an array taints the array
        let found = run(r#"<?php
            $data = array();
            $data['name'] = $_POST['name'];
            echo $data['other'];"#);
        assert_eq!(
            found.len(),
            1,
            "element-insensitive arrays over-approximate"
        );
    }

    #[test]
    fn property_taint_tracking() {
        let found = run(r#"<?php
            $o->name = $_GET['n'];
            echo $o->name;"#);
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }

    #[test]
    fn user_sanitizer_escape_study() {
        // §V-A: vfront's `escape` function, unknown → flagged
        let src = r#"<?php
            function escape($v) { return str_replace("'", "''", $v); }
            $n = escape($_GET['n']);
            mysql_query("SELECT * FROM t WHERE n = '$n'");"#;
        assert_eq!(run(src).len(), 1);
        // fed to the tool as an external sanitizer → silent
        let mut c = Catalog::wape();
        c.add_user_sanitizer("escape", &[VulnClass::Sqli]);
        assert!(run_with(&c, src).is_empty());
    }

    #[test]
    fn multi_file_analysis_shares_functions() {
        let lib =
            parse(r#"<?php function fetch($db, $sql) { return mysql_query($sql, $db); }"#).unwrap();
        let app = parse(r#"<?php fetch($c, "SELECT " . $_GET['f'] . " FROM t");"#).unwrap();
        let files = vec![
            SourceFile {
                name: "lib.php".into(),
                program: lib,
            },
            SourceFile {
                name: "app.php".into(),
                program: app,
            },
        ];
        let found = analyze(&Catalog::wape(), &AnalysisOptions::default(), &files);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].class, VulnClass::Sqli);
        assert_eq!(found[0].file.as_deref(), Some("app.php"));
    }

    #[test]
    fn findings_are_ordered_and_deduplicated() {
        let found = run(r#"<?php
            $a = $_GET['a'];
            for ($i = 0; $i < 3; $i++) {
                mysql_query("Q $a");
            }
            echo $a;"#);
        // one SQLI (deduped across loop passes) + one XSS
        assert_eq!(found.len(), 2);
        let mut lines: Vec<u32> = found.iter().map(|c| c.line).collect();
        let sorted = {
            let mut s = lines.clone();
            s.sort();
            s
        };
        assert_eq!(lines, sorted);
        lines.dedup();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn candidate_path_tells_the_story() {
        let found = run(r#"<?php
            $id = $_GET['id'];
            $q = "SELECT * FROM t WHERE id = $id";
            mysql_query($q);"#);
        let path = &found[0].path;
        assert!(path.first().unwrap().what.as_str().contains("entry point"));
        assert!(path.last().unwrap().what.as_str().contains("sensitive sink"));
        assert!(path.iter().any(|s| s.what.as_str().contains("interpolation")));
    }

    #[test]
    fn retained_classes_limit_detection() {
        let mut c = Catalog::wape();
        c.retain_classes(&[VulnClass::XssReflected]);
        let found = run_with(
            &c,
            r#"<?php mysql_query("Q" . $_GET['a']); echo $_GET['b'];"#,
        );
        assert_eq!(classes(&found), vec![VulnClass::XssReflected]);
    }
}

#[cfg(test)]
mod shell_exec_tests {
    use super::*;
    use wap_php::parse;

    #[test]
    fn backtick_is_an_osci_sink() {
        let program = parse(r#"<?php $host = $_GET['h']; $out = `ping -c 1 $host`;"#).unwrap();
        let found = analyze_program(&Catalog::wape(), &program);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].class, VulnClass::Osci);
        assert!(found[0].sink.contains("backtick"));
    }

    #[test]
    fn sanitized_backtick_is_silent() {
        let program = parse(r#"<?php $h = escapeshellarg($_GET['h']); $out = `ping $h`;"#).unwrap();
        assert!(analyze_program(&Catalog::wape(), &program).is_empty());
    }

    #[test]
    fn backtick_output_is_clean() {
        let program = parse(r#"<?php $out = `ls $_GET[d]`; echo $out;"#).unwrap();
        let found = analyze_program(&Catalog::wape(), &program);
        // one OSCI for the backtick; no XSS for echoing its output
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].class, VulnClass::Osci);
    }
}

#[cfg(test)]
mod second_order_tests {
    use super::*;
    use wap_php::parse;

    fn run_with_opts(src: &str, second_order: bool) -> Vec<Candidate> {
        let program = parse(src).unwrap();
        let files = vec![SourceFile {
            name: "t.php".into(),
            program,
        }];
        let opts = AnalysisOptions {
            second_order,
            ..AnalysisOptions::default()
        };
        analyze(&Catalog::wape(), &opts, &files)
    }

    const STORED_XSS: &str = r#"<?php
$comment = $_POST['comment'];
mysql_query("INSERT INTO comments (body) VALUES ('$comment')");
$res = mysql_query("SELECT body FROM comments");
while ($row = mysql_fetch_assoc($res)) {
    echo "<p>" . $row['body'] . "</p>";
}
"#;

    #[test]
    fn stored_xss_found_only_with_second_order() {
        let first = run_with_opts(STORED_XSS, false);
        assert!(
            first.iter().all(|c| c.class != VulnClass::XssStored),
            "{first:?}"
        );
        let second = run_with_opts(STORED_XSS, true);
        assert!(
            second.iter().any(|c| c.class == VulnClass::XssStored),
            "{second:?}"
        );
        // the direct SQLI at the INSERT is found either way
        assert!(second.iter().any(|c| c.class == VulnClass::Sqli));
    }

    #[test]
    fn no_second_pass_without_a_tainted_store() {
        let src = r#"<?php
$res = mysql_query("SELECT body FROM comments");
while ($row = mysql_fetch_assoc($res)) {
    echo "<p>" . $row['body'] . "</p>";
}
"#;
        let found = run_with_opts(src, true);
        assert!(
            found.is_empty(),
            "clean database data is not tainted: {found:?}"
        );
    }

    #[test]
    fn sanitized_store_stops_the_second_pass() {
        let src = r#"<?php
$c = htmlentities($_POST['comment']);
$c = mysql_real_escape_string($c);
mysql_query("INSERT INTO comments (body) VALUES ('$c')");
echo mysql_fetch_assoc(mysql_query("SELECT body FROM comments"));
"#;
        let found = run_with_opts(src, true);
        assert!(found.is_empty(), "{found:?}");
    }

    #[test]
    fn extract_taints_unknown_variables() {
        let src = r#"<?php
extract($_POST);
mysql_query("SELECT * FROM users WHERE login = '$login'");
"#;
        let program = parse(src).unwrap();
        let found = analyze_program(&Catalog::wape(), &program);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].class, VulnClass::Sqli);
    }

    #[test]
    fn extract_of_clean_data_is_harmless() {
        let src = r#"<?php
extract($config);
mysql_query("SELECT * FROM t WHERE k = '$key'");
"#;
        let program = parse(src).unwrap();
        assert!(analyze_program(&Catalog::wape(), &program).is_empty());
    }

    #[test]
    fn known_variables_shadow_extract() {
        let src = r#"<?php
$login = 'admin';
extract($_POST);
mysql_query("SELECT 1 WHERE u = '$login'");
"#;
        let program = parse(src).unwrap();
        // $login was assigned a literal BEFORE extract; after extract PHP
        // overwrites it, but our model keeps explicit assignments — the
        // conservative direction here is debatable; we keep the explicit
        // binding and expect no finding
        assert!(analyze_program(&Catalog::wape(), &program).is_empty());
    }
}

#[cfg(test)]
mod desanitizer_tests {
    use super::*;
    use wap_php::parse;

    fn run(src: &str) -> Vec<Candidate> {
        analyze_program(&Catalog::wape(), &parse(src).unwrap())
    }

    #[test]
    fn stripslashes_revokes_addslashes() {
        let found = run(r#"<?php
$x = addslashes($_GET['x']);
$x = stripslashes($x);
mysql_query("SELECT * FROM t WHERE c = '$x'");"#);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0]
            .path
            .iter()
            .any(|s| s.what.as_str().contains("de-sanitized")));
    }

    #[test]
    fn html_entity_decode_revokes_htmlentities() {
        let found = run(r#"<?php
$m = htmlentities($_GET['m']);
echo html_entity_decode($m);"#);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].class, VulnClass::XssReflected);
    }

    #[test]
    fn decoder_on_clean_data_stays_clean() {
        let found = run(r#"<?php echo urldecode('a%20b');"#);
        assert!(found.is_empty());
    }

    #[test]
    fn properly_sanitized_after_decode_is_silent() {
        let found = run(r#"<?php
$x = stripslashes($_POST['x']);
$x = mysql_real_escape_string($x);
mysql_query("SELECT * FROM t WHERE c = '$x'");"#);
        assert!(found.is_empty());
    }

    #[test]
    fn sprintf_propagates_taint_and_query_text() {
        let found = run(r#"<?php
$q = sprintf("SELECT * FROM users WHERE login = '%s'", $_POST['login']);
mysql_query($q);"#);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].class, VulnClass::Sqli);
        assert!(found[0].literal_text().contains("SELECT * FROM users"));
    }
}
