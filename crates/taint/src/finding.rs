//! Candidate vulnerabilities: the taint analyzer's output.

use crate::state::TaintStep;
use wap_catalog::VulnClass;
use wap_php::Span;

/// A candidate vulnerability: a data flow from an entry point to a
/// sensitive sink that no recognized sanitizer interrupted.
///
/// Candidates are *candidates* — the false positive predictor decides
/// whether each one is a real vulnerability (§II). Everything the predictor
/// and the code corrector need is carried here: the sink location for fix
/// insertion, the flow path for symptom collection, and the literal query
/// fragments for the SQL-manipulation attributes of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The vulnerability class.
    pub class: VulnClass,
    /// Name of the sink (`mysql_query`, `echo`, `include`, `header`, ...).
    pub sink: String,
    /// Source span of the sink call/statement.
    pub sink_span: Span,
    /// 1-based line of the sink.
    pub line: u32,
    /// Entry points feeding the flow, e.g. `$_GET['id']`.
    pub sources: Vec<String>,
    /// The data-flow path from entry point to sink.
    pub path: Vec<TaintStep>,
    /// Variables that carried the tainted data (symptom collection keys).
    pub carriers: Vec<String>,
    /// Zero-based index of the tainted sink argument, when the sink is a
    /// call (`None` for `echo`/`include` constructs).
    pub tainted_arg: Option<usize>,
    /// Span of the expression the code corrector should wrap with a fix:
    /// the tainted argument, the echoed expression, or the include path.
    pub fix_site: Span,
    /// Literal string fragments appearing in the sink argument (used to
    /// derive the SQL query manipulation attributes).
    pub literal_fragments: Vec<String>,
    /// File the candidate was found in (set by the pipeline).
    pub file: Option<String>,
}

impl Candidate {
    /// A compact one-line description, e.g.
    /// `SQLI at line 12: $_GET['id'] -> mysql_query()`.
    pub fn headline(&self) -> String {
        let src = self.sources.first().map(String::as_str).unwrap_or("?");
        format!(
            "{} at line {}: {} -> {}()",
            self.class, self.line, src, self.sink
        )
    }

    /// The joined literal fragments (an approximation of the query text for
    /// query-injection candidates).
    pub fn literal_text(&self) -> String {
        self.literal_fragments.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_format() {
        let c = Candidate {
            class: VulnClass::Sqli,
            sink: "mysql_query".into(),
            sink_span: Span::new(0, 1, 12),
            line: 12,
            sources: vec!["$_GET['id']".into()],
            path: vec![],
            carriers: vec![],
            tainted_arg: Some(0),
            fix_site: Span::new(0, 1, 12),
            literal_fragments: vec!["SELECT * FROM users WHERE id = ".into()],
            file: None,
        };
        assert_eq!(
            c.headline(),
            "SQLI at line 12: $_GET['id'] -> mysql_query()"
        );
        assert!(c.literal_text().contains("SELECT"));
    }

    #[test]
    fn headline_without_source() {
        let c = Candidate {
            class: VulnClass::HeaderI,
            sink: "header".into(),
            sink_span: Span::synthetic(),
            line: 1,
            sources: vec![],
            path: vec![],
            carriers: vec![],
            tainted_arg: None,
            fix_site: Span::synthetic(),
            literal_fragments: vec![],
            file: None,
        };
        assert!(c.headline().contains('?'));
    }
}
