//! The taint lattice.
//!
//! WAP's taint analysis uses "two states — tainted and untainted — that may
//! change during the data flow analysis" (§VI). We refine the tainted state
//! with *per-class sanitization*: `mysql_real_escape_string($x)` neutralizes
//! the SQLI payload but the value can still attack an XSS sink, so taint
//! carries the set of classes that have already been sanitized away.

use std::collections::BTreeSet;
use std::sync::Arc;
use wap_catalog::VulnClass;
use wap_php::Span;
use wap_php::Symbol;

/// One provenance step in a tainted data flow, used to build the candidate
/// vulnerability's path tree ("trees describing candidate vulnerable
/// data-flow paths", §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaintStep {
    /// Human-readable description, e.g. `$id <- $_GET['id']` (interned:
    /// step descriptions repeat heavily across passes and files).
    pub what: Symbol,
    /// 1-based source line.
    pub line: u32,
    /// Source span of the step.
    pub span: Span,
}

impl TaintStep {
    /// Creates a step.
    pub fn new(what: impl AsRef<str>, span: Span) -> Self {
        TaintStep {
            what: Symbol::intern(what.as_ref()),
            line: span.line(),
            span,
        }
    }
}

/// Maximum provenance steps kept per taint value; flows longer than this
/// keep the earliest steps (the entry point end of the path).
const MAX_STEPS: usize = 24;

/// Information attached to a tainted value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaintInfo {
    /// The entry point descriptions this value derives from,
    /// e.g. `$_GET['id']`.
    pub sources: BTreeSet<Symbol>,
    /// Classes whose payloads have been neutralized by sanitizers.
    pub sanitized: BTreeSet<VulnClass>,
    /// Provenance trail from entry point toward the current use.
    pub steps: Vec<TaintStep>,
    /// Variables that carried this taint (for symptom collection).
    pub carriers: BTreeSet<Symbol>,
    /// Literal string fragments concatenated/interpolated around the
    /// tainted data — an approximation of the query text, feeding the SQL
    /// manipulation attributes of Table I.
    pub literals: Vec<String>,
}

/// The lattice value for one expression or variable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TaintState {
    /// Trustworthy data.
    #[default]
    Clean,
    /// Untrusted data with provenance. Behind an [`Arc`]: taint values
    /// are cloned at every branch join, environment snapshot, and summary
    /// application, and the shared-read case vastly outnumbers mutation —
    /// a clone is a refcount bump, mutation copies on write.
    Tainted(Arc<TaintInfo>),
}

impl TaintState {
    /// A fresh taint originating at `source` (an entry point).
    pub fn source(source: impl AsRef<str>, span: Span) -> Self {
        let source = Symbol::intern(source.as_ref());
        let mut sources = BTreeSet::new();
        sources.insert(source);
        TaintState::Tainted(Arc::new(TaintInfo {
            sources,
            sanitized: BTreeSet::new(),
            steps: vec![TaintStep::new(format!("entry point {source}"), span)],
            carriers: BTreeSet::new(),
            literals: Vec::new(),
        }))
    }

    /// Whether this value is tainted at all (ignoring sanitization).
    pub fn is_tainted(&self) -> bool {
        matches!(self, TaintState::Tainted(_))
    }

    /// Whether the value is dangerous for `class`: tainted and not
    /// sanitized for that class.
    pub fn is_tainted_for(&self, class: &VulnClass) -> bool {
        match self {
            TaintState::Clean => false,
            TaintState::Tainted(info) => !info.sanitized.contains(class),
        }
    }

    /// The taint info, if tainted.
    pub fn info(&self) -> Option<&TaintInfo> {
        match self {
            TaintState::Clean => None,
            TaintState::Tainted(i) => Some(i.as_ref()),
        }
    }

    /// Least upper bound: combining two values (e.g. string concatenation
    /// or control-flow join). The result is tainted if either side is; a
    /// class counts as sanitized only if *every* tainted contributor
    /// sanitized it.
    pub fn join(&self, other: &TaintState) -> TaintState {
        match (self, other) {
            (TaintState::Clean, TaintState::Clean) => TaintState::Clean,
            (TaintState::Clean, t @ TaintState::Tainted(_)) => t.clone(),
            (t @ TaintState::Tainted(_), TaintState::Clean) => t.clone(),
            (TaintState::Tainted(a), TaintState::Tainted(b)) => {
                if Arc::ptr_eq(a, b) {
                    // join(x, x) == x for every field; skip the rebuild.
                    return self.clone();
                }
                let mut info = TaintInfo {
                    sources: a.sources.union(&b.sources).copied().collect(),
                    sanitized: a.sanitized.intersection(&b.sanitized).cloned().collect(),
                    steps: a.steps.clone(),
                    carriers: a.carriers.union(&b.carriers).copied().collect(),
                    literals: a.literals.clone(),
                };
                for s in &b.steps {
                    if !info.steps.contains(s) {
                        info.steps.push(*s);
                    }
                }
                info.steps.truncate(MAX_STEPS);
                for l in &b.literals {
                    if info.literals.len() < 16 && !info.literals.contains(l) {
                        info.literals.push(l.clone());
                    }
                }
                TaintState::Tainted(Arc::new(info))
            }
        }
    }

    /// Records that `sanitizer` was applied, neutralizing `classes`.
    pub fn sanitize(&self, classes: &[&VulnClass], sanitizer: &str, span: Span) -> TaintState {
        match self {
            TaintState::Clean => TaintState::Clean,
            TaintState::Tainted(info) => {
                let mut info = TaintInfo::clone(info);
                for c in classes {
                    info.sanitized.insert((*c).clone());
                }
                info.push_step(TaintStep::new(format!("sanitized by {sanitizer}()"), span));
                TaintState::Tainted(Arc::new(info))
            }
        }
    }

    /// Appends a provenance step (no-op on clean values).
    pub fn with_step(&self, what: impl AsRef<str>, span: Span) -> TaintState {
        match self {
            TaintState::Clean => TaintState::Clean,
            TaintState::Tainted(info) => {
                let mut info = TaintInfo::clone(info);
                info.push_step(TaintStep::new(what, span));
                TaintState::Tainted(Arc::new(info))
            }
        }
    }

    /// Registers a variable that carries this taint.
    pub fn with_carrier(&self, var: impl Into<Symbol>) -> TaintState {
        match self {
            TaintState::Clean => TaintState::Clean,
            TaintState::Tainted(info) => {
                let mut info = TaintInfo::clone(info);
                info.carriers.insert(var.into());
                TaintState::Tainted(Arc::new(info))
            }
        }
    }
}

impl TaintInfo {
    fn push_step(&mut self, step: TaintStep) {
        if self.steps.len() < MAX_STEPS && self.steps.last() != Some(&step) {
            self.steps.push(step);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> Span {
        Span::synthetic()
    }

    #[test]
    fn clean_is_never_dangerous() {
        let c = TaintState::Clean;
        assert!(!c.is_tainted());
        assert!(!c.is_tainted_for(&VulnClass::Sqli));
        assert!(c.info().is_none());
    }

    #[test]
    fn source_taints_everything() {
        let t = TaintState::source("$_GET['id']", sp());
        assert!(t.is_tainted());
        assert!(t.is_tainted_for(&VulnClass::Sqli));
        assert!(t.is_tainted_for(&VulnClass::XssReflected));
        assert_eq!(t.info().unwrap().sources.len(), 1);
    }

    #[test]
    fn sanitize_is_class_specific() {
        let t = TaintState::source("$_GET['id']", sp());
        let s = t.sanitize(&[&VulnClass::Sqli], "mysql_real_escape_string", sp());
        assert!(!s.is_tainted_for(&VulnClass::Sqli));
        assert!(s.is_tainted_for(&VulnClass::XssReflected));
        assert!(
            s.is_tainted(),
            "sanitized data is still untrusted for other classes"
        );
    }

    #[test]
    fn join_unions_sources_and_intersects_sanitization() {
        let a = TaintState::source("$_GET['a']", sp()).sanitize(&[&VulnClass::Sqli], "s", sp());
        let b = TaintState::source("$_POST['b']", sp());
        let j = a.join(&b);
        // b was never sanitized, so the joint value is dangerous for SQLI
        assert!(j.is_tainted_for(&VulnClass::Sqli));
        assert_eq!(j.info().unwrap().sources.len(), 2);

        let both_sanitized = a.join(&b.sanitize(&[&VulnClass::Sqli], "s", sp()));
        assert!(!both_sanitized.is_tainted_for(&VulnClass::Sqli));
    }

    #[test]
    fn join_with_clean_keeps_taint() {
        let a = TaintState::source("$_GET['a']", sp());
        assert!(a.join(&TaintState::Clean).is_tainted());
        assert!(TaintState::Clean.join(&a).is_tainted());
        assert!(!TaintState::Clean.join(&TaintState::Clean).is_tainted());
    }

    #[test]
    fn join_is_commutative_for_danger() {
        let a = TaintState::source("$_GET['a']", sp()).sanitize(&[&VulnClass::Sqli], "s", sp());
        let b = TaintState::source("$_POST['b']", sp());
        for class in [VulnClass::Sqli, VulnClass::XssReflected] {
            assert_eq!(
                a.join(&b).is_tainted_for(&class),
                b.join(&a).is_tainted_for(&class)
            );
        }
    }

    #[test]
    fn steps_are_bounded() {
        let mut t = TaintState::source("$_GET['x']", sp());
        for i in 0..100 {
            t = t.with_step(format!("step {i}"), sp());
        }
        assert!(t.info().unwrap().steps.len() <= MAX_STEPS);
        // earliest step (the entry point) is preserved
        assert!(t.info().unwrap().steps[0].what.as_str().contains("entry point"));
    }

    #[test]
    fn carriers_accumulate() {
        let t = TaintState::source("$_GET['x']", sp())
            .with_carrier("id")
            .with_carrier("q");
        let c = &t.info().unwrap().carriers;
        assert!(c.contains(&"id".into()) && c.contains(&"q".into()));
    }
}
