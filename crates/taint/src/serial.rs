//! Binary serialization of taint-analysis artifacts for the incremental
//! cache.
//!
//! [`PassArtifacts`] — a file's summaries, candidates, and store flag from
//! one analysis pass — round-trips through `wap-cache`'s length-prefixed
//! codec. Candidates are also encodable on their own so `wap-core` can
//! embed them in cached findings. Decoding is total: corrupt bytes yield
//! a [`CodecError`], never a panic, and the cache discards the entry.
//!
//! The byte layout is unversioned by design: the store stamps every entry
//! with its format version and a checksum, so layout changes only require
//! bumping [`wap_cache::ENTRY_FORMAT_VERSION`].

use crate::engine::{FnSummary, ParamFlow, ParamSink, PassArtifacts};
use crate::finding::Candidate;
use crate::state::{TaintInfo, TaintState, TaintStep};
use std::collections::{BTreeSet, HashMap};
use wap_cache::{CodecError, Reader, Writer};
use wap_catalog::VulnClass;
use wap_php::{Span, Symbol};

type Result<T> = std::result::Result<T, CodecError>;

// ---- primitives ----

fn write_span(w: &mut Writer, s: Span) {
    w.u32(s.start());
    w.u32(s.end());
    w.u32(s.line());
}

fn read_span(r: &mut Reader<'_>) -> Result<Span> {
    let start = r.u32()?;
    let end = r.u32()?;
    let line = r.u32()?;
    Ok(Span::new(start, end, line))
}

fn write_class(w: &mut Writer, c: &VulnClass) {
    let tag: u8 = match c {
        VulnClass::Sqli => 0,
        VulnClass::XssReflected => 1,
        VulnClass::XssStored => 2,
        VulnClass::Rfi => 3,
        VulnClass::Lfi => 4,
        VulnClass::DirTraversal => 5,
        VulnClass::Osci => 6,
        VulnClass::Scd => 7,
        VulnClass::Phpci => 8,
        VulnClass::LdapI => 9,
        VulnClass::XpathI => 10,
        VulnClass::SessionFixation => 11,
        VulnClass::NoSqlI => 12,
        VulnClass::CommentSpam => 13,
        VulnClass::HeaderI => 14,
        VulnClass::EmailI => 15,
        VulnClass::Custom(_) => 16,
    };
    w.u8(tag);
    if let VulnClass::Custom(name) = c {
        w.str(name);
    }
}

fn read_class(r: &mut Reader<'_>) -> Result<VulnClass> {
    Ok(match r.u8()? {
        0 => VulnClass::Sqli,
        1 => VulnClass::XssReflected,
        2 => VulnClass::XssStored,
        3 => VulnClass::Rfi,
        4 => VulnClass::Lfi,
        5 => VulnClass::DirTraversal,
        6 => VulnClass::Osci,
        7 => VulnClass::Scd,
        8 => VulnClass::Phpci,
        9 => VulnClass::LdapI,
        10 => VulnClass::XpathI,
        11 => VulnClass::SessionFixation,
        12 => VulnClass::NoSqlI,
        13 => VulnClass::CommentSpam,
        14 => VulnClass::HeaderI,
        15 => VulnClass::EmailI,
        16 => VulnClass::Custom(r.str()?),
        t => return Err(CodecError(format!("unknown VulnClass tag {t}"))),
    })
}

fn write_class_set(w: &mut Writer, set: &BTreeSet<VulnClass>) {
    w.seq(set.len());
    for c in set {
        write_class(w, c);
    }
}

fn read_class_set(r: &mut Reader<'_>) -> Result<BTreeSet<VulnClass>> {
    let n = r.seq()?;
    let mut set = BTreeSet::new();
    for _ in 0..n {
        set.insert(read_class(r)?);
    }
    Ok(set)
}

/// Writes a symbol set as its strings. `BTreeSet<Symbol>` iterates in
/// string order (symbol `Ord` compares the resolved strings), so the byte
/// layout matches the `BTreeSet<String>` encoding it replaced.
fn write_sym_set(w: &mut Writer, set: &BTreeSet<Symbol>) {
    w.seq(set.len());
    for s in set {
        w.str(s.as_str());
    }
}

fn read_sym_set(r: &mut Reader<'_>) -> Result<BTreeSet<Symbol>> {
    let n = r.seq()?;
    let mut set = BTreeSet::new();
    for _ in 0..n {
        set.insert(Symbol::intern(&r.str()?));
    }
    Ok(set)
}

fn write_str_vec(w: &mut Writer, v: &[String]) {
    w.seq(v.len());
    for s in v {
        w.str(s);
    }
}

fn read_str_vec(r: &mut Reader<'_>) -> Result<Vec<String>> {
    let n = r.seq()?;
    let mut v = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        v.push(r.str()?);
    }
    Ok(v)
}

fn write_opt_usize(w: &mut Writer, v: Option<usize>) {
    match v {
        Some(n) => {
            w.bool(true);
            w.usize(n);
        }
        None => w.bool(false),
    }
}

fn read_opt_usize(r: &mut Reader<'_>) -> Result<Option<usize>> {
    if r.bool()? {
        Ok(Some(r.usize()?))
    } else {
        Ok(None)
    }
}

// ---- taint state ----

fn write_step(w: &mut Writer, s: &TaintStep) {
    w.str(s.what.as_str());
    w.u32(s.line);
    write_span(w, s.span);
}

fn read_step(r: &mut Reader<'_>) -> Result<TaintStep> {
    Ok(TaintStep {
        what: Symbol::intern(&r.str()?),
        line: r.u32()?,
        span: read_span(r)?,
    })
}

fn write_steps(w: &mut Writer, steps: &[TaintStep]) {
    w.seq(steps.len());
    for s in steps {
        write_step(w, s);
    }
}

fn read_steps(r: &mut Reader<'_>) -> Result<Vec<TaintStep>> {
    let n = r.seq()?;
    let mut v = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        v.push(read_step(r)?);
    }
    Ok(v)
}

fn write_taint_state(w: &mut Writer, t: &TaintState) {
    match t {
        TaintState::Clean => w.u8(0),
        TaintState::Tainted(info) => {
            w.u8(1);
            write_sym_set(w, &info.sources);
            write_class_set(w, &info.sanitized);
            write_steps(w, &info.steps);
            write_sym_set(w, &info.carriers);
            write_str_vec(w, &info.literals);
        }
    }
}

fn read_taint_state(r: &mut Reader<'_>) -> Result<TaintState> {
    Ok(match r.u8()? {
        0 => TaintState::Clean,
        1 => TaintState::Tainted(std::sync::Arc::new(TaintInfo {
            sources: read_sym_set(r)?,
            sanitized: read_class_set(r)?,
            steps: read_steps(r)?,
            carriers: read_sym_set(r)?,
            literals: read_str_vec(r)?,
        })),
        t => return Err(CodecError(format!("unknown TaintState tag {t}"))),
    })
}

// ---- summaries ----

fn write_summary(w: &mut Writer, s: &FnSummary) {
    w.seq(s.ret_from_params.len());
    for p in &s.ret_from_params {
        w.bool(p.flows);
        write_class_set(w, &p.sanitized);
    }
    write_taint_state(w, &s.ret_direct);
    w.seq(s.param_sinks.len());
    for ps in &s.param_sinks {
        w.usize(ps.param);
        write_class(w, &ps.class);
        w.str(&ps.sink);
        write_span(w, ps.span);
        write_span(w, ps.fix_site);
        write_opt_usize(w, ps.tainted_arg);
        write_str_vec(w, &ps.literals);
        write_class_set(w, &ps.sanitized);
        write_steps(w, &ps.inner_steps);
    }
}

fn read_summary(r: &mut Reader<'_>) -> Result<FnSummary> {
    let n = r.seq()?;
    let mut ret_from_params = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        ret_from_params.push(ParamFlow {
            flows: r.bool()?,
            sanitized: read_class_set(r)?,
        });
    }
    let ret_direct = read_taint_state(r)?;
    let n = r.seq()?;
    let mut param_sinks = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        param_sinks.push(ParamSink {
            param: r.usize()?,
            class: read_class(r)?,
            sink: r.str()?,
            span: read_span(r)?,
            fix_site: read_span(r)?,
            tainted_arg: read_opt_usize(r)?,
            literals: read_str_vec(r)?,
            sanitized: read_class_set(r)?,
            inner_steps: read_steps(r)?,
        });
    }
    Ok(FnSummary {
        ret_from_params,
        ret_direct,
        param_sinks,
    })
}

// ---- candidates ----

/// Encodes one candidate. Public so `wap-core` can embed candidates in
/// cached findings with the same layout the pass artifacts use.
pub fn write_candidate(w: &mut Writer, c: &Candidate) {
    write_class(w, &c.class);
    w.str(&c.sink);
    write_span(w, c.sink_span);
    w.u32(c.line);
    write_str_vec(w, &c.sources);
    write_steps(w, &c.path);
    write_str_vec(w, &c.carriers);
    write_opt_usize(w, c.tainted_arg);
    write_span(w, c.fix_site);
    write_str_vec(w, &c.literal_fragments);
    w.opt_str(c.file.as_deref());
}

/// Decodes one candidate written by [`write_candidate`].
///
/// # Errors
///
/// Returns [`CodecError`] on truncated or malformed input.
pub fn read_candidate(r: &mut Reader<'_>) -> Result<Candidate> {
    Ok(Candidate {
        class: read_class(r)?,
        sink: r.str()?,
        sink_span: read_span(r)?,
        line: r.u32()?,
        sources: read_str_vec(r)?,
        path: read_steps(r)?,
        carriers: read_str_vec(r)?,
        tainted_arg: read_opt_usize(r)?,
        fix_site: read_span(r)?,
        literal_fragments: read_str_vec(r)?,
        file: r.opt_str()?,
    })
}

fn write_candidates(w: &mut Writer, cs: &[Candidate]) {
    w.seq(cs.len());
    for c in cs {
        write_candidate(w, c);
    }
}

fn read_candidates(r: &mut Reader<'_>) -> Result<Vec<Candidate>> {
    let n = r.seq()?;
    let mut v = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        v.push(read_candidate(r)?);
    }
    Ok(v)
}

// ---- pass artifacts ----

impl PassArtifacts {
    /// Serializes the artifacts for the cache. Summaries are written in
    /// sorted name order so identical artifacts always produce identical
    /// bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        let mut names: Vec<Symbol> = self.summaries.keys().copied().collect();
        names.sort();
        w.seq(names.len());
        for name in names {
            w.str(name.as_str());
            write_summary(&mut w, &self.summaries[&name]);
        }
        write_candidates(&mut w, &self.a_candidates);
        write_candidates(&mut w, &self.b_candidates);
        w.bool(self.store_seen);
        w.into_bytes()
    }

    /// Decodes artifacts written by [`PassArtifacts::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or malformed input, including
    /// trailing garbage after a well-formed prefix.
    pub fn from_bytes(bytes: &[u8]) -> Result<PassArtifacts> {
        let mut r = Reader::new(bytes);
        let n = r.seq()?;
        let mut summaries = HashMap::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = r.str()?;
            let summary = read_summary(&mut r)?;
            summaries.insert(Symbol::intern(&name), summary);
        }
        let a_candidates = read_candidates(&mut r)?;
        let b_candidates = read_candidates(&mut r)?;
        let store_seen = r.bool()?;
        if !r.is_empty() {
            return Err(CodecError(format!(
                "{} trailing bytes after pass artifacts",
                r.remaining()
            )));
        }
        Ok(PassArtifacts {
            summaries,
            a_candidates,
            b_candidates,
            store_seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_candidate() -> Candidate {
        Candidate {
            class: VulnClass::Sqli,
            sink: "mysql_query".into(),
            sink_span: Span::new(10, 42, 3),
            line: 3,
            sources: vec!["$_GET['id']".into()],
            path: vec![TaintStep::new(
                "entry point $_GET['id']",
                Span::new(10, 20, 3),
            )],
            carriers: vec!["id".into()],
            tainted_arg: Some(0),
            fix_site: Span::new(12, 40, 3),
            literal_fragments: vec!["SELECT * FROM t WHERE id = ".into()],
            file: Some("index.php".into()),
        }
    }

    fn sample_artifacts() -> PassArtifacts {
        let mut sanitized = BTreeSet::new();
        sanitized.insert(VulnClass::Sqli);
        sanitized.insert(VulnClass::Custom("XXE".into()));
        let summary = FnSummary {
            ret_from_params: vec![
                ParamFlow {
                    flows: true,
                    sanitized: sanitized.clone(),
                },
                ParamFlow::default(),
            ],
            ret_direct: TaintState::source("$_POST['q']", Span::new(1, 2, 1)),
            param_sinks: vec![ParamSink {
                param: 1,
                class: VulnClass::XssReflected,
                sink: "echo".into(),
                span: Span::new(5, 9, 2),
                fix_site: Span::new(6, 8, 2),
                tainted_arg: None,
                literals: vec!["<b>".into()],
                sanitized: BTreeSet::new(),
                inner_steps: vec![TaintStep::new("echoed", Span::new(5, 9, 2))],
            }],
        };
        let mut summaries = HashMap::new();
        summaries.insert("render".into(), summary);
        summaries.insert("helper".into(), FnSummary::default());
        PassArtifacts {
            summaries,
            a_candidates: vec![sample_candidate()],
            b_candidates: vec![sample_candidate(), sample_candidate()],
            store_seen: true,
        }
    }

    #[test]
    fn pass_artifacts_round_trip() {
        let a = sample_artifacts();
        let bytes = a.to_bytes();
        let back = PassArtifacts::from_bytes(&bytes).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn empty_artifacts_round_trip() {
        let a = PassArtifacts::default();
        let back = PassArtifacts::from_bytes(&a.to_bytes()).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn serialization_is_deterministic() {
        // HashMap iteration order must not leak into the bytes
        let a = sample_artifacts();
        assert_eq!(a.to_bytes(), a.to_bytes());
        let b = sample_artifacts();
        assert_eq!(a.to_bytes(), b.to_bytes());
    }

    #[test]
    fn candidate_round_trip() {
        let c = sample_candidate();
        let mut w = Writer::new();
        write_candidate(&mut w, &c);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(read_candidate(&mut r).unwrap(), c);
        assert!(r.is_empty());
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let bytes = sample_artifacts().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                PassArtifacts::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_corrupt() {
        let mut bytes = sample_artifacts().to_bytes();
        bytes.push(0);
        assert!(PassArtifacts::from_bytes(&bytes).is_err());
    }

    #[test]
    fn unknown_tags_are_corrupt() {
        let mut w = Writer::new();
        w.u8(99);
        let bytes = w.into_bytes();
        assert!(read_class(&mut Reader::new(&bytes)).is_err());
        assert!(read_taint_state(&mut Reader::new(&bytes)).is_err());
    }

    #[test]
    fn all_classes_round_trip() {
        let all = [
            VulnClass::Sqli,
            VulnClass::XssReflected,
            VulnClass::XssStored,
            VulnClass::Rfi,
            VulnClass::Lfi,
            VulnClass::DirTraversal,
            VulnClass::Osci,
            VulnClass::Scd,
            VulnClass::Phpci,
            VulnClass::LdapI,
            VulnClass::XpathI,
            VulnClass::NoSqlI,
            VulnClass::CommentSpam,
            VulnClass::HeaderI,
            VulnClass::EmailI,
            VulnClass::SessionFixation,
        ];
        for class in all {
            let mut w = Writer::new();
            write_class(&mut w, &class);
            let bytes = w.into_bytes();
            assert_eq!(read_class(&mut Reader::new(&bytes)).unwrap(), class);
        }
        let custom = VulnClass::Custom("LDAP2".into());
        let mut w = Writer::new();
        write_class(&mut w, &custom);
        let bytes = w.into_bytes();
        assert_eq!(read_class(&mut Reader::new(&bytes)).unwrap(), custom);
    }
}
