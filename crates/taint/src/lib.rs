//! # wap-taint — taint analysis engine for the WAPe reproduction
//!
//! Implements the *code analyzer* module of WAP (Medeiros et al., DSN 2016,
//! Fig. 1): data entering at **entry points** (superglobals, weapon-defined
//! functions) is tainted; taint propagates through assignments, string
//! interpolation/concatenation, arrays, and user-defined functions
//! (interprocedural summaries); **sanitization functions** neutralize taint
//! for their specific classes; and any tainted value reaching a **sensitive
//! sink** produces a [`Candidate`] vulnerability with its full data-flow
//! path.
//!
//! Faithful to the paper, *validation* (`is_int`, `preg_match`, white/black
//! lists) does **not** stop taint — candidates guarded that way are the
//! false positives the predictor in `wap-mining` is trained to recognize.
//!
//! ## Quick start
//!
//! ```
//! use wap_php::parse;
//! use wap_taint::analyze_program;
//! use wap_catalog::{Catalog, VulnClass};
//!
//! let program = parse(r#"<?php
//!     $q = "SELECT * FROM users WHERE name = '" . $_POST['name'] . "'";
//!     mysql_query($q);
//!     echo htmlentities($_GET['msg']); // sanitized: no XSS report
//! "#)?;
//! let found = analyze_program(&Catalog::wape(), &program);
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].class, VulnClass::Sqli);
//! # Ok::<(), wap_php::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod finding;
pub mod serial;
pub mod state;

pub use engine::{
    analyze, analyze_program, analyze_with, analyze_with_obs, analyze_with_resolutions,
    collect_literals, declared_names, dedup_and_sort, function_fingerprint, function_refs,
    pass_candidates, referenced_names, run_pass_incremental,
    run_pass_incremental_with_resolutions, AnalysisOptions, FileResolution, PassArtifacts,
    PassInput, PassOutcome, SourceFile,
};
pub use finding::Candidate;
pub use state::{TaintInfo, TaintState, TaintStep};
pub use wap_runtime::Runtime;
