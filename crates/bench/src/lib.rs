//! # wap-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V) from
//! the synthetic corpus, and exposes the shared plumbing used by the
//! Criterion benches and the `experiments` binary.
//!
//! | experiment | paper content |
//! |------------|---------------|
//! | `table1`   | attribute/symptom inventory |
//! | `table2`   | classifier metrics (10-fold CV) |
//! | `table3`   | confusion matrices of the top 3 |
//! | `table4`   | sinks added per sub-module |
//! | `table5`   | web application analysis summary |
//! | `table6`   | per-class detection, WAP vs WAPe, FPP/FP |
//! | `table7`   | WordPress plugin detection |
//! | `fig4`     | plugin downloads / active installs histograms |
//! | `fig5`     | vulnerabilities by class, web apps vs plugins |
//! | `escape_study` | §V-A user-sanitizer (`escape`) experiment |
//! | `ablations` | committee, attribute granularity, interprocedural, dynamic symptoms |

#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
