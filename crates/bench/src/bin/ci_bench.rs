//! CI performance-regression gate.
//!
//! Runs a fixed-seed corpus sweep through the full pipeline twice — once
//! cold (no cache) and once warm (pre-populated incremental cache) — and
//! reports throughput in lines of code per second. Results are written to
//! `BENCH_ci.json` (a per-run artifact, gitignored); gate mode compares
//! them against the committed baseline and exits non-zero when throughput
//! regressed by more than the tolerance (default 15%, override with
//! `WAP_BENCH_TOLERANCE`). Gating against the run's own output file is
//! refused — a self-comparison always passes and gates nothing.
//!
//! ```text
//! ci_bench                      # measure, write BENCH_ci.json, gate vs baseline
//! ci_bench --write-baseline     # measure and (re)write the baseline instead
//! ci_bench --baseline <path>    # baseline location  (default BENCH_baseline.json)
//! ci_bench --out <path>         # result location    (default BENCH_ci.json)
//! ```
//!
//! Deliberately `Instant`-based with hand-formatted JSON: the gate must
//! not depend on the Criterion harness or a serializer, so it runs in
//! the offline scratch workspace exactly as it runs in CI.

use std::process::ExitCode;
use std::time::Instant;

use wap_core::{Phase, ScanStats, ToolConfig, WapTool};

// Count allocations so the cold-phase report can include them; the
// pipeline reads the counter via `wap_obs::allocations_now`.
#[global_allocator]
static ALLOC: wap_core::CountingAlloc = wap_core::CountingAlloc;
use wap_corpus::generate_webapp;
use wap_corpus::specs::vulnerable_webapps;

const SCHEMA: &str = "wap-ci-bench-v1";
const DEFAULT_BASELINE: &str = "BENCH_baseline.json";
const DEFAULT_OUT: &str = "BENCH_ci.json";
const DEFAULT_TOLERANCE: f64 = 0.15;
/// The cache subsystem's acceptance bar, machine-independent: a fully
/// warm run must be at least this many times faster than a cold run.
const MIN_WARM_SPEEDUP: f64 = 3.0;
/// Absolute cold-throughput floor, a ratchet backstop the relative gate
/// cannot provide: re-baselining after each 15%-tolerated dip could walk
/// the baseline down indefinitely. The value sits ~1.5x above the
/// pre-optimization baseline (228.9k LoC/s, before interner/arena/taint
/// work) and ~30% below current light-load measurements (~500-600k), so
/// losing any one of those optimizations trips it while scheduler noise
/// does not.
const MIN_COLD_LOC_PER_S: f64 = 350_000.0;
/// Ceiling on what `--values` may add to a cold scan, self-relative to
/// this run's own plain cold sweep (so it needs no baseline field and
/// sits outside the 15% regression gate): the opt-in value analysis is
/// a coverage feature, not licence for a measurable slowdown.
const MAX_VALUES_OVERHEAD: f64 = 0.10;
const REPS: usize = 3;
/// Single-file edits driven through the watch front-end for the
/// live-edit latency sweep (reported, not gated).
const LIVE_EDITS: usize = 12;

/// The fixed-seed sweep corpus: six generated applications, unique file
/// names via a per-app prefix.
fn corpus() -> Vec<(String, String)> {
    let mut sources = Vec::new();
    for (i, spec) in vulnerable_webapps().into_iter().take(6).enumerate() {
        let app = generate_webapp(&spec, 0.05, 7000u64.wrapping_add(i as u64));
        for f in &app.files {
            sources.push((format!("app{i}/{}", f.name), f.source.clone()));
        }
    }
    sources
}

/// Best-of-N wall time in seconds (best-of damps scheduler noise, which
/// only ever slows a run down).
fn best_secs(reps: usize, mut run: impl FnMut() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut findings = 0;
    for _ in 0..reps {
        let start = Instant::now();
        findings = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, findings)
}

struct Measurement {
    total_loc: usize,
    findings: usize,
    cold_loc_per_s: f64,
    warm_loc_per_s: f64,
    /// Cold local cache reading through a warm peer replica — reported
    /// for trend-watching but outside the gate (it measures loopback
    /// HTTP as much as the pipeline).
    warm_remote_loc_per_s: f64,
    /// Cold sweep with the interprocedural value analysis on — outside
    /// the baseline gate, but bounded self-relatively: it may cost at
    /// most [`MAX_VALUES_OVERHEAD`] over this run's plain cold sweep.
    cold_values_loc_per_s: f64,
    /// Watch-mode re-analysis latency after one single-file edit on a
    /// warm cache — reported for trend-watching, outside the gate (it
    /// measures filesystem polling as much as the pipeline).
    live_edit_p50_ms: f64,
    live_edit_p95_ms: f64,
    /// Optional sweeps skipped via `WAP_BENCH_SKIP` — recorded in the
    /// artifact (and announced on stdout) so their zeroed metrics are
    /// never mistaken for a measurement.
    skipped_sweeps: Vec<String>,
}

impl Measurement {
    fn warm_speedup(&self) -> f64 {
        self.warm_loc_per_s / self.cold_loc_per_s
    }

    fn to_json(&self) -> String {
        let skipped = self
            .skipped_sweeps
            .iter()
            .map(|s| format!("\"{s}\""))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"schema\": \"{}\",\n  \"total_loc\": {},\n  \"findings\": {},\n  \"cold_loc_per_s\": {:.1},\n  \"warm_loc_per_s\": {:.1},\n  \"warm_remote_loc_per_s\": {:.1},\n  \"cold_values_loc_per_s\": {:.1},\n  \"warm_speedup\": {:.2},\n  \"live_edit_p50_ms\": {:.2},\n  \"live_edit_p95_ms\": {:.2},\n  \"skipped_sweeps\": [{skipped}]\n}}\n",
            SCHEMA,
            self.total_loc,
            self.findings,
            self.cold_loc_per_s,
            self.warm_loc_per_s,
            self.warm_remote_loc_per_s,
            self.cold_values_loc_per_s,
            self.warm_speedup(),
            self.live_edit_p50_ms,
            self.live_edit_p95_ms
        )
    }
}

/// The `WAP_BENCH_SKIP` list: optional (ungated) sweeps to skip, comma-
/// separated. Only `warm_remote` and `live_edit` are skippable — the
/// gated cold/warm sweeps always run. Unknown names are ignored loudly.
fn sweeps_to_skip() -> Vec<String> {
    let Ok(raw) = std::env::var("WAP_BENCH_SKIP") else {
        return Vec::new();
    };
    let mut skip = Vec::new();
    for name in raw.split(',').map(str::trim).filter(|n| !n.is_empty()) {
        if name == "warm_remote" || name == "live_edit" {
            if !skip.iter().any(|s| s == name) {
                skip.push(name.to_string());
            }
        } else {
            eprintln!("ci_bench: ignoring unknown WAP_BENCH_SKIP sweep {name:?}");
        }
    }
    skip
}

fn measure() -> Measurement {
    let skipped_sweeps = sweeps_to_skip();
    let skip = |name: &str| skipped_sweeps.iter().any(|s| s == name);
    let sources = corpus();
    let total_loc: usize = sources.iter().map(|(_, s)| s.lines().count()).sum();

    let mut cold_stats = ScanStats::new();
    let (cold_secs, findings) = best_secs(REPS, || {
        let report = WapTool::new(ToolConfig::builder().jobs(1).build()).analyze_sources(&sources);
        cold_stats = report.stats.clone();
        report.findings.len()
    });
    let ms = |p: Phase| cold_stats.phase_ns(p) / 1_000_000;
    println!(
        "ci_bench: cold phases (last rep): parse {} ms, taint {} ms, predict {} ms",
        ms(Phase::Parse),
        ms(Phase::Taint),
        ms(Phase::Predict)
    );
    println!(
        "ci_bench: cold memory (last rep): peak RSS {:.1} MB, {} allocations",
        cold_stats.peak_rss_bytes as f64 / (1024.0 * 1024.0),
        cold_stats.allocations
    );

    // CFG/lint pass cost, reported but outside the gate: the pass is
    // compiled in yet off by default, so the gated sweeps above never
    // pay for it
    let guarded = WapTool::new(ToolConfig::builder().jobs(1).guard_attributes(true).build());
    let mut guarded_report = guarded.analyze_sources(&sources);
    guarded.apply_lint(&mut guarded_report, &sources);
    println!(
        "ci_bench: cfg phase {} ms, lint phase {} ms (opt-in --guards/--lint, not gated)",
        guarded_report.stats.phase_ns(Phase::Cfg) / 1_000_000,
        guarded_report.stats.phase_ns(Phase::Lint) / 1_000_000
    );

    // values sweep: the interprocedural value analysis on a cold scan —
    // outside the baseline gate, bounded against this run's own cold
    // sweep by MAX_VALUES_OVERHEAD in gate mode
    let mut values_stats = ScanStats::new();
    let (values_secs, values_findings) = best_secs(REPS, || {
        let report = WapTool::new(ToolConfig::builder().jobs(1).values(true).build())
            .analyze_sources(&sources);
        values_stats = report.stats.clone();
        report.findings.len()
    });
    assert!(
        values_findings >= findings,
        "--values must never lose findings: {values_findings} < {findings}"
    );
    println!(
        "ci_bench: values phase {} ms (opt-in --values, bounded vs cold, not baseline-gated)",
        values_stats.phase_ns(Phase::Values) / 1_000_000
    );

    let mut tool = WapTool::new(ToolConfig::builder().jobs(1).build());
    tool.enable_memory_cache();
    tool.analyze_sources(&sources); // prime
    let (warm_secs, warm_findings) = best_secs(REPS, || {
        let report = tool.analyze_sources(&sources);
        assert_eq!(report.cache.misses, 0, "warm sweep must not miss");
        report.findings.len()
    });
    assert_eq!(findings, warm_findings, "cold and warm findings diverged");

    // fleet sweep: a replica with a cold local cache reading through a
    // peer whose cache is fully warm — every entry arrives over loopback
    // HTTP. Reported, not gated.
    let warm_remote_loc_per_s = if skip("warm_remote") {
        println!("ci_bench: optional sweep warm_remote SKIPPED (WAP_BENCH_SKIP)");
        0.0
    } else {
        let peer_dir =
            std::env::temp_dir().join(format!("wap-ci-bench-peer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&peer_dir);
        WapTool::new(ToolConfig::builder().jobs(1).cache_dir(&peer_dir).build())
            .analyze_sources(&sources); // warm the peer's disk cache
        let server = wap_serve::Server::bind(&wap_serve::ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            cache_dir: Some(peer_dir.clone()),
            ..wap_serve::ServeConfig::default()
        })
        .expect("bind bench peer");
        let handle = server.handle().expect("peer handle");
        let join = std::thread::spawn(move || server.run());
        let peer_url = format!("http://{}", handle.addr());
        let (remote_secs, remote_findings) = best_secs(REPS, || {
            // fresh tool per rep: local tiers start cold, so every hit is
            // genuinely served by the peer
            let mut tool = WapTool::new(ToolConfig::builder().jobs(1).build());
            let backend = wap_cache::RemoteBackend::new(&peer_url).expect("peer url");
            tool.set_cache_store(
                wap_cache::CacheStore::in_memory().with_remote(std::sync::Arc::new(backend)),
            );
            let report = tool.analyze_sources(&sources);
            assert!(
                report.cache.remote_hits > 0,
                "remote-warm sweep never reached the peer"
            );
            report.findings.len()
        });
        assert_eq!(findings, remote_findings, "remote-warm findings diverged");
        handle.shutdown();
        let _ = join.join();
        let _ = std::fs::remove_dir_all(&peer_dir);
        total_loc as f64 / remote_secs
    };

    let (live_edit_p50_ms, live_edit_p95_ms) = if skip("live_edit") {
        println!("ci_bench: optional sweep live_edit SKIPPED (WAP_BENCH_SKIP)");
        (0.0, 0.0)
    } else {
        measure_live_edits(&sources)
    };

    Measurement {
        total_loc,
        findings,
        cold_loc_per_s: total_loc as f64 / cold_secs,
        warm_loc_per_s: total_loc as f64 / warm_secs,
        warm_remote_loc_per_s,
        cold_values_loc_per_s: total_loc as f64 / values_secs,
        live_edit_p50_ms,
        live_edit_p95_ms,
        skipped_sweeps,
    }
}

/// Nearest-rank percentile of an unsorted sample, in place.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p * samples.len() as f64).ceil() as usize).max(1) - 1;
    samples[rank.min(samples.len() - 1)]
}

/// Live-edit latency sweep: materializes the corpus on disk, boots the
/// watch front-end with a warm incremental cache, then makes
/// [`LIVE_EDITS`] single-file edits — each appends one new function to a
/// rotating file — and times the poll-to-delta turnaround. Every edit
/// re-reads the whole tree but only re-analyzes the changed file, so
/// this measures exactly what an editor user waits on. Reported for
/// trend-watching, outside the gate.
fn measure_live_edits(sources: &[(String, String)]) -> (f64, f64) {
    let dir = std::env::temp_dir().join(format!("wap-ci-bench-live-{}", std::process::id()));
    let cache =
        std::env::temp_dir().join(format!("wap-ci-bench-live-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
    for (name, source) in sources {
        let path = dir.join(name);
        std::fs::create_dir_all(path.parent().expect("corpus file has a parent"))
            .expect("create corpus dir");
        std::fs::write(&path, source).expect("write corpus file");
    }

    let mut config = wap_live::WatchConfig::new(&dir);
    config.cache_dir = Some(cache.clone());
    let mut watcher = wap_live::Watcher::new(config).expect("boot watcher");
    watcher
        .poll_once()
        .expect("initial scan")
        .expect("initial scan emits revision 1");

    let mut times_ms = Vec::with_capacity(LIVE_EDITS);
    for i in 0..LIVE_EDITS {
        let (name, source) = &sources[i % sources.len()];
        let edited = format!("{source}\n<?php function live_edit_{i}() {{ return {i}; }}\n");
        std::fs::write(dir.join(name), edited).expect("apply edit");
        let start = Instant::now();
        let delta = watcher.poll_once().expect("re-scan after edit");
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        assert!(delta.is_some(), "edit {i} did not produce a revision");
        times_ms.push(elapsed);
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&cache);
    (
        percentile(&mut times_ms, 0.50),
        percentile(&mut times_ms, 0.95),
    )
}

/// Minimal extractor for our own flat JSON: the f64 following `"key":`.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Whether two path strings denote the same file (textually, or after
/// canonicalization when both exist).
fn same_file(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    match (std::fs::canonicalize(a), std::fs::canonicalize(b)) {
        (Ok(x), Ok(y)) => x == y,
        _ => false,
    }
}

fn tolerance() -> f64 {
    match std::env::var("WAP_BENCH_TOLERANCE") {
        Ok(raw) => raw.trim().parse().unwrap_or_else(|_| {
            eprintln!("ci_bench: ignoring unparsable WAP_BENCH_TOLERANCE={raw:?}");
            DEFAULT_TOLERANCE
        }),
        Err(_) => DEFAULT_TOLERANCE,
    }
}

fn gate(measured: &Measurement, baseline_path: &str) -> Result<(), String> {
    let raw = std::fs::read_to_string(baseline_path).map_err(|e| {
        format!("cannot read baseline {baseline_path}: {e}\nrun `ci_bench --write-baseline` and commit the result")
    })?;
    let tol = tolerance();
    let mut failures = Vec::new();
    for (name, current) in [
        ("cold_loc_per_s", measured.cold_loc_per_s),
        ("warm_loc_per_s", measured.warm_loc_per_s),
    ] {
        let base = json_number(&raw, name)
            .ok_or_else(|| format!("baseline {baseline_path} has no \"{name}\""))?;
        let floor = base * (1.0 - tol);
        let verdict = if current < floor { "REGRESSED" } else { "ok" };
        println!(
            "ci_bench: {name}: {current:.1} vs baseline {base:.1} (floor {floor:.1}, tolerance {:.0}%) — {verdict}",
            tol * 100.0
        );
        if current < floor {
            failures.push(format!(
                "{name} regressed: {current:.1} < {floor:.1} ({base:.1} - {:.0}%)",
                tol * 100.0
            ));
        }
    }
    println!(
        "ci_bench: cold absolute floor: {:.1} vs {MIN_COLD_LOC_PER_S:.1}",
        measured.cold_loc_per_s
    );
    if measured.cold_loc_per_s < MIN_COLD_LOC_PER_S {
        failures.push(format!(
            "cold throughput {:.1} LoC/s below the absolute floor {MIN_COLD_LOC_PER_S:.1}",
            measured.cold_loc_per_s
        ));
    }
    let speedup = measured.warm_speedup();
    println!("ci_bench: warm_speedup: {speedup:.2}x (floor {MIN_WARM_SPEEDUP:.1}x)");
    if speedup < MIN_WARM_SPEEDUP {
        failures.push(format!(
            "warm run only {speedup:.2}x faster than cold (need >= {MIN_WARM_SPEEDUP:.1}x)"
        ));
    }
    // self-relative, so baseline files without the field still gate:
    // the opt-in values pass may not slow a cold scan past its bound
    let values_overhead = measured.cold_loc_per_s / measured.cold_values_loc_per_s - 1.0;
    println!(
        "ci_bench: values overhead: {:.1}% over cold (ceiling {:.0}%)",
        values_overhead * 100.0,
        MAX_VALUES_OVERHEAD * 100.0
    );
    if values_overhead > MAX_VALUES_OVERHEAD {
        failures.push(format!(
            "--values costs {:.1}% over a cold scan (ceiling {:.0}%)",
            values_overhead * 100.0,
            MAX_VALUES_OVERHEAD * 100.0
        ));
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let mut write_baseline = false;
    let mut baseline_path = DEFAULT_BASELINE.to_string();
    let mut out_path = DEFAULT_OUT.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => write_baseline = true,
            "--baseline" => match args.next() {
                Some(p) => baseline_path = p,
                None => {
                    eprintln!("ci_bench: --baseline needs a path");
                    return ExitCode::from(2);
                }
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("ci_bench: --out needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("ci_bench: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    // Gating a run against the file that same run writes is always a
    // pass — exactly the self-comparison that let a stale committed
    // BENCH_ci.json masquerade as an independent measurement. Refuse it.
    if !write_baseline && same_file(&baseline_path, &out_path) {
        eprintln!(
            "ci_bench: baseline ({baseline_path}) and output ({out_path}) are the same file; \
             gate against the committed baseline, not this run's own output"
        );
        return ExitCode::from(2);
    }

    let measured = measure();
    println!(
        "ci_bench: {} LoC, {} findings, cold {:.1} LoC/s, warm {:.1} LoC/s ({:.2}x), remote-warm {:.1} LoC/s (not gated), cold+values {:.1} LoC/s",
        measured.total_loc,
        measured.findings,
        measured.cold_loc_per_s,
        measured.warm_loc_per_s,
        measured.warm_speedup(),
        measured.warm_remote_loc_per_s,
        measured.cold_values_loc_per_s
    );
    println!(
        "ci_bench: live_edit: p50 {:.2} ms, p95 {:.2} ms over {LIVE_EDITS} edits (not gated)",
        measured.live_edit_p50_ms, measured.live_edit_p95_ms
    );

    if write_baseline {
        if let Err(e) = std::fs::write(&baseline_path, measured.to_json()) {
            eprintln!("ci_bench: cannot write {baseline_path}: {e}");
            return ExitCode::from(2);
        }
        println!("ci_bench: baseline written to {baseline_path}");
        return ExitCode::SUCCESS;
    }

    if let Err(e) = std::fs::write(&out_path, measured.to_json()) {
        eprintln!("ci_bench: cannot write {out_path}: {e}");
        return ExitCode::from(2);
    }
    println!("ci_bench: results written to {out_path}");

    match gate(&measured, &baseline_path) {
        Ok(()) => {
            println!("ci_bench: gate PASSED");
            ExitCode::SUCCESS
        }
        Err(report) => {
            eprintln!("ci_bench: gate FAILED\n{report}");
            ExitCode::FAILURE
        }
    }
}
