//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [table1|table2|table3|table4|table5|table6|table7|fig4|fig5|escape|ablations|all]
//!             [--scale F] [--seed N]
//! ```

use wap_bench::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_string();
    let mut scale = DEFAULT_SCALE;
    let mut seed = DEFAULT_SEED;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--scale needs a number"));
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            other if !other.starts_with('-') => which = other.to_string(),
            other => usage(&format!("unknown flag {other}")),
        }
    }

    let need_web = matches!(which.as_str(), "table5" | "table6" | "fig5" | "all");
    let need_plugins = matches!(which.as_str(), "table7" | "fig5" | "all");
    let web = if need_web {
        run_webapps(scale, seed)
    } else {
        Vec::new()
    };
    let plugins = if need_plugins {
        run_plugins(scale, seed)
    } else {
        Vec::new()
    };

    let mut sections: Vec<String> = Vec::new();
    let all = which == "all";
    if all || which == "table1" {
        sections.push(table1());
    }
    if all || which == "table2" {
        sections.push(table2(seed));
    }
    if all || which == "table3" {
        sections.push(table3(seed));
    }
    if all || which == "table4" {
        sections.push(table4());
    }
    if all || which == "table5" {
        sections.push(table5(&web, scale, seed));
    }
    if all || which == "table6" {
        sections.push(table6(&web));
    }
    if all || which == "table7" {
        sections.push(table7(&plugins));
    }
    if all || which == "fig4" {
        sections.push(fig4());
    }
    if all || which == "fig5" {
        sections.push(fig5(&web, &plugins));
    }
    if all || which == "escape" {
        sections.push(escape_study(scale, seed));
    }
    if all || which == "second-order" {
        sections.push(second_order_study());
    }
    if all || which == "confirm" {
        sections.push(confirm_sweep(scale, seed));
    }
    if all || which == "ablations" {
        sections.push(ablation_committee(seed));
        sections.push(ablation_attributes(seed));
        sections.push(ablation_interproc(scale, seed));
        sections.push(ablation_dynamic_symptoms(scale, seed));
    }
    if sections.is_empty() {
        usage(&format!("unknown experiment `{which}`"));
    }
    println!(
        "{}",
        sections.join("\n\n================================================================\n\n")
    );
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "error: {msg}\n\nusage: experiments [table1..table7|fig4|fig5|escape|ablations|all] [--scale F] [--seed N]"
    );
    std::process::exit(2);
}
