//! The experiment implementations. Each function renders one table or
//! figure of the paper as text, with the paper's reference values printed
//! alongside the measured ones so the shape comparison is immediate.

use std::collections::BTreeMap;
use std::time::Duration;
use wap_catalog::{Catalog, SubModule, VulnClass};
use wap_core::{bar_chart, Phase, Runtime, TextTable, ToolConfig, WapTool};
use wap_corpus::specs::{
    clean_plugins, clean_webapps, vulnerable_plugins, vulnerable_webapps, AppSpec, PluginSpec,
    DOWNLOAD_BUCKETS, INSTALL_BUCKETS,
};
use wap_corpus::{generate_clean_webapp, generate_plugin, generate_webapp, GeneratedApp};
use wap_mining::classifiers::ClassifierKind;
use wap_mining::metrics::{cross_validate, ConfusionMatrix, Metrics};
use wap_mining::{Dataset, FalsePositivePredictor};
use wap_taint::AnalysisOptions;

/// Default corpus scale for the experiment binary (fraction of the
/// paper's file/LoC budget; seeded vulnerabilities are never scaled).
pub const DEFAULT_SCALE: f64 = 0.05;

/// Default RNG seed for all experiments.
pub const DEFAULT_SEED: u64 = 42;

// ---------------------------------------------------------------- table 1

/// Table I: the attribute/symptom inventory.
pub fn table1() -> String {
    let mut out =
        String::from("TABLE I — Attributes and symptoms (original WAP vs new version)\n\n");
    let mut t = TextTable::new(&[
        "attribute group",
        "category",
        "original symptoms",
        "new symptoms",
    ]);
    for group in wap_mining::Group::all() {
        let orig: Vec<&str> = wap_mining::symptoms()
            .iter()
            .filter(|s| s.group == group && !s.new_in_wape)
            .map(|s| s.name)
            .collect();
        let new: Vec<&str> = wap_mining::symptoms()
            .iter()
            .filter(|s| s.group == group && s.new_in_wape)
            .map(|s| s.name)
            .collect();
        t.row(&[
            group.name().to_string(),
            group.category().to_string(),
            orig.join(" "),
            new.join(" "),
        ]);
    }
    out.push_str(&t.render());
    let orig_n = wap_mining::symptoms()
        .iter()
        .filter(|s| !s.new_in_wape)
        .count();
    let new_n = wap_mining::symptoms().len() - orig_n;
    out.push_str(&format!(
        "\noriginal: {} attributes + class = 16, representing {} symptoms\n\
         new:      {} symptom-attributes + class = 61 ({} original + {} new symptoms)\n",
        wap_mining::Group::all().len(),
        orig_n,
        wap_mining::symptoms().len(),
        orig_n,
        new_n,
    ));
    out
}

// ------------------------------------------------------------ tables 2, 3

/// The paper's Table II reference values `(name, acc, tpp, pfp)`.
pub const PAPER_TABLE2: [(&str, f64, f64, f64); 3] = [
    ("SVM", 0.949, 0.945, 0.047),
    ("Logistic Regression", 0.941, 0.930, 0.047),
    ("Random Forest", 0.941, 0.906, 0.023),
];

/// Runs the classifier evaluation (10-fold CV on the 256-instance set)
/// and returns the rendered Table II.
pub fn table2(seed: u64) -> String {
    let d = Dataset::wape(seed);
    let mut out = format!(
        "TABLE II — classifier evaluation ({} instances, {} attributes, 10-fold CV)\n\n",
        d.len(),
        d.names.len()
    );
    let mut t = TextTable::new(&[
        "classifier",
        "tpp",
        "pfp",
        "prfp",
        "pd",
        "ppd",
        "acc",
        "pr",
        "inform",
        "jacc",
    ]);
    for kind in ClassifierKind::all() {
        let cm = cross_validate(kind, &d.x, &d.y, 10, seed);
        let m = Metrics::from_confusion(&cm);
        let pct = |v: f64| format!("{:.1}%", v * 100.0);
        t.row(&[
            kind.name().to_string(),
            pct(m.tpp),
            pct(m.pfp),
            pct(m.prfp),
            pct(m.pd),
            pct(m.ppd),
            pct(m.acc),
            pct(m.pr),
            pct(m.inform),
            pct(m.jacc),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("\npaper (top 3): ");
    for (name, acc, tpp, pfp) in PAPER_TABLE2 {
        out.push_str(&format!(
            "{name}: acc {:.1}% tpp {:.1}% pfp {:.1}%;  ",
            acc * 100.0,
            tpp * 100.0,
            pfp * 100.0
        ));
    }
    out.push('\n');
    out
}

/// Confusion matrices of the top 3 (Table III).
pub fn table3(seed: u64) -> String {
    let d = Dataset::wape(seed);
    let mut out = String::from("TABLE III — confusion matrices of the top 3 classifiers\n\n");
    let paper: [(&str, ConfusionMatrix); 3] = [
        (
            "SVM",
            ConfusionMatrix {
                tp: 121,
                fp: 6,
                fn_: 7,
                tn: 122,
            },
        ),
        (
            "Logistic Regression",
            ConfusionMatrix {
                tp: 119,
                fp: 6,
                fn_: 9,
                tn: 122,
            },
        ),
        (
            "Random Forest",
            ConfusionMatrix {
                tp: 116,
                fp: 3,
                fn_: 12,
                tn: 125,
            },
        ),
    ];
    for (kind, (pname, pcm)) in ClassifierKind::top3().into_iter().zip(paper) {
        let cm = cross_validate(kind, &d.x, &d.y, 10, seed);
        out.push_str(&format!(
            "{:<20}  measured: yes=({:>3},{:>3}) no=({:>3},{:>3})   paper {}: yes=({},{}) no=({},{})\n",
            kind.name(),
            cm.tp,
            cm.fp,
            cm.fn_,
            cm.tn,
            pname,
            pcm.tp,
            pcm.fp,
            pcm.fn_,
            pcm.tn
        ));
    }
    out.push_str("\n(rows: predicted yes/no; cells: observed FP, observed not-FP)\n");
    out
}

// ---------------------------------------------------------------- table 4

/// Table IV: sensitive sinks added to the sub-modules.
pub fn table4() -> String {
    let catalog = Catalog::wape();
    let mut out = String::from("TABLE IV — sensitive sinks added to the WAP sub-modules\n\n");
    let mut t = TextTable::new(&["sub-module", "class", "sensitive sinks"]);
    let rows = catalog.table_iv_rows();
    for sm in SubModule::all() {
        let mut by_class: BTreeMap<&VulnClass, Vec<&str>> = BTreeMap::new();
        for (s, class, sink) in &rows {
            if *s == sm {
                by_class.entry(class).or_default().push(sink);
            }
        }
        for (class, sinks) in by_class {
            t.row(&[sm.name().to_string(), class.to_string(), sinks.join(", ")]);
        }
    }
    out.push_str(&t.render());
    out
}

// ----------------------------------------------------- web app experiments

/// One analyzed web application: spec + generated app + both tools' runs.
pub struct WebAppRun {
    /// The Table V/VI specification.
    pub spec: AppSpec,
    /// The generated source tree.
    pub app: GeneratedApp,
    /// WAPe (full weapons) report.
    pub wape: wap_core::AppReport,
    /// WAP v2.1 report.
    pub wap21: wap_core::AppReport,
}

/// Runs both tool generations over the 17 vulnerable web applications.
///
/// The corpus fans out one app per task on the shared runtime (`WAP_JOBS`
/// honored); each in-app analysis stays single-threaded so the corpus
/// level is the only source of concurrency. The join preserves spec
/// order, so the tables aggregate deterministically.
pub fn run_webapps(scale: f64, seed: u64) -> Vec<WebAppRun> {
    let wape = WapTool::new(ToolConfig::builder().jobs(1).build());
    let v21 = WapTool::new(ToolConfig::builder().v21().jobs(1).build());
    Runtime::from_config(None).map(vulnerable_webapps(), |i, spec| {
        let app = generate_webapp(&spec, scale, seed.wrapping_add(i as u64));
        let files: Vec<(String, String)> = app
            .files
            .iter()
            .map(|f| (f.name.clone(), f.source.clone()))
            .collect();
        let wape_report = wape.analyze_sources(&files);
        let wap21_report = v21.analyze_sources(&files);
        WebAppRun {
            spec,
            app,
            wape: wape_report,
            wap21: wap21_report,
        }
    })
}

/// Table V: summary of the WAPe analysis of the vulnerable packages, plus
/// the clean packages' aggregate line.
pub fn table5(runs: &[WebAppRun], scale: f64, seed: u64) -> String {
    let mut out =
        format!("TABLE V — WAPe analysis of real web applications (corpus scale {scale})\n\n");
    let mut t = TextTable::new(&[
        "web application",
        "version",
        "files",
        "LoC",
        "time (ms)",
        "parse/taint/predict (ms)",
        "vuln files",
        "vulns found",
        "paper vulns",
    ]);
    let ms = |ns: u64| ns / 1_000_000;
    let mut tot = (0usize, 0usize, Duration::ZERO, 0usize, 0usize, 0usize);
    let mut phase_tot = (0u64, 0u64, 0u64);
    for r in runs {
        let reported_real = r.wape.real_vulnerabilities().count();
        t.row(&[
            r.spec.name.to_string(),
            r.spec.version.to_string(),
            r.app.file_count().to_string(),
            r.app.loc.to_string(),
            r.wape.duration.as_millis().to_string(),
            format!(
                "{}/{}/{}",
                ms(r.wape.stats.phase_ns(Phase::Parse)),
                ms(r.wape.stats.phase_ns(Phase::Taint)),
                ms(r.wape.stats.phase_ns(Phase::Predict))
            ),
            r.wape.vulnerable_files().to_string(),
            reported_real.to_string(),
            r.spec.real.total().to_string(),
        ]);
        tot.0 += r.app.file_count();
        tot.1 += r.app.loc;
        tot.2 += r.wape.duration;
        tot.3 += r.wape.vulnerable_files();
        tot.4 += reported_real;
        tot.5 += r.spec.real.total();
        phase_tot.0 += r.wape.stats.phase_ns(Phase::Parse);
        phase_tot.1 += r.wape.stats.phase_ns(Phase::Taint);
        phase_tot.2 += r.wape.stats.phase_ns(Phase::Predict);
    }
    t.row(&[
        "Total".into(),
        "".into(),
        tot.0.to_string(),
        tot.1.to_string(),
        tot.2.as_millis().to_string(),
        format!(
            "{}/{}/{}",
            ms(phase_tot.0),
            ms(phase_tot.1),
            ms(phase_tot.2)
        ),
        tot.3.to_string(),
        tot.4.to_string(),
        tot.5.to_string(),
    ]);
    out.push_str(&t.render());

    // clean packages: the remaining 37 of the 54, one app per runtime task
    let wape = WapTool::new(ToolConfig::builder().jobs(1).build());
    let clean_runs = Runtime::from_config(None).map(clean_webapps(), |i, (name, files, loc)| {
        let app = generate_clean_webapp(name, files, loc, scale, seed.wrapping_add(900 + i as u64));
        let sources: Vec<(String, String)> = app
            .files
            .iter()
            .map(|f| (f.name.clone(), f.source.clone()))
            .collect();
        let report = wape.analyze_sources(&sources);
        (app.file_count(), app.loc, report.findings.len())
    });
    let mut clean_files = 0usize;
    let mut clean_loc = 0usize;
    let mut clean_findings = 0usize;
    for (files, loc, findings) in clean_runs {
        clean_files += files;
        clean_loc += loc;
        clean_findings += findings;
    }
    out.push_str(&format!(
        "\nclean packages: 37 apps, {clean_files} files, {clean_loc} LoC, {clean_findings} findings (expected 0)\n\
         paper: 54 packages, 8,374 files, 2,065,914 LoC; 17 vulnerable packages with 4,714 files / 1,196,702 LoC, 123 s total\n",
    ));
    out
}

/// Classifies reported-real findings of a run into per-class confirmed
/// counts and the unconfirmed remainder (the `FP` column).
fn confirmed_by_class(
    run: &WebAppRun,
    report: &wap_core::AppReport,
) -> (BTreeMap<String, usize>, usize) {
    let mut confirmed = BTreeMap::new();
    let mut unconfirmed = 0usize;
    // ground truth per class (Files classes merged like the paper)
    let mut seeded: BTreeMap<String, usize> = BTreeMap::new();
    for (class, n) in run.spec.real.per_class() {
        *seeded.entry(table_class(&class)).or_insert(0) += n;
    }
    let mut reported: BTreeMap<String, usize> = BTreeMap::new();
    for f in report.real_vulnerabilities() {
        *reported.entry(table_class(&f.candidate.class)).or_insert(0) += 1;
    }
    for (class, n) in reported {
        let s = seeded.get(&class).copied().unwrap_or(0);
        let ok = n.min(s);
        if ok > 0 {
            confirmed.insert(class, ok);
        }
        unconfirmed += n - ok;
    }
    (confirmed, unconfirmed)
}

/// The merged class buckets used by Table VI ("Files*" merges DT/RFI/LFI).
fn table_class(c: &VulnClass) -> String {
    match c {
        VulnClass::Lfi | VulnClass::Rfi | VulnClass::DirTraversal => "Files".to_string(),
        VulnClass::Custom(n) if n == "WPSQLI" => "SQLI".to_string(),
        other => other.acronym().to_string(),
    }
}

/// Table VI: vulnerabilities found and false positives predicted by both
/// versions of the tool.
pub fn table6(runs: &[WebAppRun]) -> String {
    let mut out =
        String::from("TABLE VI — vulnerabilities and false positives, WAP v2.1 vs WAPe\n\n");
    let classes = ["SQLI", "XSS", "Files", "SCD", "LDAPI", "SF", "HI", "CS"];
    let mut header: Vec<&str> = vec!["web application"];
    header.extend(classes);
    header.extend(["total", "wapFPP", "wapFP", "wapeFPP", "wapeFP"]);
    let mut t = TextTable::new(&header);
    let mut totals = vec![0usize; classes.len() + 5];
    for r in runs {
        let (confirmed, unconfirmed) = confirmed_by_class(r, &r.wape);
        let wape_fpp = r.wape.predicted_false_positives().count();
        let wap_fpp = r.wap21.predicted_false_positives().count();
        // WAP v2.1's FP column: candidates WAP reported as real that are
        // actually FPs = its reported-real minus ground-truth real among
        // the classes it detects
        let (_conf21, unconf21) = confirmed_by_class(r, &r.wap21);
        let mut cells = vec![r.spec.name.to_string()];
        let mut row_total = 0usize;
        for (i, c) in classes.iter().enumerate() {
            let n = confirmed.get(*c).copied().unwrap_or(0);
            row_total += n;
            totals[i] += n;
            cells.push(if n == 0 { String::new() } else { n.to_string() });
        }
        cells.push(row_total.to_string());
        cells.push(wap_fpp.to_string());
        cells.push(unconf21.to_string());
        cells.push(wape_fpp.to_string());
        cells.push(unconfirmed.to_string());
        totals[classes.len()] += row_total;
        totals[classes.len() + 1] += wap_fpp;
        totals[classes.len() + 2] += unconf21;
        totals[classes.len() + 3] += wape_fpp;
        totals[classes.len() + 4] += unconfirmed;
        t.row(&cells);
    }
    let mut cells = vec!["Total".to_string()];
    cells.extend(totals.iter().map(|n| n.to_string()));
    t.row(&cells);
    out.push_str(&t.render());
    out.push_str(
        "\npaper totals: SQLI 72, XSS 255, Files 55, SCD 4, LDAPI 2, SF 1, HI 19, CS 5 = 413;\n\
         WAP FPP 62 / FP 60; WAPe FPP 104 / FP 18\n",
    );
    out
}

// ------------------------------------------------------ plugin experiments

/// One analyzed plugin.
pub struct PluginRun {
    /// The Table VII specification (with Fig. 4 metadata).
    pub spec: PluginSpec,
    /// The generated plugin.
    pub app: GeneratedApp,
    /// WAPe (full weapons) report.
    pub report: wap_core::AppReport,
}

/// Runs WAPe (with `-wpsqli` and `-hei`) over the 23 vulnerable plugins.
///
/// Like [`run_webapps`], one plugin per runtime task with single-threaded
/// in-app analysis and an order-preserving join.
pub fn run_plugins(scale: f64, seed: u64) -> Vec<PluginRun> {
    let tool = WapTool::new(ToolConfig::builder().jobs(1).build());
    Runtime::from_config(None).map(vulnerable_plugins(), |i, spec| {
        let app = generate_plugin(&spec, scale.max(0.5), seed.wrapping_add(i as u64));
        let files: Vec<(String, String)> = app
            .files
            .iter()
            .map(|f| (f.name.clone(), f.source.clone()))
            .collect();
        let report = tool.analyze_sources(&files);
        PluginRun { spec, app, report }
    })
}

/// Table VII: vulnerabilities found in WordPress plugins.
pub fn table7(runs: &[PluginRun]) -> String {
    let mut out =
        String::from("TABLE VII — vulnerabilities found in WordPress plugins (WAPe + weapons)\n\n");
    let classes = ["SQLI", "XSS", "Files", "SCD", "CS", "HI"];
    let mut header: Vec<&str> = vec!["plugin", "version"];
    header.extend(classes);
    header.extend(["total", "FPP", "FP"]);
    let mut t = TextTable::new(&header);
    let mut totals = vec![0usize; classes.len() + 3];
    for r in runs {
        let pseudo_run = WebAppRun {
            spec: AppSpec {
                name: "",
                version: "",
                files: 0,
                loc: 0,
                paper_time_s: 0,
                vuln_files: 0,
                real: r.spec.real,
                fp_both: r.spec.fpp,
                fp_wape_only: 0,
                fp_hard: r.spec.fp,
                fp_escape: 0,
            },
            app: r.app.clone(),
            wape: r.report.clone(),
            wap21: r.report.clone(),
        };
        let (confirmed, unconfirmed) = confirmed_by_class(&pseudo_run, &r.report);
        let fpp = r.report.predicted_false_positives().count();
        let mut cells = vec![r.spec.name.to_string(), r.spec.version.to_string()];
        let mut row_total = 0usize;
        for (i, c) in classes.iter().enumerate() {
            let n = confirmed.get(*c).copied().unwrap_or(0);
            row_total += n;
            totals[i] += n;
            cells.push(if n == 0 { String::new() } else { n.to_string() });
        }
        cells.push(row_total.to_string());
        cells.push(fpp.to_string());
        cells.push(unconfirmed.to_string());
        totals[classes.len()] += row_total;
        totals[classes.len() + 1] += fpp;
        totals[classes.len() + 2] += unconfirmed;
        t.row(&cells);
    }
    let mut cells = vec!["Total".to_string(), String::new()];
    cells.extend(totals.iter().map(|n| n.to_string()));
    t.row(&cells);
    out.push_str(&t.render());
    out.push_str(
        "\npaper totals: SQLI 55 (via -wpsqli), XSS 71, Files 31, SCD 5, CS 5, HI 2 = 169; FPP 3, FP 2\n\
         known (CVE) vulnerabilities: 16; zero-days: 153\n",
    );
    out
}

// ---------------------------------------------------------------- figures

/// Fig. 4: histograms of plugin downloads and active installs, analyzed vs
/// vulnerable.
pub fn fig4() -> String {
    let analyzed: Vec<&PluginSpec> = Vec::new();
    let _ = analyzed;
    let vulnerable = vulnerable_plugins();
    let clean = clean_plugins();
    let all: Vec<&PluginSpec> = vulnerable.iter().chain(clean.iter()).collect();

    let count =
        |specs: &[&PluginSpec], buckets: &[(&str, u64, u64)], field: fn(&PluginSpec) -> u64| {
            buckets
                .iter()
                .map(|(label, lo, hi)| {
                    let n = specs
                        .iter()
                        .filter(|p| field(p) >= *lo && field(p) < *hi)
                        .count();
                    (label.to_string(), n)
                })
                .collect::<Vec<_>>()
        };
    let vuln_refs: Vec<&PluginSpec> = vulnerable.iter().collect();

    let mut out = String::new();
    out.push_str(&bar_chart(
        "FIG 4(a) — plugin downloads (analyzed vs vulnerable)",
        &[
            (
                "analyzed (115)".into(),
                count(&all, &DOWNLOAD_BUCKETS, |p| p.downloads),
            ),
            (
                "vulnerable (23)".into(),
                count(&vuln_refs, &DOWNLOAD_BUCKETS, |p| p.downloads),
            ),
        ],
    ));
    out.push('\n');
    out.push_str(&bar_chart(
        "FIG 4(b) — active installs (analyzed vs vulnerable)",
        &[
            (
                "analyzed (115)".into(),
                count(&all, &INSTALL_BUCKETS, |p| p.active_installs),
            ),
            (
                "vulnerable (23)".into(),
                count(&vuln_refs, &INSTALL_BUCKETS, |p| p.active_installs),
            ),
        ],
    ));
    out
}

/// Fig. 5: vulnerabilities detected by class, web apps vs plugins.
pub fn fig5(web: &[WebAppRun], plugins: &[PluginRun]) -> String {
    let classes = ["SQLI", "XSS", "Files", "SCD", "LDAPI", "SF", "HI", "CS"];
    let tally = |f: &dyn Fn() -> BTreeMap<String, usize>| -> Vec<(String, usize)> {
        let m = f();
        classes
            .iter()
            .map(|c| (c.to_string(), m.get(*c).copied().unwrap_or(0)))
            .collect()
    };
    let web_counts = tally(&|| {
        let mut m = BTreeMap::new();
        for r in web {
            let (confirmed, _) = confirmed_by_class(r, &r.wape);
            for (c, n) in confirmed {
                *m.entry(c).or_insert(0) += n;
            }
        }
        m
    });
    let plugin_counts = tally(&|| {
        let mut m = BTreeMap::new();
        for r in plugins {
            let pseudo = WebAppRun {
                spec: AppSpec {
                    name: "",
                    version: "",
                    files: 0,
                    loc: 0,
                    paper_time_s: 0,
                    vuln_files: 0,
                    real: r.spec.real,
                    fp_both: r.spec.fpp,
                    fp_wape_only: 0,
                    fp_hard: r.spec.fp,
                    fp_escape: 0,
                },
                app: r.app.clone(),
                wape: r.report.clone(),
                wap21: r.report.clone(),
            };
            let (confirmed, _) = confirmed_by_class(&pseudo, &r.report);
            for (c, n) in confirmed {
                *m.entry(c).or_insert(0) += n;
            }
        }
        m
    });
    let mut out = bar_chart(
        "FIG 5 — vulnerabilities by class (web apps vs plugins)",
        &[
            ("web apps".into(), web_counts),
            ("plugins".into(), plugin_counts),
        ],
    );
    out.push_str(
        "\npaper: web apps SQLI 72, XSS 255, Files 55, SCD 4, LDAPI 2, SF 1, HI 19, CS 5;\n\
         plugins SQLI 55, XSS 71, Files 31, SCD 5, HI 2, CS 5\n",
    );
    out
}

// ----------------------------------------------------------- escape study

/// §V-A: the vfront `escape` study — feeding the tool a user sanitization
/// function removes the six corresponding reports.
pub fn escape_study(scale: f64, seed: u64) -> String {
    let spec = vulnerable_webapps()
        .into_iter()
        .find(|a| a.name == "vfront")
        .expect("vfront spec exists");
    let app = generate_webapp(&spec, scale, seed.wrapping_add(16));
    let files: Vec<(String, String)> = app
        .files
        .iter()
        .map(|f| (f.name.clone(), f.source.clone()))
        .collect();

    let tool = WapTool::new(ToolConfig::wape_full());
    let before = tool.analyze_sources(&files);

    let mut informed = WapTool::new(ToolConfig::wape_full());
    informed
        .catalog_mut()
        .add_user_sanitizer("escape", &[VulnClass::Sqli, VulnClass::XssReflected]);
    let after = informed.analyze_sources(&files);

    let delta = before.findings.len() - after.findings.len();
    format!(
        "ESCAPE STUDY (§V-A) — vfront with user sanitizer `escape`\n\n\
         findings before registering escape(): {} ({} reported real)\n\
         findings after registering escape():  {} ({} reported real)\n\
         reports removed: {}   (paper: 6)\n",
        before.findings.len(),
        before.real_vulnerabilities().count(),
        after.findings.len(),
        after.real_vulnerabilities().count(),
        delta,
    )
}

// -------------------------------------------------------------- ablations

/// Ablation: committee (top-3 vote) vs each single classifier, 10-fold CV.
pub fn ablation_committee(seed: u64) -> String {
    let d = Dataset::wape(seed);
    let mut out = String::from("ABLATION — committee vs single classifiers (10-fold CV)\n\n");
    let mut t = TextTable::new(&["configuration", "acc", "tpp", "pfp"]);
    // committee via manual folds
    let folds = 10;
    let mut cm = ConfusionMatrix::default();
    for fold in 0..folds {
        let (mut tx, mut ty, mut test) = (Vec::new(), Vec::new(), Vec::new());
        for i in 0..d.len() {
            if i % folds == fold {
                test.push(i);
            } else {
                tx.push(d.x[i].clone());
                ty.push(d.y[i]);
            }
        }
        let train_set = Dataset {
            x: tx,
            y: ty,
            names: d.names.clone(),
        };
        let committee = FalsePositivePredictor::train_on(
            &ClassifierKind::top3(),
            &train_set,
            seed.wrapping_add(fold as u64),
        );
        for i in test {
            let fv = wap_mining::FeatureVector {
                features: d.x[i].clone(),
                present: vec![],
            };
            cm.record(committee.predict(&fv).is_false_positive, d.y[i]);
        }
    }
    let m = Metrics::from_confusion(&cm);
    let pct = |v: f64| format!("{:.1}%", v * 100.0);
    t.row(&["top-3 committee".into(), pct(m.acc), pct(m.tpp), pct(m.pfp)]);
    for kind in ClassifierKind::top3() {
        let cm = cross_validate(kind, &d.x, &d.y, 10, seed);
        let m = Metrics::from_confusion(&cm);
        t.row(&[kind.name().to_string(), pct(m.acc), pct(m.tpp), pct(m.pfp)]);
    }
    out.push_str(&t.render());
    out
}

/// Ablation: 61 attributes vs the original 16 on the same instances.
pub fn ablation_attributes(seed: u64) -> String {
    let full = Dataset::wape(seed);
    let projected = full.project_to_original_scheme();
    let mut out =
        String::from("ABLATION — attribute granularity: 61 attributes vs original 16\n\n");
    let mut t = TextTable::new(&["classifier", "61-attr acc", "16-attr acc", "delta"]);
    for kind in ClassifierKind::top3() {
        let a = Metrics::from_confusion(&cross_validate(kind, &full.x, &full.y, 10, seed)).acc;
        let b =
            Metrics::from_confusion(&cross_validate(kind, &projected.x, &projected.y, 10, seed))
                .acc;
        t.row(&[
            kind.name().to_string(),
            format!("{:.1}%", a * 100.0),
            format!("{:.1}%", b * 100.0),
            format!("{:+.1}pp", (a - b) * 100.0),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Ablation: interprocedural summaries on/off — detection recall on apps
/// whose flows pass through user functions.
pub fn ablation_interproc(scale: f64, seed: u64) -> String {
    let specs = vulnerable_webapps();
    let on = WapTool::new(ToolConfig::wape_full());
    let mut off_cfg = ToolConfig::wape_full();
    off_cfg.analysis = AnalysisOptions {
        interprocedural: false,
        ..AnalysisOptions::default()
    };
    let off = WapTool::new(off_cfg);
    let mut found_on = 0usize;
    let mut found_off = 0usize;
    for (i, spec) in specs.iter().enumerate().take(6) {
        let app = generate_webapp(spec, scale, seed.wrapping_add(i as u64));
        let files: Vec<(String, String)> = app
            .files
            .iter()
            .map(|f| (f.name.clone(), f.source.clone()))
            .collect();
        found_on += on.analyze_sources(&files).findings.len();
        found_off += off.analyze_sources(&files).findings.len();
    }
    format!(
        "ABLATION — interprocedural analysis\n\n\
         candidates with summaries ON:  {found_on}\n\
         candidates with summaries OFF: {found_off}\n\
         flows through user functions are invisible without summaries\n",
    )
}

/// Ablation: WordPress dynamic symptoms on/off — FPP on the plugins that
/// validate with `absint`/`sanitize_text_field`.
pub fn ablation_dynamic_symptoms(scale: f64, seed: u64) -> String {
    let with_runs = run_plugins(scale, seed);
    let fpp_with: usize = with_runs
        .iter()
        .map(|r| r.report.predicted_false_positives().count())
        .sum();
    // a tool whose wpsqli weapon has its dynamic symptoms stripped
    let mut cfg = ToolConfig::wape();
    let mut wpsqli = wap_catalog::WeaponConfig::wpsqli();
    wpsqli.dynamic_symptoms.clear();
    cfg.weapons = vec![
        wap_catalog::WeaponConfig::nosqli(),
        wap_catalog::WeaponConfig::hei(),
        wpsqli,
    ];
    let stripped = WapTool::new(cfg);
    let fpp_without: usize = vulnerable_plugins()
        .into_iter()
        .enumerate()
        .map(|(i, spec)| {
            let app = generate_plugin(&spec, scale.max(0.5), seed.wrapping_add(i as u64));
            let files: Vec<(String, String)> = app
                .files
                .iter()
                .map(|f| (f.name.clone(), f.source.clone()))
                .collect();
            stripped
                .analyze_sources(&files)
                .predicted_false_positives()
                .count()
        })
        .sum();
    format!(
        "ABLATION — WordPress dynamic symptoms (§III-B.2)\n\n\
         FPP with dynamic symptoms:    {fpp_with} (paper: 3)\n\
         FPP without dynamic symptoms: {fpp_without}\n\
         absint/sanitize_text_field guards are only visible through the mapping\n",
    )
}

/// Extension experiment: second-order (stored XSS) analysis — an
/// optional capability beyond the paper's tables.
pub fn second_order_study() -> String {
    let src = r#"<?php
$comment = $_POST['comment'];
mysql_query("INSERT INTO comments (body) VALUES ('$comment')");
$res = mysql_query("SELECT body FROM comments ORDER BY id DESC");
while ($row = mysql_fetch_assoc($res)) {
    echo "<p>" . $row['body'] . "</p>";
}
"#;
    let mut first_cfg = ToolConfig::wape_full();
    first_cfg.analysis.second_order = false;
    let first = WapTool::new(first_cfg);
    let mut second_cfg = ToolConfig::wape_full();
    second_cfg.analysis.second_order = true;
    let second = WapTool::new(second_cfg);
    let files = vec![("guestbook.php".to_string(), src.to_string())];
    let r1 = first.analyze_sources(&files);
    let r2 = second.analyze_sources(&files);
    let classes = |r: &wap_core::AppReport| {
        r.findings
            .iter()
            .map(|f| f.candidate.class.acronym().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        "EXTENSION — second-order (stored XSS) analysis

         guestbook.php, first-order only:  {} findings [{}]
         guestbook.php, second-order pass: {} findings [{}]
         the INSERT of tainted data marks the database; fetch results then
         carry stored taint, so the echo is reported as stored XSS
",
        r1.findings.len(),
        classes(&r1),
        r2.findings.len(),
        classes(&r2),
    )
}

/// Validation experiment: dynamic confirmation over the whole corpus —
/// automating the paper's "all were confirmed by us manually".
pub fn confirm_sweep(scale: f64, seed: u64) -> String {
    let tool = WapTool::new(ToolConfig::wape_full());
    let mut real_total = 0usize;
    let mut real_exploitable = 0usize;
    let mut fpp_total = 0usize;
    let mut fpp_exploitable = 0usize;
    let mut uninjectable = 0usize;
    for (i, spec) in vulnerable_webapps().iter().enumerate() {
        let app = generate_webapp(spec, scale, seed.wrapping_add(i as u64));
        let files: Vec<(String, String)> = app
            .files
            .iter()
            .map(|f| (f.name.clone(), f.source.clone()))
            .collect();
        let report = tool.analyze_sources(&files);
        let programs: Vec<(String, wap_php::Program)> = app
            .files
            .iter()
            .map(|f| {
                (
                    f.name.clone(),
                    wap_php::parse(&f.source).expect("corpus parses"),
                )
            })
            .collect();
        for finding in &report.findings {
            // confirm against the file the finding lives in (self-contained
            // corpus flows), so sink-name collisions across files are moot
            let Some(file) = finding.candidate.file.as_deref() else {
                continue;
            };
            let Some((_, program)) = programs.iter().find(|(n, _)| n == file) else {
                continue;
            };
            let conf = wap_interp::confirm(tool.catalog(), &[program], &finding.candidate);
            if conf.detail.contains("no injectable") {
                uninjectable += 1;
                continue;
            }
            if finding.is_real() {
                real_total += 1;
                if conf.exploitable {
                    real_exploitable += 1;
                }
            } else {
                fpp_total += 1;
                if conf.exploitable {
                    fpp_exploitable += 1;
                }
            }
        }
    }
    format!(
        "CONFIRMATION SWEEP — dynamic exploit confirmation over the corpus

         findings reported REAL:          {real_total:>4}, dynamically exploitable: {real_exploitable:>4} ({:.1}%)
         findings predicted FALSE POSITIVE: {fpp_total:>2}, dynamically exploitable: {fpp_exploitable:>4} (should be 0)
         uninjectable entry points (skipped): {uninjectable}

         the REAL column is not 100%: the 18 hard FPs of §V-A are *reported*
         real but guarded by non-symptom sanitizers — dynamic confirmation
         exposes exactly them
",
        100.0 * real_exploitable as f64 / real_total.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.02;

    #[test]
    fn table1_counts() {
        let t = table1();
        assert!(t.contains("61"));
        assert!(t.contains("is_scalar"));
        assert!(t.contains("Aggregated function"));
    }

    #[test]
    fn table2_and_3_render() {
        let t = table2(DEFAULT_SEED);
        assert!(t.contains("SVM"));
        assert!(t.contains("K-NN"));
        let t3 = table3(DEFAULT_SEED);
        assert!(t3.contains("Random Forest"));
        assert!(t3.contains("121"));
    }

    #[test]
    fn table4_contains_paper_sinks() {
        let t = table4();
        for sink in [
            "setcookie",
            "ldap_search",
            "xpath_eval",
            "file_put_contents",
        ] {
            assert!(t.contains(sink), "missing {sink}:\n{t}");
        }
    }

    #[test]
    fn webapp_tables_hit_paper_totals() {
        let runs = run_webapps(SCALE, DEFAULT_SEED);
        let t6 = table6(&runs);
        // the measured Total row must reproduce the key columns
        let total_line = t6
            .lines()
            .find(|l| l.starts_with("Total"))
            .expect("total row")
            .to_string();
        assert!(total_line.contains("413"), "total vulns:\n{t6}");
        assert!(total_line.contains("62"), "WAP FPP:\n{t6}");
        assert!(total_line.contains("104"), "WAPe FPP:\n{t6}");
        assert!(total_line.contains("18"), "WAPe FP:\n{t6}");
        let t5 = table5(&runs, SCALE, DEFAULT_SEED);
        assert!(t5.contains("Total"));
        assert!(t5.contains("0 findings (expected 0)"));
    }

    #[test]
    fn plugin_table_hits_paper_totals() {
        let runs = run_plugins(SCALE, DEFAULT_SEED);
        let t7 = table7(&runs);
        let total_line = t7
            .lines()
            .find(|l| l.starts_with("Total"))
            .expect("total row")
            .to_string();
        assert!(total_line.contains("169"), "plugin total:\n{t7}");
        assert!(total_line.contains("55"), "SQLI via weapon:\n{t7}");
    }

    #[test]
    fn figures_render() {
        let f4 = fig4();
        assert!(f4.contains("FIG 4(a)"));
        assert!(f4.contains("> 500K"));
        let web = run_webapps(SCALE, DEFAULT_SEED);
        let plugins = run_plugins(SCALE, DEFAULT_SEED);
        let f5 = fig5(&web, &plugins);
        assert!(f5.contains("SQLI"));
        assert!(f5.contains("plugins"));
    }

    #[test]
    fn escape_study_removes_six() {
        let s = escape_study(SCALE, DEFAULT_SEED);
        assert!(s.contains("reports removed: 6"), "{s}");
    }

    #[test]
    fn confirm_sweep_validates_predictions() {
        let s = confirm_sweep(SCALE, DEFAULT_SEED);
        // exactly the 413 paper vulnerabilities are dynamically
        // exploitable; the 18 hard FPs reported as real are not
        assert!(s.contains("exploitable:  413"), "{s}");
        // a handful of predicted FPs are exploitable — the paper's pfp
        // (misclassified real vulnerabilities); must stay single-digit
        let line = s
            .lines()
            .find(|l| l.contains("FALSE POSITIVE"))
            .expect("fp line");
        let n: usize = line
            .split("dynamically exploitable:")
            .nth(1)
            .and_then(|r| r.split('(').next())
            .and_then(|v| v.trim().parse().ok())
            .expect("parse count");
        assert!(n <= 9, "too many exploitable predicted FPs: {n}\n{s}");
    }

    #[test]
    fn second_order_study_shows_the_delta() {
        let s = second_order_study();
        assert!(s.contains("first-order only:  1 findings [SQLI]"), "{s}");
        assert!(s.contains("XSS"), "{s}");
    }

    #[test]
    fn ablations_render() {
        assert!(ablation_committee(DEFAULT_SEED).contains("committee"));
        assert!(ablation_attributes(DEFAULT_SEED).contains("61-attr"));
        let a = ablation_interproc(SCALE, DEFAULT_SEED);
        assert!(a.contains("summaries ON"));
    }
}
