//! Parsing throughput: the front-end cost that dominates WAP's per-file
//! time (Table V's time column is roughly linear in LoC).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wap_corpus::generate_webapp;
use wap_corpus::specs::vulnerable_webapps;
use wap_php::parse;

fn bench_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("parse");
    for (name, scale) in [("small-app", 0.02), ("medium-app", 0.05)] {
        let spec = &vulnerable_webapps()[2]; // Clip Bucket
        let app = generate_webapp(spec, scale, 42);
        let bytes: usize = app.files.iter().map(|f| f.source.len()).sum();
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| {
                let mut stmts = 0usize;
                for f in &app.files {
                    stmts += parse(&f.source).expect("corpus parses").stmts.len();
                }
                stmts
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parsing);
criterion_main!(benches);
