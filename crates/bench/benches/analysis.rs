//! End-to-end analysis time per application — the experiment behind the
//! paper's "123 s total, 7.2 s average per application" claim (Table V):
//! the shape to reproduce is analysis time roughly linear in LoC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wap_core::{ToolConfig, WapTool};
use wap_corpus::generate_webapp;
use wap_corpus::specs::vulnerable_webapps;

fn bench_analysis(c: &mut Criterion) {
    let tool = WapTool::new(ToolConfig::wape_full());
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    // three applications of increasing size
    for (idx, label) in [(1usize, "anywhere-board-games"), (7, "minutes"), (14, "sae")] {
        let spec = &vulnerable_webapps()[idx];
        let app = generate_webapp(spec, 0.05, 42);
        let files: Vec<(String, String)> =
            app.files.iter().map(|f| (f.name.clone(), f.source.clone())).collect();
        group.throughput(Throughput::Elements(app.loc as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &files, |b, files| {
            b.iter(|| tool.analyze_sources(files).findings.len())
        });
    }
    group.finish();
}

fn bench_taint_only(c: &mut Criterion) {
    use wap_catalog::Catalog;
    use wap_taint::{analyze, AnalysisOptions, SourceFile};
    let spec = &vulnerable_webapps()[14]; // SAE
    let app = generate_webapp(spec, 0.05, 42);
    let files: Vec<SourceFile> = app
        .files
        .iter()
        .map(|f| SourceFile {
            name: f.name.clone(),
            program: wap_php::parse(&f.source).expect("parses"),
        })
        .collect();
    let catalog = Catalog::wape_full();
    let opts = AnalysisOptions::default();
    c.bench_function("taint/sae", |b| {
        b.iter(|| analyze(&catalog, &opts, &files).len())
    });
}

criterion_group!(benches, bench_analysis, bench_taint_only);
criterion_main!(benches);
