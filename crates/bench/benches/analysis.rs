//! End-to-end analysis time per application — the experiment behind the
//! paper's "123 s total, 7.2 s average per application" claim (Table V):
//! the shape to reproduce is analysis time roughly linear in LoC, and the
//! work-stealing runtime's speedup over the serial walk.
//!
//! Throughput is reported in `Elements` = lines of code, so Criterion
//! prints LoC/s directly and the serial-vs-parallel comparison reads as
//! a bandwidth number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wap_core::{Runtime, ToolConfig, WapTool};
use wap_corpus::generate_webapp;
use wap_corpus::specs::vulnerable_webapps;

/// The job counts every group sweeps: the serial baseline and one worker
/// per available core.
fn job_counts() -> Vec<usize> {
    let all = Runtime::new(None).jobs();
    if all > 1 {
        vec![1, all]
    } else {
        vec![1]
    }
}

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("analyze");
    group.sample_size(10);
    // three applications of increasing size
    for (idx, label) in [
        (1usize, "anywhere-board-games"),
        (7, "minutes"),
        (14, "sae"),
    ] {
        let spec = &vulnerable_webapps()[idx];
        let app = generate_webapp(spec, 0.05, 42);
        let files: Vec<(String, String)> = app
            .files
            .iter()
            .map(|f| (f.name.clone(), f.source.clone()))
            .collect();
        group.throughput(Throughput::Elements(app.loc as u64));
        for jobs in job_counts() {
            let tool = WapTool::new(ToolConfig::builder().jobs(jobs).build());
            group.bench_with_input(
                BenchmarkId::new(label, format!("jobs={jobs}")),
                &files,
                |b, files| b.iter(|| tool.analyze_sources(files).findings.len()),
            );
        }
    }
    group.finish();
}

fn bench_taint_only(c: &mut Criterion) {
    use wap_catalog::Catalog;
    use wap_taint::{analyze_with, AnalysisOptions, SourceFile};
    let spec = &vulnerable_webapps()[14]; // SAE
    let app = generate_webapp(spec, 0.05, 42);
    let files: Vec<SourceFile> = app
        .files
        .iter()
        .map(|f| SourceFile {
            name: f.name.clone(),
            program: wap_php::parse(&f.source).expect("parses"),
        })
        .collect();
    let catalog = Catalog::wape_full();
    let opts = AnalysisOptions::default();
    let mut group = c.benchmark_group("taint");
    group.throughput(Throughput::Elements(app.loc as u64));
    for jobs in job_counts() {
        let runtime = Runtime::new(Some(jobs));
        group.bench_with_input(
            BenchmarkId::new("sae", format!("jobs={jobs}")),
            &files,
            |b, files| b.iter(|| analyze_with(&catalog, &opts, files, &runtime).len()),
        );
    }
    group.finish();
}

/// Serial vs parallel over the whole 17-app corpus — the headline speedup
/// number quoted in EXPERIMENTS.md next to the paper's 123 s total.
fn bench_corpus_sweep(c: &mut Criterion) {
    let apps: Vec<Vec<(String, String)>> = vulnerable_webapps()
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let app = generate_webapp(spec, 0.02, 42u64.wrapping_add(i as u64));
            app.files
                .iter()
                .map(|f| (f.name.clone(), f.source.clone()))
                .collect()
        })
        .collect();
    let total_loc: usize = apps
        .iter()
        .flat_map(|fs| fs.iter().map(|(_, s)| s.lines().count()))
        .sum();
    let mut group = c.benchmark_group("corpus-sweep");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total_loc as u64));
    for jobs in job_counts() {
        // in-app analysis stays serial; the corpus level fans out
        let tool = WapTool::new(ToolConfig::builder().jobs(1).build());
        let runtime = Runtime::new(Some(jobs));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("jobs={jobs}")),
            &apps,
            |b, apps| {
                b.iter(|| {
                    runtime
                        .map(apps.clone(), |_, files| {
                            tool.analyze_sources(&files).findings.len()
                        })
                        .iter()
                        .sum::<usize>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_analysis,
    bench_taint_only,
    bench_corpus_sweep
);
criterion_main!(benches);
