//! Cold vs warm analysis through the persistent incremental cache.
//!
//! The contract under test: a fully warm run re-parses and re-analyzes
//! nothing, so its cost is dominated by hashing and cache lookups. The
//! acceptance bar for the cache subsystem is warm throughput at least
//! 3x cold on the same corpus (in practice it is far higher).
//!
//! Throughput is `Elements` = lines of code, so Criterion prints LoC/s
//! and the cold/warm comparison reads as a bandwidth ratio.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wap_core::{ToolConfig, WapTool};
use wap_corpus::generate_webapp;
use wap_corpus::specs::vulnerable_webapps;

/// One mid-sized application plus a multi-app slice of the corpus, so the
/// ratio is visible both per app and at fleet scale.
fn corpora() -> Vec<(&'static str, Vec<(String, String)>)> {
    let specs = vulnerable_webapps();
    let single = {
        let app = generate_webapp(&specs[7], 0.05, 42);
        app.files
            .iter()
            .map(|f| (f.name.clone(), f.source.clone()))
            .collect::<Vec<_>>()
    };
    let mut fleet = Vec::new();
    for (i, spec) in specs.iter().take(5).enumerate() {
        let app = generate_webapp(spec, 0.05, 1042u64.wrapping_add(i as u64));
        for f in &app.files {
            fleet.push((format!("app{i}/{}", f.name), f.source.clone()));
        }
    }
    vec![("minutes", single), ("fleet5", fleet)]
}

fn loc(files: &[(String, String)]) -> u64 {
    files.iter().map(|(_, s)| s.lines().count() as u64).sum()
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.sample_size(10);
    for (label, files) in corpora() {
        group.throughput(Throughput::Elements(loc(&files)));

        // cold: a fresh uncached tool every iteration
        group.bench_with_input(BenchmarkId::new("cold", label), &files, |b, files| {
            b.iter(|| {
                WapTool::new(ToolConfig::wape_full())
                    .analyze_sources(files)
                    .findings
                    .len()
            })
        });

        // warm: one tool whose in-memory cache was populated up front;
        // every timed run is a full hit
        let mut tool = WapTool::new(ToolConfig::wape_full());
        tool.enable_memory_cache();
        let primed = tool.analyze_sources(&files);
        group.bench_with_input(BenchmarkId::new("warm", label), &files, |b, files| {
            b.iter(|| {
                let report = tool.analyze_sources(files);
                assert_eq!(report.cache.misses, 0, "warm run missed");
                report.findings.len()
            })
        });
        assert!(primed.cache.stored > 0);
    }
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
