//! Classifier training and prediction cost (the Table II machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wap_mining::classifiers::ClassifierKind;
use wap_mining::metrics::cross_validate;
use wap_mining::{Dataset, FalsePositivePredictor, PredictorGeneration};

fn bench_training(c: &mut Criterion) {
    let d = Dataset::wape(42);
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    for kind in ClassifierKind::top3() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &d, |b, d| {
            b.iter(|| {
                let mut clf = kind.build(42);
                clf.train(&d.x, &d.y);
                clf.predict(&d.x[0])
            })
        });
    }
    group.finish();
}

fn bench_cross_validation(c: &mut Criterion) {
    let d = Dataset::wape(42);
    let mut group = c.benchmark_group("cv10");
    group.sample_size(10);
    for kind in [ClassifierKind::Svm, ClassifierKind::RandomForest] {
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &d, |b, d| {
            b.iter(|| cross_validate(kind, &d.x, &d.y, 10, 42).total())
        });
    }
    group.finish();
}

fn bench_committee_prediction(c: &mut Criterion) {
    let p = FalsePositivePredictor::train(PredictorGeneration::Wape, 42);
    let d = Dataset::wape(43);
    c.bench_function("predict/committee-256", |b| {
        b.iter(|| {
            d.x.iter()
                .map(|x| {
                    let fv = wap_mining::FeatureVector {
                        features: x.clone(),
                        present: vec![],
                    };
                    p.predict(&fv).is_false_positive as usize
                })
                .sum::<usize>()
        })
    });
}

criterion_group!(
    benches,
    bench_training,
    bench_cross_validation,
    bench_committee_prediction
);
criterion_main!(benches);
