//! Weapon generation and the cost of fixing a vulnerable file.

use criterion::{criterion_group, criterion_main, Criterion};
use wap_catalog::{Catalog, WeaponConfig};
use wap_core::{ToolConfig, WapTool, Weapon};
use wap_fixer::Corrector;

fn bench_weapon_generation(c: &mut Criterion) {
    c.bench_function("weapon/generate+link", |b| {
        b.iter(|| {
            let mut catalog = Catalog::wape();
            let mut corrector = Corrector::new();
            for cfg in [
                WeaponConfig::nosqli(),
                WeaponConfig::hei(),
                WeaponConfig::wpsqli(),
            ] {
                let w = Weapon::generate(cfg).expect("valid");
                w.link(&mut catalog, &mut corrector);
            }
            catalog.sinks().count()
        })
    });
    c.bench_function("weapon/json-roundtrip", |b| {
        let w = Weapon::generate(WeaponConfig::wpsqli()).expect("valid");
        b.iter(|| Weapon::from_json(&w.to_json()).expect("round trips").flag())
    });
}

fn bench_confirmation(c: &mut Criterion) {
    use wap_catalog::Catalog;
    use wap_taint::analyze_program;
    let catalog = Catalog::wape();
    let src = r#"<?php
$id = $_GET['id'];
$q = "SELECT * FROM users WHERE id = '" . $id . "'";
mysql_query($q);
"#;
    let program = wap_php::parse(src).expect("parses");
    let candidate = analyze_program(&catalog, &program).remove(0);
    c.bench_function("confirm/sqli-exploit", |b| {
        b.iter(|| wap_interp::confirm(&catalog, &[&program], &candidate).exploitable)
    });
}

fn bench_fixing(c: &mut Criterion) {
    let tool = WapTool::new(ToolConfig::wape());
    let src = r#"<?php
$a = $_GET['a'];
$b = $_POST['b'];
mysql_query("SELECT * FROM t WHERE a = '$a'");
echo $b;
system("run " . $_GET['cmd']);
"#;
    let files = vec![("f.php".to_string(), src.to_string())];
    let report = tool.analyze_sources(&files);
    c.bench_function("fix/three-findings", |b| {
        b.iter(|| tool.fix_file("f.php", src, &report).applied.len())
    });
}

criterion_group!(
    benches,
    bench_weapon_generation,
    bench_fixing,
    bench_confirmation
);
criterion_main!(benches);
