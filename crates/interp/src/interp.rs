//! The mini PHP interpreter.
//!
//! Executes the PHP subset concretely, with two twists that make it an
//! *exploit-confirmation* engine rather than a web runtime:
//!
//! 1. superglobals are populated from a mock [`Request`] (the attack), and
//! 2. sensitive sinks (from the [`Catalog`], including linked weapons) are
//!    **logged instead of executed**: each call to `mysql_query`, `echo`,
//!    `header`, `$wpdb->query`, ... records a [`SinkEvent`] with the
//!    concrete argument strings that would have reached the database /
//!    browser / shell.
//!
//! Sanitization functions are implemented with real semantics, so running
//! the corrected source shows the payload neutralized.

use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use wap_catalog::{Catalog, SinkKind};
use wap_php::ast::*;

/// A mock HTTP request: superglobal name (without `$`) → key → value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Request {
    params: BTreeMap<String, BTreeMap<String, String>>,
}

impl Request {
    /// An empty request.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `$_<global>[key] = value`, e.g. `set("_GET", "id", "1 OR 1=1")`.
    pub fn set(&mut self, global: &str, key: &str, value: &str) -> &mut Self {
        self.params
            .entry(global.to_string())
            .or_default()
            .insert(key.to_string(), value.to_string());
        self
    }

    /// Convenience: GET parameter.
    pub fn get(mut self, key: &str, value: &str) -> Self {
        self.set("_GET", key, value);
        self
    }

    /// Convenience: POST parameter.
    pub fn post(mut self, key: &str, value: &str) -> Self {
        self.set("_POST", key, value);
        self
    }

    fn lookup(&self, global: &str) -> Value {
        let map = self.params.get(global).cloned().unwrap_or_default();
        Value::Array(map.into_iter().map(|(k, v)| (k, Value::Str(v))).collect())
    }
}

/// One sensitive-sink invocation observed during execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkEvent {
    /// Sink name (`mysql_query`, `echo`, `include`, `$wpdb->query`, ...).
    pub sink: String,
    /// 1-based source line.
    pub line: u32,
    /// Concrete argument strings that reached the sink.
    pub args: Vec<String>,
}

/// The result of executing a program against a request.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    /// Everything echoed/printed.
    pub output: String,
    /// Sink invocations, in execution order.
    pub sinks: Vec<SinkEvent>,
    /// Whether the script called `exit`/`die`.
    pub exited: bool,
    /// Steps consumed (budget diagnostics).
    pub steps: usize,
}

impl ExecOutcome {
    /// Sink events whose name contains `needle` (e.g. `"query"`).
    pub fn sinks_named<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a SinkEvent> + 'a {
        self.sinks.iter().filter(move |s| s.sink.contains(needle))
    }
}

const STEP_BUDGET: usize = 200_000;
const MAX_DEPTH: usize = 48;

enum Flow {
    Normal,
    Break(i64),
    Continue(i64),
    Return(Value),
    Exit,
}

/// Executes `files` (parsed programs of one application) against a mock
/// request, logging sink invocations instead of performing them.
pub fn execute(catalog: &Catalog, request: &Request, files: &[&Program]) -> ExecOutcome {
    let mut functions: HashMap<String, Function> = HashMap::new();
    for p in files {
        for f in p.functions() {
            functions.insert(f.name.lower().as_str().to_string(), f.clone());
        }
    }
    let mut interp = Interp {
        catalog,
        request,
        functions,
        output: String::new(),
        sinks: Vec::new(),
        steps: 0,
        depth: 0,
        exited: false,
    };
    let mut env: BTreeMap<String, Value> = BTreeMap::new();
    for p in files {
        if interp.exited {
            break;
        }
        interp.exec_block(&mut env, &p.stmts);
    }
    ExecOutcome {
        output: interp.output,
        sinks: interp.sinks,
        exited: interp.exited,
        steps: interp.steps,
    }
}

struct Interp<'a> {
    catalog: &'a Catalog,
    request: &'a Request,
    functions: HashMap<String, Function>,
    output: String,
    sinks: Vec<SinkEvent>,
    steps: usize,
    depth: usize,
    exited: bool,
}

type Env = BTreeMap<String, Value>;

impl Interp<'_> {
    fn tick(&mut self) -> bool {
        self.steps += 1;
        self.steps < STEP_BUDGET && !self.exited
    }

    fn exec_block(&mut self, env: &mut Env, stmts: &[Stmt]) -> Flow {
        for s in stmts {
            match self.exec_stmt(env, s) {
                Flow::Normal => {}
                other => return other,
            }
        }
        Flow::Normal
    }

    fn exec_stmt(&mut self, env: &mut Env, stmt: &Stmt) -> Flow {
        if !self.tick() {
            return Flow::Exit;
        }
        match &stmt.kind {
            StmtKind::Expr(e) => {
                self.eval(env, e);
                if self.exited {
                    return Flow::Exit;
                }
                Flow::Normal
            }
            StmtKind::Echo(items) => {
                let mut args = Vec::new();
                for e in items {
                    let v = self.eval(env, e).to_php_string();
                    self.output.push_str(&v);
                    args.push(v);
                }
                self.sinks.push(SinkEvent {
                    sink: "echo".into(),
                    line: stmt.span.line(),
                    args,
                });
                Flow::Normal
            }
            StmtKind::InlineHtml(h) => {
                self.output.push_str(h);
                Flow::Normal
            }
            StmtKind::If {
                cond,
                then_branch,
                elseifs,
                else_branch,
            } => {
                if self.eval(env, cond).truthy() {
                    return self.exec_block(env, then_branch);
                }
                for (c, b) in elseifs {
                    if self.eval(env, c).truthy() {
                        return self.exec_block(env, b);
                    }
                }
                if let Some(b) = else_branch {
                    return self.exec_block(env, b);
                }
                Flow::Normal
            }
            StmtKind::While { cond, body } => {
                while self.eval(env, cond).truthy() {
                    if !self.tick() {
                        break;
                    }
                    match self.exec_block(env, body) {
                        Flow::Break(n) if n <= 1 => break,
                        Flow::Break(n) => return Flow::Break(n - 1),
                        Flow::Continue(n) if n <= 1 => continue,
                        Flow::Continue(n) => return Flow::Continue(n - 1),
                        Flow::Normal => {}
                        other => return other,
                    }
                }
                Flow::Normal
            }
            StmtKind::DoWhile { body, cond } => loop {
                if !self.tick() {
                    return Flow::Normal;
                }
                match self.exec_block(env, body) {
                    Flow::Break(n) if n <= 1 => return Flow::Normal,
                    Flow::Break(n) => return Flow::Break(n - 1),
                    Flow::Continue(n) if n > 1 => return Flow::Continue(n - 1),
                    Flow::Normal | Flow::Continue(_) => {}
                    other => return other,
                }
                if !self.eval(env, cond).truthy() {
                    return Flow::Normal;
                }
            },
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                for e in init {
                    self.eval(env, e);
                }
                loop {
                    if !self.tick() {
                        break;
                    }
                    let go = match cond.last() {
                        Some(c) => self.eval(env, c).truthy(),
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    match self.exec_block(env, body) {
                        Flow::Break(n) if n <= 1 => break,
                        Flow::Break(n) => return Flow::Break(n - 1),
                        Flow::Continue(n) if n > 1 => return Flow::Continue(n - 1),
                        Flow::Normal | Flow::Continue(_) => {}
                        other => return other,
                    }
                    for e in step {
                        self.eval(env, e);
                    }
                }
                Flow::Normal
            }
            StmtKind::Foreach {
                array,
                key,
                value,
                body,
                ..
            } => {
                let arr = self.eval(env, array);
                if let Value::Array(map) = arr {
                    for (k, v) in map {
                        if !self.tick() {
                            break;
                        }
                        if let Some(kv) = key {
                            self.assign(env, kv, Value::Str(k.clone()));
                        }
                        self.assign(env, value, v);
                        match self.exec_block(env, body) {
                            Flow::Break(n) if n <= 1 => break,
                            Flow::Break(n) => return Flow::Break(n - 1),
                            Flow::Continue(n) if n > 1 => return Flow::Continue(n - 1),
                            Flow::Normal | Flow::Continue(_) => {}
                            other => return other,
                        }
                    }
                }
                Flow::Normal
            }
            StmtKind::Switch { subject, cases } => {
                let v = self.eval(env, subject);
                let mut matched = false;
                for c in cases {
                    if !matched {
                        match &c.test {
                            Some(t) => {
                                let tv = self.eval(env, t);
                                if v.loose_eq(&tv) {
                                    matched = true;
                                }
                            }
                            None => matched = true,
                        }
                    }
                    if matched {
                        match self.exec_block(env, &c.body) {
                            Flow::Break(n) if n <= 1 => return Flow::Normal,
                            Flow::Break(n) => return Flow::Break(n - 1),
                            Flow::Normal => {}
                            other => return other,
                        }
                    }
                }
                Flow::Normal
            }
            StmtKind::Break(n) => Flow::Break(n.unwrap_or(1)),
            StmtKind::Continue(n) => Flow::Continue(n.unwrap_or(1)),
            StmtKind::Return(e) => {
                let v = e.as_ref().map(|e| self.eval(env, e)).unwrap_or(Value::Null);
                Flow::Return(v)
            }
            StmtKind::Global(names) => {
                for n in names {
                    env.entry(n.to_string()).or_insert(Value::Null);
                }
                Flow::Normal
            }
            StmtKind::StaticVars(vars) => {
                for (n, d) in vars {
                    let v = d.as_ref().map(|e| self.eval(env, e)).unwrap_or(Value::Null);
                    env.entry(n.to_string()).or_insert(v);
                }
                Flow::Normal
            }
            StmtKind::Function(_) | StmtKind::Class(_) | StmtKind::Nop => Flow::Normal,
            StmtKind::Include { path, .. } => {
                let p = self.eval(env, path).to_php_string();
                self.sinks.push(SinkEvent {
                    sink: "include".into(),
                    line: stmt.span.line(),
                    args: vec![p],
                });
                Flow::Normal
            }
            StmtKind::Unset(targets) => {
                for t in targets {
                    if let Some(root) = t.root_var() {
                        env.remove(root);
                    }
                }
                Flow::Normal
            }
            StmtKind::Block(b) => self.exec_block(env, b),
            StmtKind::Try {
                body,
                catches: _,
                finally,
            } => {
                let f = self.exec_block(env, body);
                if let Some(fin) = finally {
                    self.exec_block(env, fin);
                }
                f
            }
            StmtKind::Throw(e) => {
                self.eval(env, e);
                Flow::Exit
            }
        }
    }

    fn eval(&mut self, env: &mut Env, expr: &Expr) -> Value {
        if !self.tick() {
            return Value::Null;
        }
        match &expr.kind {
            ExprKind::Var(n) => {
                if self.is_superglobal(n.as_str()) {
                    self.request.lookup(n.as_str())
                } else {
                    env.get(n.as_str()).cloned().unwrap_or(Value::Null)
                }
            }
            ExprKind::Lit(l) => match l {
                Lit::Int(i) => Value::Int(*i),
                Lit::Float(f) => Value::Float(*f),
                Lit::Str(s) => Value::Str(s.clone()),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Null => Value::Null,
            },
            ExprKind::Name(n) => match n.lower().as_str() {
                "php_eol" => Value::Str("\n".into()),
                "file_append" => Value::Int(8),
                _ => Value::Str(n.to_string()),
            },
            ExprKind::Interp(parts) => {
                let mut s = String::new();
                for p in parts {
                    s.push_str(&self.eval(env, p).to_php_string());
                }
                Value::Str(s)
            }
            ExprKind::ShellExec(parts) => {
                let mut s = String::new();
                for p in parts {
                    s.push_str(&self.eval(env, p).to_php_string());
                }
                self.sinks.push(SinkEvent {
                    sink: "`backtick`".into(),
                    line: expr.span.line(),
                    args: vec![s],
                });
                Value::Str(String::new())
            }
            ExprKind::ArrayDim { base, index } => {
                let b = self.eval(env, base);
                let key = index
                    .as_deref()
                    .map(|i| self.eval(env, i).to_php_string())
                    .unwrap_or_default();
                match b {
                    Value::Array(map) => map.get(&key).cloned().unwrap_or(Value::Null),
                    Value::Str(s) => {
                        let idx: usize = key.parse().unwrap_or(0);
                        s.chars()
                            .nth(idx)
                            .map(|c| Value::Str(c.to_string()))
                            .unwrap_or(Value::Null)
                    }
                    _ => Value::Null,
                }
            }
            ExprKind::Prop { base, name } => {
                if let Some(root) = base.root_var() {
                    env.get(&format!("{root}->{name}"))
                        .cloned()
                        .unwrap_or_else(|| {
                            // $wpdb->prefix and friends get stable placeholders
                            Value::Str(format!("{{{name}}}"))
                        })
                } else {
                    Value::Null
                }
            }
            ExprKind::StaticProp { class, name } => env
                .get(&format!("{class}::${name}"))
                .cloned()
                .unwrap_or(Value::Null),
            ExprKind::ClassConst { name, .. } => Value::Str(name.to_string()),
            ExprKind::Call { callee, args } => {
                let name = match &callee.kind {
                    ExprKind::Name(n) => *n,
                    other => {
                        let _ = other;
                        return Value::Null;
                    }
                };
                let argv: Vec<Value> = args.iter().map(|a| self.eval(env, a)).collect();
                self.call_function(env, name.as_str(), argv, expr.span.line())
            }
            ExprKind::MethodCall {
                target,
                method,
                args,
            } => {
                let recv = target.root_var().map(str::to_string);
                let argv: Vec<Value> = args.iter().map(|a| self.eval(env, a)).collect();
                self.call_method(env, recv.as_deref(), method.as_str(), argv, expr.span.line())
            }
            ExprKind::StaticCall { method, args, .. } => {
                let argv: Vec<Value> = args.iter().map(|a| self.eval(env, a)).collect();
                self.call_function(env, method.as_str(), argv, expr.span.line())
            }
            ExprKind::New { args, .. } => {
                for a in args {
                    self.eval(env, a);
                }
                Value::Array(BTreeMap::new())
            }
            ExprKind::Assign {
                target, op, value, ..
            } => {
                let v = self.eval(env, value);
                let new = match op {
                    AssignOp::Assign => v,
                    AssignOp::Concat => {
                        let old = self.read(env, target);
                        Value::Str(format!("{}{}", old.to_php_string(), v.to_php_string()))
                    }
                    AssignOp::Add => {
                        Value::Int(self.read(env, target).to_php_int() + v.to_php_int())
                    }
                    AssignOp::Sub => {
                        Value::Int(self.read(env, target).to_php_int() - v.to_php_int())
                    }
                    AssignOp::Mul => {
                        Value::Int(self.read(env, target).to_php_int() * v.to_php_int())
                    }
                    AssignOp::Div => {
                        let d = v.to_php_int();
                        Value::Int(if d == 0 {
                            0
                        } else {
                            self.read(env, target).to_php_int() / d
                        })
                    }
                    AssignOp::Mod => {
                        let d = v.to_php_int();
                        Value::Int(if d == 0 {
                            0
                        } else {
                            self.read(env, target).to_php_int() % d
                        })
                    }
                    AssignOp::Coalesce => {
                        let old = self.read(env, target);
                        if matches!(old, Value::Null) {
                            v
                        } else {
                            old
                        }
                    }
                };
                self.assign(env, target, new.clone());
                new
            }
            ExprKind::Binary { op, lhs, rhs } => self.eval_binary(env, *op, lhs, rhs),
            ExprKind::Unary { op, expr } => {
                let v = self.eval(env, expr);
                match op {
                    UnOp::Not => Value::Bool(!v.truthy()),
                    UnOp::Neg => Value::Int(-v.to_php_int()),
                    UnOp::Pos => Value::Int(v.to_php_int()),
                    UnOp::BitNot => Value::Int(!v.to_php_int()),
                }
            }
            ExprKind::IncDec { pre, inc, target } => {
                let old = self.read(env, target).to_php_int();
                let new = if *inc { old + 1 } else { old - 1 };
                self.assign(env, target, Value::Int(new));
                Value::Int(if *pre { new } else { old })
            }
            ExprKind::Ternary {
                cond,
                then,
                otherwise,
            } => {
                let c = self.eval(env, cond);
                if c.truthy() {
                    match then {
                        Some(t) => self.eval(env, t),
                        None => c,
                    }
                } else {
                    self.eval(env, otherwise)
                }
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(env, expr);
                match ty {
                    CastType::Int => Value::Int(v.to_php_int()),
                    CastType::Float => Value::Float(v.to_php_int() as f64),
                    CastType::Str => Value::Str(v.to_php_string()),
                    CastType::Bool => Value::Bool(v.truthy()),
                    CastType::Array => match v {
                        a @ Value::Array(_) => a,
                        other => {
                            let mut m = BTreeMap::new();
                            m.insert("0".to_string(), other);
                            Value::Array(m)
                        }
                    },
                    CastType::Object | CastType::Unset => Value::Null,
                }
            }
            ExprKind::Isset(es) => {
                let all = es.iter().all(|e| {
                    let v = self.eval(env, e);
                    !matches!(v, Value::Null)
                });
                Value::Bool(all)
            }
            ExprKind::Empty(e) => {
                let v = self.eval(env, e);
                Value::Bool(!v.truthy())
            }
            ExprKind::Array(items) => {
                let mut map = BTreeMap::new();
                let mut next = 0i64;
                for it in items {
                    let key = match &it.key {
                        Some(k) => self.eval(env, k).to_php_string(),
                        None => {
                            let k = next.to_string();
                            next += 1;
                            k
                        }
                    };
                    let v = self.eval(env, &it.value);
                    map.insert(key, v);
                }
                Value::Array(map)
            }
            ExprKind::List(_) => Value::Null,
            ExprKind::Closure { .. } => Value::Null,
            ExprKind::ErrorSuppress(e) => self.eval(env, e),
            ExprKind::Exit(arg) => {
                if let Some(a) = arg {
                    let v = self.eval(env, a).to_php_string();
                    self.output.push_str(&v);
                }
                self.exited = true;
                Value::Null
            }
            ExprKind::Print(e) => {
                let v = self.eval(env, e).to_php_string();
                self.output.push_str(&v);
                self.sinks.push(SinkEvent {
                    sink: "print".into(),
                    line: expr.span.line(),
                    args: vec![v],
                });
                Value::Int(1)
            }
            ExprKind::InstanceOf { expr, .. } => {
                self.eval(env, expr);
                Value::Bool(false)
            }
            ExprKind::Clone(e) => self.eval(env, e),
            ExprKind::IncludeExpr { path, .. } => {
                let p = self.eval(env, path).to_php_string();
                self.sinks.push(SinkEvent {
                    sink: "include".into(),
                    line: expr.span.line(),
                    args: vec![p],
                });
                Value::Bool(true)
            }
        }
    }

    fn eval_binary(&mut self, env: &mut Env, op: BinOp, lhs: &Expr, rhs: &Expr) -> Value {
        match op {
            BinOp::And => {
                let l = self.eval(env, lhs);
                if !l.truthy() {
                    return Value::Bool(false);
                }
                Value::Bool(self.eval(env, rhs).truthy())
            }
            BinOp::Or => {
                let l = self.eval(env, lhs);
                if l.truthy() {
                    return Value::Bool(true);
                }
                Value::Bool(self.eval(env, rhs).truthy())
            }
            BinOp::Coalesce => {
                let l = self.eval(env, lhs);
                if matches!(l, Value::Null) {
                    self.eval(env, rhs)
                } else {
                    l
                }
            }
            _ => {
                let l = self.eval(env, lhs);
                let r = self.eval(env, rhs);
                match op {
                    BinOp::Concat => {
                        Value::Str(format!("{}{}", l.to_php_string(), r.to_php_string()))
                    }
                    BinOp::Add => Value::Int(l.to_php_int() + r.to_php_int()),
                    BinOp::Sub => Value::Int(l.to_php_int() - r.to_php_int()),
                    BinOp::Mul => Value::Int(l.to_php_int() * r.to_php_int()),
                    BinOp::Div => {
                        let d = r.to_php_int();
                        Value::Int(if d == 0 { 0 } else { l.to_php_int() / d })
                    }
                    BinOp::Mod => {
                        let d = r.to_php_int();
                        Value::Int(if d == 0 { 0 } else { l.to_php_int() % d })
                    }
                    BinOp::Eq => Value::Bool(l.loose_eq(&r)),
                    BinOp::NotEq => Value::Bool(!l.loose_eq(&r)),
                    BinOp::Identical => Value::Bool(l.strict_eq(&r)),
                    BinOp::NotIdentical => Value::Bool(!l.strict_eq(&r)),
                    BinOp::Lt => Value::Bool(l.to_php_int() < r.to_php_int()),
                    BinOp::Gt => Value::Bool(l.to_php_int() > r.to_php_int()),
                    BinOp::Le => Value::Bool(l.to_php_int() <= r.to_php_int()),
                    BinOp::Ge => Value::Bool(l.to_php_int() >= r.to_php_int()),
                    BinOp::Spaceship => Value::Int((l.to_php_int() - r.to_php_int()).signum()),
                    BinOp::Xor => Value::Bool(l.truthy() ^ r.truthy()),
                    BinOp::BitAnd => Value::Int(l.to_php_int() & r.to_php_int()),
                    BinOp::BitOr => Value::Int(l.to_php_int() | r.to_php_int()),
                    BinOp::BitXor => Value::Int(l.to_php_int() ^ r.to_php_int()),
                    BinOp::Shl => Value::Int(l.to_php_int() << (r.to_php_int() & 63)),
                    BinOp::Shr => Value::Int(l.to_php_int() >> (r.to_php_int() & 63)),
                    _ => Value::Null,
                }
            }
        }
    }

    fn read(&mut self, env: &mut Env, target: &Expr) -> Value {
        match &target.kind {
            ExprKind::Var(n) => env.get(n.as_str()).cloned().unwrap_or(Value::Null),
            ExprKind::ArrayDim { .. } | ExprKind::Prop { .. } => {
                // re-evaluate as an rvalue
                let cloned = target.clone();
                self.eval(env, &cloned)
            }
            _ => Value::Null,
        }
    }

    fn assign(&mut self, env: &mut Env, target: &Expr, value: Value) {
        match &target.kind {
            ExprKind::Var(n) => {
                env.insert(n.to_string(), value);
            }
            ExprKind::ArrayDim { base, index } => {
                if let Some(root) = base.root_var() {
                    let key = match index.as_deref() {
                        Some(i) => self.eval(env, i).to_php_string(),
                        None => {
                            // push: next integer key
                            let len = match env.get(root) {
                                Some(Value::Array(m)) => m.len(),
                                _ => 0,
                            };
                            len.to_string()
                        }
                    };
                    let entry = env
                        .entry(root.to_string())
                        .or_insert_with(|| Value::Array(BTreeMap::new()));
                    if let Value::Array(map) = entry {
                        map.insert(key, value);
                    } else {
                        let mut m = BTreeMap::new();
                        m.insert(key, value);
                        *entry = Value::Array(m);
                    }
                }
            }
            ExprKind::Prop { base, name } => {
                if let Some(root) = base.root_var() {
                    env.insert(format!("{root}->{name}"), value);
                }
            }
            ExprKind::StaticProp { class, name } => {
                env.insert(format!("{class}::${name}"), value);
            }
            ExprKind::List(items) => {
                if let Value::Array(map) = value {
                    for (i, item) in items.iter().enumerate() {
                        if let Some(t) = item {
                            let v = map.get(&i.to_string()).cloned().unwrap_or(Value::Null);
                            self.assign(env, t, v);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn is_superglobal(&self, name: &str) -> bool {
        matches!(
            name,
            "_GET" | "_POST" | "_COOKIE" | "_REQUEST" | "_FILES" | "_SERVER" | "_ENV"
        )
    }

    fn log_if_sink(
        &mut self,
        name: &str,
        receiver: Option<&str>,
        argv: &[Value],
        line: u32,
    ) -> bool {
        let is_sink = self.catalog.sinks().any(|s| match &s.kind {
            SinkKind::Function(f) => receiver.is_none() && f.eq_ignore_ascii_case(name),
            SinkKind::Method {
                receiver_hint,
                name: m,
            } => {
                receiver.is_some()
                    && m.eq_ignore_ascii_case(name)
                    && match (receiver_hint, receiver) {
                        (None, _) => true,
                        (Some(h), Some(r)) => h.eq_ignore_ascii_case(r),
                        _ => false,
                    }
            }
            _ => false,
        });
        if is_sink {
            let display = match receiver {
                Some(r) => format!("${r}->{name}"),
                None => name.to_string(),
            };
            self.sinks.push(SinkEvent {
                sink: display,
                line,
                args: argv.iter().map(render_deep).collect(),
            });
        }
        is_sink
    }

    fn call_method(
        &mut self,
        env: &mut Env,
        receiver: Option<&str>,
        method: &str,
        argv: Vec<Value>,
        line: u32,
    ) -> Value {
        if self.log_if_sink(method, receiver, &argv, line) {
            return Value::Bool(false);
        }
        match method.to_ascii_lowercase().as_str() {
            // $wpdb->prepare: sprintf-style with escaping
            "prepare" => {
                let fmt = argv.first().map(Value::to_php_string).unwrap_or_default();
                Value::Str(php_prepare(&fmt, &argv[1..]))
            }
            "escape" | "real_escape_string" => Value::Str(mysql_escape(
                &argv.first().map(Value::to_php_string).unwrap_or_default(),
            )),
            "fetch_assoc" | "fetch_array" | "fetch_row" | "fetch_object" => Value::Bool(false),
            _ => {
                // user-defined method by name
                if self.functions.contains_key(&method.to_ascii_lowercase()) {
                    return self.call_user(env, method, argv);
                }
                let _ = env;
                Value::Null
            }
        }
    }

    fn call_user(&mut self, _env: &mut Env, name: &str, argv: Vec<Value>) -> Value {
        if self.depth >= MAX_DEPTH {
            return Value::Null;
        }
        let Some(func) = self.functions.get(&name.to_ascii_lowercase()).cloned() else {
            return Value::Null;
        };
        self.depth += 1;
        let mut local: Env = BTreeMap::new();
        for (i, p) in func.params.iter().enumerate() {
            let v = argv.get(i).cloned().or_else(|| {
                p.default.as_ref().map(|d| {
                    let mut empty = BTreeMap::new();
                    self.eval(&mut empty, d)
                })
            });
            local.insert(p.name.to_string(), v.unwrap_or(Value::Null));
        }
        let out = match self.exec_block(&mut local, &func.body) {
            Flow::Return(v) => v,
            _ => Value::Null,
        };
        self.depth -= 1;
        out
    }

    fn call_function(&mut self, env: &mut Env, name: &str, argv: Vec<Value>, line: u32) -> Value {
        if self.log_if_sink(name, None, &argv, line) {
            // queries return a falsy result handle so fetch loops end
            return Value::Bool(false);
        }
        if let Some(v) = crate::builtins::call(name, &argv) {
            return v;
        }
        if self.functions.contains_key(&name.to_ascii_lowercase()) {
            return self.call_user(env, name, argv);
        }
        Value::Null
    }
}

/// Renders a value for sink logs, expanding arrays recursively so
/// payloads inside array arguments (NoSQL filters) stay visible.
fn render_deep(v: &Value) -> String {
    match v {
        Value::Array(map) => {
            let inner: Vec<String> = map
                .iter()
                .map(|(k, v)| format!("{k}: {}", render_deep(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
        other => other.to_php_string(),
    }
}

/// `mysql_real_escape_string` semantics.
pub fn mysql_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\'' => out.push_str("\\'"),
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\0' => out.push_str("\\0"),
            other => out.push(other),
        }
    }
    out
}

/// `$wpdb->prepare` semantics: `%d` → int, `%s` → escaped + quoted.
pub fn php_prepare(fmt: &str, args: &[Value]) -> String {
    let mut out = String::new();
    let mut ai = 0usize;
    let mut chars = fmt.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('d') => {
                out.push_str(
                    &args
                        .get(ai)
                        .map(|v| v.to_php_int())
                        .unwrap_or(0)
                        .to_string(),
                );
                ai += 1;
            }
            Some('s') => {
                out.push('\'');
                out.push_str(&mysql_escape(
                    &args.get(ai).map(Value::to_php_string).unwrap_or_default(),
                ));
                out.push('\'');
                ai += 1;
            }
            Some('%') => out.push('%'),
            Some(other) => {
                out.push('%');
                out.push(other);
            }
            None => out.push('%'),
        }
    }
    out
}
