//! PHP runtime values for the mini-interpreter.

use std::collections::BTreeMap;
use std::fmt;

/// A PHP value. Arrays are ordered maps keyed by strings (integer keys are
/// stringified, as PHP effectively does for our purposes).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// Booleans.
    Bool(bool),
    /// Integers.
    Int(i64),
    /// Floats.
    Float(f64),
    /// Strings — the type that matters for injection analysis.
    Str(String),
    /// Arrays (ordered string-keyed maps).
    Array(BTreeMap<String, Value>),
}

impl Value {
    /// PHP-style truthiness.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty() && s != "0",
            Value::Array(a) => !a.is_empty(),
        }
    }

    /// PHP string conversion (the semantics string interpolation uses).
    pub fn to_php_string(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(true) => "1".to_string(),
            Value::Bool(false) => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Str(s) => s.clone(),
            Value::Array(_) => "Array".to_string(),
        }
    }

    /// PHP numeric conversion (leading-digits parse, like `(int)`).
    pub fn to_php_int(&self) -> i64 {
        match self {
            Value::Null => 0,
            Value::Bool(b) => i64::from(*b),
            Value::Int(i) => *i,
            Value::Float(f) => *f as i64,
            Value::Str(s) => {
                let t = s.trim_start();
                let mut end = 0;
                let bytes = t.as_bytes();
                if !bytes.is_empty() && (bytes[0] == b'-' || bytes[0] == b'+') {
                    end = 1;
                }
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                t[..end].parse().unwrap_or(0)
            }
            Value::Array(a) => i64::from(!a.is_empty()),
        }
    }

    /// Loose equality (`==`), enough for guard conditions.
    pub fn loose_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), b) => *a == b.truthy(),
            (a, Bool(b)) => a.truthy() == *b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a == b,
            (Int(a), Float(b)) | (Float(b), Int(a)) => *a as f64 == *b,
            (Str(a), Str(b)) => a == b,
            (Int(a), Str(_)) => *a == other.to_php_int(),
            (Str(_), Int(b)) => self.to_php_int() == *b,
            (Null, x) | (x, Null) => !x.truthy(),
            _ => false,
        }
    }

    /// Strict equality (`===`).
    pub fn strict_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Array(a), Value::Array(b)) => a == b,
            (a, b) => std::mem::discriminant(a) == std::mem::discriminant(b) && a.loose_eq(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_php_string())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness_matches_php() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Str("".into()).truthy());
        assert!(!Value::Str("0".into()).truthy());
        assert!(Value::Str("00".into()).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Array(BTreeMap::new()).truthy());
    }

    #[test]
    fn string_conversion() {
        assert_eq!(Value::Null.to_php_string(), "");
        assert_eq!(Value::Bool(true).to_php_string(), "1");
        assert_eq!(Value::Bool(false).to_php_string(), "");
        assert_eq!(Value::Int(42).to_php_string(), "42");
        assert_eq!(Value::Float(3.0).to_php_string(), "3");
        assert_eq!(Value::Float(3.5).to_php_string(), "3.5");
    }

    #[test]
    fn int_conversion_parses_leading_digits() {
        assert_eq!(Value::Str("12abc".into()).to_php_int(), 12);
        assert_eq!(Value::Str("abc".into()).to_php_int(), 0);
        assert_eq!(Value::Str("-7x".into()).to_php_int(), -7);
        assert_eq!(Value::Str("  9".into()).to_php_int(), 9);
    }

    #[test]
    fn loose_vs_strict_equality() {
        let s1 = Value::Str("1".into());
        let i1 = Value::Int(1);
        assert!(s1.loose_eq(&i1));
        assert!(!s1.strict_eq(&i1));
        assert!(Value::Null.loose_eq(&Value::Str("".into())));
        assert!(!Value::Null.strict_eq(&Value::Str("".into())));
    }
}
