//! PHP built-in functions with concrete semantics.
//!
//! Sanitizers are implemented faithfully (they are the point of the
//! confirmation harness); validation and string functions cover what the
//! corpus and the generated fixes use. `preg_match`/`ereg_replace` support
//! the character-class subset real guards use, and *reject* unknown
//! patterns — conservative for confirmation (a guard the interpreter
//! cannot model behaves as if it blocked the input).

use crate::interp::mysql_escape;
use crate::value::Value;
use std::collections::BTreeMap;

/// Dispatches a builtin. Returns `None` when the function is unknown
/// (the interpreter then tries user functions).
pub(crate) fn call(name: &str, argv: &[Value]) -> Option<Value> {
    let s0 = || argv.first().map(Value::to_php_string).unwrap_or_default();
    let s1 = || argv.get(1).map(Value::to_php_string).unwrap_or_default();
    let s2 = || argv.get(2).map(Value::to_php_string).unwrap_or_default();
    let i = |n: usize| argv.get(n).map(Value::to_php_int).unwrap_or(0);

    let lower = name.to_ascii_lowercase();
    Some(match lower.as_str() {
        // ---- sanitizers (real semantics) ----
        "mysql_real_escape_string"
        | "mysql_escape_string"
        | "mysqli_real_escape_string"
        | "mysqli_escape_string"
        | "pg_escape_string"
        | "sqlite_escape_string"
        | "esc_sql" => Value::Str(mysql_escape(&s0())),
        "addslashes" => Value::Str(
            s0().chars()
                .flat_map(|c| match c {
                    '\'' | '"' | '\\' | '\0' => vec!['\\', c],
                    other => vec![other],
                })
                .collect::<String>(),
        ),
        "stripslashes" => {
            let src = s0();
            let mut out = String::new();
            let mut chars = src.chars();
            while let Some(c) = chars.next() {
                if c == '\\' {
                    if let Some(n) = chars.next() {
                        out.push(n);
                    }
                } else {
                    out.push(c);
                }
            }
            Value::Str(out)
        }
        "htmlentities" | "htmlspecialchars" | "esc_attr" | "esc_html" => Value::Str(
            s0().chars()
                .map(|c| match c {
                    '&' => "&amp;".to_string(),
                    '<' => "&lt;".to_string(),
                    '>' => "&gt;".to_string(),
                    '"' => "&quot;".to_string(),
                    '\'' => "&#039;".to_string(),
                    other => other.to_string(),
                })
                .collect::<String>(),
        ),
        "html_entity_decode" | "htmlspecialchars_decode" => Value::Str(
            s0().replace("&amp;", "&")
                .replace("&lt;", "<")
                .replace("&gt;", ">")
                .replace("&quot;", "\"")
                .replace("&#039;", "'"),
        ),
        "strip_tags" | "sanitize_text_field" => {
            let src = s0();
            let mut out = String::new();
            let mut in_tag = false;
            for c in src.chars() {
                match c {
                    '<' => in_tag = true,
                    '>' => in_tag = false,
                    other if !in_tag => out.push(other),
                    _ => {}
                }
            }
            Value::Str(out.trim().to_string())
        }
        "urlencode" | "rawurlencode" => Value::Str(
            s0().bytes()
                .map(|b| {
                    if b.is_ascii_alphanumeric() || matches!(b, b'-' | b'_' | b'.') {
                        (b as char).to_string()
                    } else {
                        format!("%{b:02X}")
                    }
                })
                .collect::<String>(),
        ),
        "urldecode" | "rawurldecode" => {
            let src = s0();
            let bytes = src.as_bytes();
            let mut out = String::new();
            let mut k = 0;
            while k < bytes.len() {
                if bytes[k] == b'%' && k + 2 < bytes.len() {
                    if let Ok(v) = u8::from_str_radix(&src[k + 1..k + 3], 16) {
                        out.push(v as char);
                        k += 3;
                        continue;
                    }
                }
                if bytes[k] == b'+' {
                    out.push(' ');
                } else {
                    out.push(bytes[k] as char);
                }
                k += 1;
            }
            Value::Str(out)
        }
        "escapeshellarg" => Value::Str(format!("'{}'", s0().replace('\'', "'\\''"))),
        "escapeshellcmd" => Value::Str(
            s0().chars()
                .flat_map(|c| {
                    if "#&;`|*?~<>^()[]{}$\\\u{0a}\u{ff}\"'".contains(c) {
                        vec!['\\', c]
                    } else {
                        vec![c]
                    }
                })
                .collect::<String>(),
        ),
        "basename" => {
            let p = s0();
            let base = p.rsplit(['/', '\\']).next().unwrap_or("").to_string();
            Value::Str(base)
        }
        "ldap_escape" => Value::Str(
            s0().chars()
                .flat_map(|c| match c {
                    '*' | '(' | ')' | '\\' | '\0' => {
                        format!("\\{:02x}", c as u32).chars().collect::<Vec<_>>()
                    }
                    other => vec![other],
                })
                .collect::<String>(),
        ),

        // ---- string functions ----
        "trim" => Value::Str(s0().trim().to_string()),
        "rtrim" | "chop" => Value::Str(s0().trim_end().to_string()),
        "ltrim" => Value::Str(s0().trim_start().to_string()),
        "strtolower" => Value::Str(s0().to_lowercase()),
        "strtoupper" => Value::Str(s0().to_uppercase()),
        "strlen" => Value::Int(s0().len() as i64),
        "strrev" => Value::Str(s0().chars().rev().collect()),
        "str_repeat" => Value::Str(s0().repeat(i(1).max(0) as usize)),
        "substr" => {
            let src = s0();
            let chars: Vec<char> = src.chars().collect();
            let len = chars.len() as i64;
            let mut start = i(1);
            if start < 0 {
                start = (len + start).max(0);
            }
            let start = start.min(len) as usize;
            let take = if argv.len() > 2 {
                let l = i(2);
                if l < 0 {
                    ((len - start as i64) + l).max(0) as usize
                } else {
                    l as usize
                }
            } else {
                chars.len() - start
            };
            Value::Str(
                chars[start..(start + take).min(chars.len())]
                    .iter()
                    .collect(),
            )
        }
        "strpos" | "stripos" => {
            let hay = if lower == "stripos" {
                s0().to_lowercase()
            } else {
                s0()
            };
            let needle = if lower == "stripos" {
                s1().to_lowercase()
            } else {
                s1()
            };
            match hay.find(&needle) {
                Some(p) => Value::Int(p as i64),
                None => Value::Bool(false),
            }
        }
        "str_replace" | "str_ireplace" => {
            let subject = s2();
            let out = match (argv.first(), argv.get(1)) {
                (Some(Value::Array(search)), Some(replace)) => {
                    let mut s = subject;
                    let rep: Vec<String> = match replace {
                        Value::Array(r) => r.values().map(Value::to_php_string).collect(),
                        single => vec![single.to_php_string()],
                    };
                    for (k, pat) in search.values().enumerate() {
                        let r = rep.get(k).or(rep.first()).cloned().unwrap_or_default();
                        let r = if rep.len() == 1 { rep[0].clone() } else { r };
                        s = s.replace(&pat.to_php_string(), &r);
                    }
                    s
                }
                _ => subject.replace(&s0(), &s1()),
            };
            Value::Str(out)
        }
        "substr_replace" => {
            let src = s0();
            let rep = s1();
            let start = (i(2).max(0) as usize).min(src.len());
            Value::Str(format!("{}{}", &src[..start], rep))
        }
        "str_pad" => {
            let src = s0();
            let target = i(1).max(0) as usize;
            let pad = if argv.len() > 2 {
                s2()
            } else {
                " ".to_string()
            };
            let mut out = src;
            while out.len() < target && !pad.is_empty() {
                out.push_str(&pad);
            }
            out.truncate(out.len().max(target).min(out.len()));
            Value::Str(out)
        }
        "explode" => {
            let sep = s0();
            let src = s1();
            let mut map = BTreeMap::new();
            if sep.is_empty() {
                return Some(Value::Bool(false));
            }
            for (k, part) in src.split(&sep).enumerate() {
                map.insert(k.to_string(), Value::Str(part.to_string()));
            }
            Value::Array(map)
        }
        "implode" | "join" => {
            // implode(glue, array) or implode(array)
            let (glue, arr) = match (argv.first(), argv.get(1)) {
                (Some(Value::Array(a)), None) => (String::new(), a.clone()),
                (Some(g), Some(Value::Array(a))) => (g.to_php_string(), a.clone()),
                (Some(Value::Array(a)), Some(g)) => (g.to_php_string(), a.clone()),
                _ => (String::new(), BTreeMap::new()),
            };
            Value::Str(
                arr.values()
                    .map(Value::to_php_string)
                    .collect::<Vec<_>>()
                    .join(&glue),
            )
        }
        "sprintf" => {
            let fmt = s0();
            let mut out = String::new();
            let mut ai = 1usize;
            let mut chars = fmt.chars().peekable();
            while let Some(c) = chars.next() {
                if c != '%' {
                    out.push(c);
                    continue;
                }
                match chars.next() {
                    Some('s') => {
                        out.push_str(&argv.get(ai).map(Value::to_php_string).unwrap_or_default());
                        ai += 1;
                    }
                    Some('d') => {
                        out.push_str(&argv.get(ai).map(Value::to_php_int).unwrap_or(0).to_string());
                        ai += 1;
                    }
                    Some('%') => out.push('%'),
                    Some(o) => {
                        out.push('%');
                        out.push(o);
                    }
                    None => out.push('%'),
                }
            }
            Value::Str(out)
        }
        "number_format" => Value::Str(i(0).to_string()),
        "nl2br" => Value::Str(s0().replace('\n', "<br />\n")),

        // ---- regex subset ----
        "preg_match" | "preg_match_all" => Value::Int(i64::from(charclass_match(&s0(), &s1()))),
        "ereg" | "eregi" => Value::Int(i64::from(charclass_match(&s0(), &s1()))),
        "ereg_replace" | "eregi_replace" | "preg_replace" => {
            Value::Str(charclass_replace(&s0(), &s1(), &s2()))
        }
        "preg_quote" => Value::Str(
            s0().chars()
                .flat_map(|c| {
                    if ".\\+*?[^]$(){}=!<>|:-#/".contains(c) {
                        vec!['\\', c]
                    } else {
                        vec![c]
                    }
                })
                .collect::<String>(),
        ),
        "preg_split" | "str_split" | "split" | "spliti" => {
            let mut map = BTreeMap::new();
            map.insert("0".to_string(), Value::Str(s1()));
            Value::Array(map)
        }

        // ---- validation / type ----
        "is_numeric" => {
            let s = s0();
            let t = s.trim();
            Value::Bool(!t.is_empty() && t.parse::<f64>().is_ok())
        }
        "is_int" | "is_integer" | "is_long" => {
            Value::Bool(matches!(argv.first(), Some(Value::Int(_))))
        }
        "is_float" | "is_double" | "is_real" => {
            Value::Bool(matches!(argv.first(), Some(Value::Float(_))))
        }
        "is_string" => Value::Bool(matches!(argv.first(), Some(Value::Str(_)))),
        "is_bool" => Value::Bool(matches!(argv.first(), Some(Value::Bool(_)))),
        "is_array" => Value::Bool(matches!(argv.first(), Some(Value::Array(_)))),
        "is_null" => Value::Bool(matches!(argv.first(), Some(Value::Null) | None)),
        "is_scalar" => Value::Bool(matches!(
            argv.first(),
            Some(Value::Int(_) | Value::Float(_) | Value::Str(_) | Value::Bool(_))
        )),
        "ctype_digit" => {
            let s = s0();
            Value::Bool(!s.is_empty() && s.chars().all(|c| c.is_ascii_digit()))
        }
        "ctype_alpha" => {
            let s = s0();
            Value::Bool(!s.is_empty() && s.chars().all(|c| c.is_ascii_alphabetic()))
        }
        "ctype_alnum" => {
            let s = s0();
            Value::Bool(!s.is_empty() && s.chars().all(|c| c.is_ascii_alphanumeric()))
        }
        "intval" => Value::Int(argv.first().map(Value::to_php_int).unwrap_or(0)),
        "floatval" | "doubleval" => {
            Value::Float(argv.first().map(Value::to_php_int).unwrap_or(0) as f64)
        }
        "boolval" => Value::Bool(argv.first().map(Value::truthy).unwrap_or(false)),
        "absint" => Value::Int(argv.first().map(Value::to_php_int).unwrap_or(0).abs()),
        "abs" => Value::Int(i(0).abs()),
        "count" | "sizeof" => match argv.first() {
            Some(Value::Array(a)) => Value::Int(a.len() as i64),
            Some(Value::Null) | None => Value::Int(0),
            _ => Value::Int(1),
        },
        "in_array" => {
            let needle = argv.first().cloned().unwrap_or(Value::Null);
            match argv.get(1) {
                Some(Value::Array(a)) => Value::Bool(a.values().any(|v| v.loose_eq(&needle))),
                _ => Value::Bool(false),
            }
        }
        "array_key_exists" => {
            let key = s0();
            match argv.get(1) {
                Some(Value::Array(a)) => Value::Bool(a.contains_key(&key)),
                _ => Value::Bool(false),
            }
        }
        "array_keys" => match argv.first() {
            Some(Value::Array(a)) => Value::Array(
                a.keys()
                    .enumerate()
                    .map(|(k, v)| (k.to_string(), Value::Str(v.clone())))
                    .collect(),
            ),
            _ => Value::Array(BTreeMap::new()),
        },
        "array_values" => match argv.first() {
            Some(Value::Array(a)) => Value::Array(
                a.values()
                    .enumerate()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            ),
            _ => Value::Array(BTreeMap::new()),
        },

        // ---- hashing / misc (payload-destroying) ----
        "md5" | "sha1" | "crc32" | "hash" => {
            // a deterministic stand-in hash: payload cannot survive
            let src = if lower == "hash" { s1() } else { s0() };
            let mut h: u64 = 0xcbf29ce484222325;
            for b in src.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            Value::Str(format!("{h:016x}"))
        }
        "uniqid" => Value::Str("wapuniq0000".to_string()),
        "time" | "mktime" | "strtotime" => Value::Int(1_456_000_000),
        "date" => Value::Str("2016-06-28".to_string()),
        "rand" | "mt_rand" | "random_int" => Value::Int(4),
        "error_log" | "trigger_error" | "user_error" | "error_reporting" => Value::Bool(true),
        "define" | "defined" | "function_exists" | "class_exists" => Value::Bool(true),
        "file_exists" | "is_dir" | "is_file" | "headers_sent" => Value::Bool(false),
        "session_start" | "ob_start" => Value::Bool(true),
        "mysql_connect" | "mysqli_connect" | "mysql_select_db" | "pg_connect" | "ldap_connect"
        | "fopen" | "opendir" => Value::Int(1),
        "mysql_fetch_assoc" | "mysql_fetch_array" | "mysql_fetch_row" | "mysql_fetch_object"
        | "mysqli_fetch_assoc" | "mysqli_fetch_array" | "mysqli_fetch_row" | "pg_fetch_assoc"
        | "pg_fetch_row" => Value::Bool(false),
        "mysql_num_rows" | "mysqli_num_rows" | "mysql_affected_rows" => Value::Int(0),
        "get_query_var" => Value::Str(String::new()),
        "extract" => Value::Int(0),
        "filter_var" => argv.first().cloned().unwrap_or(Value::Null),
        "wp_verify_nonce" | "is_email" => Value::Bool(true),
        "like_escape" => Value::Str(mysql_escape(&s0())),

        _ => return None,
    })
}

/// Matches the character-class-anchored regex subset used by real guards:
/// `/^[a-z0-9_]+$/`. Unknown patterns conservatively fail (return false),
/// so unmodelled guards behave as if they rejected the input.
pub fn charclass_match(pattern: &str, subject: &str) -> bool {
    match parse_anchored_class(pattern) {
        Some((class, negated)) => {
            !subject.is_empty()
                && subject
                    .chars()
                    .all(|c| class_contains(&class, c) != negated)
        }
        None => false,
    }
}

/// `ereg_replace('[^a-z]', '', $v)`-style replacement on the same subset;
/// unknown patterns leave the subject unchanged.
pub fn charclass_replace(pattern: &str, replacement: &str, subject: &str) -> String {
    let inner = pattern
        .trim_start_matches('/')
        .trim_end_matches('/')
        .to_string();
    match parse_class(&inner) {
        Some((class, negated)) => subject
            .chars()
            .map(|c| {
                if class_contains(&class, c) != negated {
                    replacement.to_string()
                } else {
                    c.to_string()
                }
            })
            .collect(),
        None => subject.to_string(),
    }
}

/// Parses `/^[...]+$/` (delimiters and anchors optional) into the class.
fn parse_anchored_class(pattern: &str) -> Option<(Vec<(char, char)>, bool)> {
    let p = pattern.trim_matches('/');
    let p = p.strip_prefix('^').unwrap_or(p);
    let p = p.strip_suffix('$').unwrap_or(p);
    let p = p
        .strip_suffix('+')
        .or_else(|| p.strip_suffix('*'))
        .unwrap_or(p);
    parse_class(p)
}

/// Parses `[a-z0-9_]` / `[^...]` into ranges + negation flag.
fn parse_class(p: &str) -> Option<(Vec<(char, char)>, bool)> {
    let inner = p.strip_prefix('[')?.strip_suffix(']')?;
    let (inner, negated) = match inner.strip_prefix('^') {
        Some(rest) => (rest, true),
        None => (inner, false),
    };
    let chars: Vec<char> = inner.chars().collect();
    let mut ranges = Vec::new();
    let mut k = 0;
    while k < chars.len() {
        if k + 2 < chars.len() && chars[k + 1] == '-' {
            ranges.push((chars[k], chars[k + 2]));
            k += 3;
        } else {
            ranges.push((chars[k], chars[k]));
            k += 1;
        }
    }
    Some((ranges, negated))
}

fn class_contains(class: &[(char, char)], c: char) -> bool {
    class.iter().any(|(lo, hi)| c >= *lo && c <= *hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &str) -> Value {
        Value::Str(v.to_string())
    }

    #[test]
    fn mysql_escape_neutralizes_quotes() {
        let v = call("mysql_real_escape_string", &[s("' OR '1'='1")]).unwrap();
        assert_eq!(v.to_php_string(), "\\' OR \\'1\\'=\\'1");
    }

    #[test]
    fn htmlentities_neutralizes_script() {
        let v = call("htmlentities", &[s("<script>alert(1)</script>")]).unwrap();
        assert_eq!(v.to_php_string(), "&lt;script&gt;alert(1)&lt;/script&gt;");
    }

    #[test]
    fn escapeshellarg_wraps_and_escapes() {
        let v = call("escapeshellarg", &[s("x'; rm -rf /")]).unwrap();
        assert_eq!(v.to_php_string(), "'x'\\''; rm -rf /'");
    }

    #[test]
    fn basename_strips_traversal() {
        let v = call("basename", &[s("../../etc/passwd")]).unwrap();
        assert_eq!(v.to_php_string(), "passwd");
    }

    #[test]
    fn str_replace_with_arrays() {
        let mut search = BTreeMap::new();
        search.insert("0".to_string(), s("\r"));
        search.insert("1".to_string(), s("\n"));
        let v = call("str_replace", &[Value::Array(search), s(" "), s("a\r\nb")]).unwrap();
        assert_eq!(v.to_php_string(), "a  b");
    }

    #[test]
    fn charclass_regex_subset() {
        assert!(charclass_match("/^[a-z0-9_]+$/", "user_42"));
        assert!(!charclass_match("/^[a-z0-9_]+$/", "x' OR 1=1"));
        assert!(!charclass_match("/^[a-z]+$/", ""));
        // unknown patterns conservatively reject
        assert!(!charclass_match("/(a|b)+c?/", "abc"));
        assert_eq!(charclass_replace("[^a-z]", "", "a1b2!c"), "abc");
        assert_eq!(charclass_replace("(weird)", "", "keep"), "keep");
    }

    #[test]
    fn validation_builtins() {
        assert!(call("is_numeric", &[s("12.5")]).unwrap().truthy());
        assert!(!call("is_numeric", &[s("12x")]).unwrap().truthy());
        assert!(call("ctype_digit", &[s("0042")]).unwrap().truthy());
        assert!(!call("ctype_digit", &[s("")]).unwrap().truthy());
        assert_eq!(call("intval", &[s("7 OR 1")]).unwrap(), Value::Int(7));
    }

    #[test]
    fn md5_destroys_payload() {
        let v = call("md5", &[s("<script>")]).unwrap().to_php_string();
        assert!(!v.contains('<'));
        assert_eq!(v.len(), 16);
        // deterministic
        assert_eq!(call("md5", &[s("<script>")]).unwrap().to_php_string(), v);
    }

    #[test]
    fn sprintf_subset() {
        let v = call(
            "sprintf",
            &[s("SELECT %s FROM t WHERE n = %d"), s("a"), Value::Int(5)],
        )
        .unwrap();
        assert_eq!(v.to_php_string(), "SELECT a FROM t WHERE n = 5");
    }

    #[test]
    fn explode_implode_round_trip() {
        let arr = call("explode", &[s(","), s("a,b,c")]).unwrap();
        let back = call("implode", &[s(","), arr]).unwrap();
        assert_eq!(back.to_php_string(), "a,b,c");
    }

    #[test]
    fn unknown_function_returns_none() {
        assert!(call("totally_made_up_fn", &[]).is_none());
    }
}
