//! # wap-interp — dynamic exploit confirmation
//!
//! The paper states all reported vulnerabilities "were confirmed by us
//! manually" (§V-B). This crate automates that confirmation: a mini PHP
//! interpreter executes the flagged code against a mock HTTP request
//! carrying an attack payload, **logging what concretely reaches each
//! sensitive sink** instead of executing it. Sanitization functions have
//! real semantics, so running the corrected source demonstrates the
//! payload neutralized — closing the loop detect → confirm → fix →
//! re-confirm.
//!
//! ## Quick start
//!
//! ```
//! use wap_interp::{execute, Request};
//! use wap_catalog::Catalog;
//! use wap_php::parse;
//!
//! let program = parse(r#"<?php
//!     $id = $_GET['id'];
//!     mysql_query("SELECT * FROM users WHERE id = '$id'");
//! "#)?;
//! let request = Request::new().get("id", "' OR '1'='1");
//! let outcome = execute(&Catalog::wape(), &request, &[&program]);
//! assert!(outcome.sinks[0].args[0].contains("' OR '1'='1"), "payload reached the query");
//! # Ok::<(), wap_php::ParseError>(())
//! ```

#![warn(missing_docs)]

pub mod builtins;
pub mod confirm;
pub mod interp;
pub mod value;

pub use confirm::{confirm, payload_for, Confirmation};
pub use interp::{execute, ExecOutcome, Request, SinkEvent};
pub use value::Value;
