//! Exploit confirmation: craft a class-specific attack payload, execute
//! the program against it, and decide from the concrete sink arguments
//! whether the attack survived.

use crate::interp::{execute, Request, SinkEvent};
use wap_catalog::{Catalog, VulnClass};
use wap_php::Program;
use wap_taint::Candidate;

/// Unique marker embedded in every payload.
pub const MARKER: &str = "WAPPWN";

/// The verdict for one candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct Confirmation {
    /// Whether the payload reached the sink un-neutralized.
    pub exploitable: bool,
    /// The payload used.
    pub payload: String,
    /// The matching sink invocation, if the sink was reached at all.
    pub sink_event: Option<SinkEvent>,
    /// Human-readable explanation.
    pub detail: String,
}

/// The attack payload used for a class.
pub fn payload_for(class: &VulnClass) -> String {
    match class {
        VulnClass::Sqli | VulnClass::NoSqlI | VulnClass::XpathI => {
            format!("' OR '{MARKER}'='{MARKER}")
        }
        VulnClass::Custom(n) if n == "WPSQLI" => format!("' OR '{MARKER}'='{MARKER}"),
        VulnClass::XssReflected | VulnClass::XssStored => {
            format!("<script>{MARKER}()</script>")
        }
        VulnClass::Osci | VulnClass::Phpci => format!(";{MARKER};"),
        VulnClass::Rfi | VulnClass::Lfi | VulnClass::DirTraversal | VulnClass::Scd => {
            format!("../../etc/{MARKER}")
        }
        VulnClass::HeaderI | VulnClass::EmailI => format!("x\r\nX-{MARKER}: 1"),
        VulnClass::LdapI => format!("*)(uid={MARKER}"),
        VulnClass::SessionFixation => format!("PHPSESSID={MARKER};"),
        VulnClass::CommentSpam => format!("<a href=\"http://{MARKER}.example\">spam</a>"),
        VulnClass::Custom(_) => format!("'{MARKER}'"),
    }
}

/// Whether a sink argument shows the payload *un-neutralized* for `class`.
pub fn payload_survives(class: &VulnClass, arg: &str) -> bool {
    match class {
        VulnClass::Sqli | VulnClass::NoSqlI | VulnClass::XpathI => {
            arg.contains(&format!("' OR '{MARKER}"))
        }
        VulnClass::Custom(n) if n == "WPSQLI" => arg.contains(&format!("' OR '{MARKER}")),
        VulnClass::XssReflected | VulnClass::XssStored => {
            arg.contains(&format!("<script>{MARKER}"))
        }
        VulnClass::Osci | VulnClass::Phpci => shell_metachar_live(arg),
        VulnClass::Rfi | VulnClass::Lfi | VulnClass::DirTraversal | VulnClass::Scd => {
            arg.contains("../") && arg.contains(MARKER)
        }
        VulnClass::HeaderI | VulnClass::EmailI => {
            (arg.contains('\r') || arg.contains('\n')) && arg.contains(MARKER)
        }
        VulnClass::LdapI => arg.contains("*)("),
        VulnClass::SessionFixation => arg.contains(MARKER),
        VulnClass::CommentSpam => arg.contains("http://") && arg.contains(MARKER),
        VulnClass::Custom(_) => arg.contains(MARKER),
    }
}

/// Scans a shell command string: the `;MARKER` separator is live only
/// when it sits outside single quotes and is not backslash-escaped —
/// exactly the conditions `escapeshellarg`/`escapeshellcmd` remove.
fn shell_metachar_live(arg: &str) -> bool {
    let needle = format!(";{MARKER}");
    let bytes = arg.as_bytes();
    let mut in_quote = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !in_quote => {
                i += 2;
                continue;
            }
            b'\'' => in_quote = !in_quote,
            b';' if !in_quote && arg[i..].starts_with(&needle) => return true,
            _ => {}
        }
        i += 1;
    }
    false
}

/// Builds the mock request injecting `payload` at every entry point the
/// candidate's sources name. Returns `None` when no source is injectable
/// (e.g. weapon entry-point functions).
fn request_for(candidate: &Candidate, payload: &str) -> Option<Request> {
    let mut req = Request::new();
    let mut any = false;
    for src in &candidate.sources {
        // sources look like `$_GET['id']`, `$_POST` or `get_query_var()`
        if let Some(rest) = src.strip_prefix("$_") {
            let (global, key) = match rest.split_once("['") {
                Some((g, k)) => (format!("_{g}"), k.trim_end_matches("']").to_string()),
                None => (format!("_{rest}"), "0".to_string()),
            };
            req.set(&global, &key, payload);
            any = true;
        }
    }
    any.then_some(req)
}

/// Runs the confirmation for one candidate against the application's
/// parsed files.
pub fn confirm(catalog: &Catalog, files: &[&Program], candidate: &Candidate) -> Confirmation {
    let payload = payload_for(&candidate.class);
    let Some(request) = request_for(candidate, &payload) else {
        return Confirmation {
            exploitable: false,
            payload,
            sink_event: None,
            detail: "no injectable entry point in the mock request".to_string(),
        };
    };
    let outcome = execute(catalog, &request, files);
    // match sink events by name (the exact line may shift after fixing)
    let name_needle = candidate
        .sink
        .trim_start_matches('$')
        .split("->")
        .last()
        .unwrap_or(&candidate.sink)
        .to_string();
    let mut best: Option<SinkEvent> = None;
    for ev in outcome.sinks.iter() {
        if !ev.sink.contains(&name_needle) {
            continue;
        }
        let survives = ev
            .args
            .iter()
            .any(|a| payload_survives(&candidate.class, a));
        if survives {
            return Confirmation {
                exploitable: true,
                payload,
                sink_event: Some(ev.clone()),
                detail: format!(
                    "payload reached {} at line {} un-neutralized",
                    ev.sink, ev.line
                ),
            };
        }
        if ev.args.iter().any(|a| a.contains(MARKER)) && best.is_none() {
            best = Some(ev.clone());
        }
    }
    let detail = match &best {
        Some(ev) => format!(
            "payload reached {} at line {} but was neutralized",
            ev.sink, ev.line
        ),
        None => "payload never reached the sink (guard blocked it)".to_string(),
    };
    Confirmation {
        exploitable: false,
        payload,
        sink_event: best,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wap_php::parse;
    use wap_taint::analyze_program;

    fn first_candidate(catalog: &Catalog, src: &str) -> (Program, Candidate) {
        let program = parse(src).expect("parse");
        let found = analyze_program(catalog, &program);
        assert!(!found.is_empty(), "no candidate in:\n{src}");
        let c = found[0].clone();
        (program, c)
    }

    #[test]
    fn confirms_raw_sqli() {
        let catalog = Catalog::wape();
        let (p, c) = first_candidate(
            &catalog,
            r#"<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = '$id'");"#,
        );
        let conf = confirm(&catalog, &[&p], &c);
        assert!(conf.exploitable, "{conf:?}");
        assert!(conf.sink_event.unwrap().args[0].contains("' OR 'WAPPWN"));
    }

    #[test]
    fn sanitized_sqli_is_not_exploitable() {
        // taint is silent here, so build the candidate from the raw
        // version and confirm against the sanitized one
        let catalog = Catalog::wape();
        let (_, c) = first_candidate(
            &catalog,
            r#"<?php
$id = $_GET['id'];
mysql_query("SELECT * FROM users WHERE id = '$id'");"#,
        );
        let fixed = parse(
            r#"<?php
$id = mysql_real_escape_string($_GET['id']);
mysql_query("SELECT * FROM users WHERE id = '$id'");"#,
        )
        .unwrap();
        let conf = confirm(&catalog, &[&fixed], &c);
        assert!(!conf.exploitable, "{conf:?}");
        assert!(conf.detail.contains("neutralized"), "{conf:?}");
    }

    #[test]
    fn guarded_fp_is_not_exploitable() {
        // the false-positive shape: preg_match guard rejects the payload
        let catalog = Catalog::wape();
        let (p, c) = first_candidate(
            &catalog,
            r#"<?php
$id = $_GET['id'];
if (!preg_match('/^[0-9]+$/', $id)) { exit('bad'); }
mysql_query("SELECT * FROM t WHERE id = '$id'");"#,
        );
        let conf = confirm(&catalog, &[&p], &c);
        assert!(!conf.exploitable, "{conf:?}");
        assert!(conf.detail.contains("guard blocked"), "{conf:?}");
    }

    #[test]
    fn confirms_xss_and_neutralization() {
        let catalog = Catalog::wape();
        let (p, c) = first_candidate(&catalog, r#"<?php echo "Hello " . $_GET['name'];"#);
        assert!(confirm(&catalog, &[&p], &c).exploitable);

        let fixed = parse(r#"<?php echo "Hello " . htmlentities($_GET['name']);"#).unwrap();
        let conf = confirm(&catalog, &[&fixed], &c);
        assert!(!conf.exploitable, "{conf:?}");
    }

    #[test]
    fn confirms_osci_with_escapeshellarg_defeat() {
        let catalog = Catalog::wape();
        let (p, c) = first_candidate(&catalog, r#"<?php system("ping " . $_GET['host']);"#);
        assert!(confirm(&catalog, &[&p], &c).exploitable);

        let fixed = parse(r#"<?php system("ping " . escapeshellarg($_GET['host']));"#).unwrap();
        assert!(!confirm(&catalog, &[&fixed], &c).exploitable);
    }

    #[test]
    fn confirms_lfi_and_basename_defeat() {
        let catalog = Catalog::wape();
        let (p, c) = first_candidate(
            &catalog,
            r#"<?php include 'pages/' . $_GET['page'] . '.php';"#,
        );
        assert!(confirm(&catalog, &[&p], &c).exploitable);

        let fixed = parse(r#"<?php include 'pages/' . basename($_GET['page']) . '.php';"#).unwrap();
        assert!(!confirm(&catalog, &[&fixed], &c).exploitable);
    }

    #[test]
    fn confirms_header_injection_with_weapon() {
        let mut catalog = Catalog::wape();
        catalog.add_weapon(wap_catalog::WeaponConfig::hei());
        let (p, c) = first_candidate(&catalog, r#"<?php header("Location: " . $_GET['to']);"#);
        assert!(confirm(&catalog, &[&p], &c).exploitable);
    }

    #[test]
    fn weapon_entry_points_are_reported_uninjectable() {
        let mut catalog = Catalog::wape();
        catalog.add_weapon(wap_catalog::WeaponConfig::wpsqli());
        let (p, c) = first_candidate(
            &catalog,
            r#"<?php
$v = get_query_var('p');
$wpdb->query("SELECT * FROM t WHERE c = '$v'");"#,
        );
        let conf = confirm(&catalog, &[&p], &c);
        assert!(!conf.exploitable);
        assert!(conf.detail.contains("no injectable entry point"));
    }

    #[test]
    fn payload_survival_rules() {
        assert!(payload_survives(
            &VulnClass::Sqli,
            "x = '' OR 'WAPPWN'='WAPPWN'"
        ));
        assert!(!payload_survives(
            &VulnClass::Sqli,
            "x = '\\' OR \\'WAPPWN\\''"
        ));
        assert!(payload_survives(&VulnClass::Osci, "ping ;WAPPWN;"));
        assert!(!payload_survives(&VulnClass::Osci, "ping ';WAPPWN;'"));
        assert!(payload_survives(
            &VulnClass::Lfi,
            "pages/../../etc/WAPPWN.php"
        ));
        assert!(!payload_survives(&VulnClass::Lfi, "pages/WAPPWN.php"));
        assert!(payload_survives(&VulnClass::HeaderI, "x\r\nX-WAPPWN: 1"));
        assert!(!payload_survives(&VulnClass::HeaderI, "x  X-WAPPWN: 1"));
    }
}
