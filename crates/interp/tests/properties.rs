//! Property-based tests for the interpreter and confirmation harness.

use proptest::prelude::*;
use wap_catalog::{Catalog, VulnClass};
use wap_interp::{confirm, execute, payload_for, Request};
use wap_php::parse;
use wap_taint::analyze_program;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The interpreter never panics and always terminates within budget,
    /// whatever (parseable) source and request it gets.
    #[test]
    fn interpreter_is_total(body in "[ -~]{0,160}", key in "[a-z]{1,6}", val in "[ -~]{0,24}") {
        let src = format!("<?php {body}");
        if let Ok(program) = parse(&src) {
            let request = Request::new().get(&key, &val);
            let outcome = execute(&Catalog::wape(), &request, &[&program]);
            prop_assert!(outcome.steps < 200_000);
        }
    }

    /// Infinite loops are cut by the step budget.
    #[test]
    fn loops_always_terminate(n in 1u64..4) {
        let src = format!("<?php while ({n}) {{ $x = $x + 1; }}");
        let program = parse(&src).expect("parses");
        let outcome = execute(&Catalog::wape(), &Request::new(), &[&program]);
        prop_assert!(outcome.steps >= 100_000, "budget should have been hit");
    }

    /// Sanitizer round trip: for any input, the mysql-escaped string never
    /// contains a bare quote (every ' is preceded by a backslash).
    #[test]
    fn mysql_escape_kills_bare_quotes(input in "[ -~]{0,60}") {
        let src = "<?php $x = mysql_real_escape_string($_GET['v']); mysql_query(\"q = '$x'\");";
        let program = parse(src).expect("parses");
        let request = Request::new().get("v", &input);
        let outcome = execute(&Catalog::wape(), &request, &[&program]);
        let arg = &outcome.sinks[0].args[0];
        // strip the two literal quotes of the template, then scan
        let inner = &arg[5..arg.len().saturating_sub(1)];
        let bytes = inner.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'\\' {
                i += 2;
                continue;
            }
            prop_assert!(bytes[i] != b'\'', "bare quote survived in {arg}");
            i += 1;
        }
    }

    /// Confirmation is consistent with execution: a direct unguarded flow
    /// is always exploitable; adding the class sanitizer always defeats it.
    #[test]
    fn confirm_agrees_with_sanitization(key in "[a-z]{1,6}") {
        let catalog = Catalog::wape();
        let raw = format!(
            "<?php\n$v = $_GET['{key}'];\nmysql_query(\"SELECT * FROM t WHERE c = '$v'\");\n"
        );
        let program = parse(&raw).expect("parses");
        let found = analyze_program(&catalog, &program);
        prop_assert_eq!(found.len(), 1);
        let conf = confirm(&catalog, &[&program], &found[0]);
        prop_assert!(conf.exploitable);

        let safe = format!(
            "<?php\n$v = mysql_real_escape_string($_GET['{key}']);\nmysql_query(\"SELECT * FROM t WHERE c = '$v'\");\n"
        );
        let safe_program = parse(&safe).expect("parses");
        let conf = confirm(&catalog, &[&safe_program], &found[0]);
        prop_assert!(!conf.exploitable, "{:?}", conf);
    }
}

#[test]
fn every_class_has_a_payload_with_marker() {
    for class in VulnClass::original()
        .into_iter()
        .chain(VulnClass::new_in_wape())
    {
        let p = payload_for(&class);
        assert!(
            p.contains("WAPPWN"),
            "{class}: payload {p} lacks the marker"
        );
    }
}
