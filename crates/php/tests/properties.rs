//! Property-based tests for the PHP front end.

use proptest::prelude::*;
use wap_php::ast::*;
use wap_php::lexer::tokenize;
use wap_php::token::TokenKind;
use wap_php::{parse, print_program, Span};

// ---- lexer robustness ----

proptest! {
    /// The lexer must never panic, whatever bytes it is fed; it either
    /// tokenizes or reports a ParseError.
    #[test]
    fn lexer_never_panics(src in ".*") {
        let _ = tokenize(&src);
    }

    /// Same, for input that is guaranteed to enter PHP mode.
    #[test]
    fn lexer_never_panics_in_php_mode(body in "[ -~\\n]{0,200}") {
        let src = format!("<?php {body}");
        let _ = tokenize(&src);
    }

    /// Token spans are ordered, in-bounds, and slice back to valid text.
    #[test]
    fn token_spans_are_ordered_and_in_bounds(body in "[a-zA-Z0-9_$ ;=()'\\.\\n]{0,120}") {
        let src = format!("<?php {body}");
        if let Ok(tokens) = tokenize(&src) {
            let mut prev_start = 0u32;
            for t in &tokens {
                prop_assert!(t.span.start() <= t.span.end());
                prop_assert!((t.span.end() as usize) <= src.len());
                prop_assert!(t.span.start() >= prev_start,
                    "spans went backwards: {:?}", t);
                prev_start = t.span.start();
                if !matches!(t.kind, TokenKind::Eof) {
                    // slicing must not panic and must be in-bounds text
                    let _ = t.span.slice(&src);
                }
            }
            prop_assert!(matches!(tokens.last().map(|t| &t.kind), Some(TokenKind::Eof)));
        }
    }

    /// The parser must never panic either.
    #[test]
    fn parser_never_panics(body in "[ -~\\n]{0,200}") {
        let src = format!("<?php {body}");
        let _ = parse(&src);
    }
}

// ---- printer round-trip on generated ASTs ----

fn lit_strategy() -> impl Strategy<Value = Lit> {
    prop_oneof![
        // i64::MIN cannot be re-lexed as a literal (PHP overflows to float)
        any::<i64>().prop_map(|v| Lit::Int(v.max(i64::MIN + 1))),
        "[a-zA-Z0-9 _'\\\\-]{0,12}".prop_map(Lit::Str),
        any::<bool>().prop_map(Lit::Bool),
        Just(Lit::Null),
    ]
}

fn ident_strategy() -> impl Strategy<Value = String> {
    "[a-z_][a-z0-9_]{0,8}".prop_filter("keywords are not identifiers", |s| {
        TokenKind::keyword(s).is_none()
    })
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let sp = Span::synthetic;
    let leaf = prop_oneof![
        ident_strategy().prop_map(move |n| Expr::new(ExprKind::Var(n), sp())),
        lit_strategy().prop_map(move |l| Expr::new(ExprKind::Lit(l), sp())),
        ident_strategy().prop_map(move |n| Expr::new(ExprKind::Name(n), sp())),
    ];
    leaf.prop_recursive(3, 24, 4, move |inner| {
        prop_oneof![
            // binary op
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Concat),
                    Just(BinOp::Add),
                    Just(BinOp::Eq),
                    Just(BinOp::And),
                    Just(BinOp::Coalesce)
                ]
            )
                .prop_map(move |(l, r, op)| Expr::new(
                    ExprKind::Binary {
                        op,
                        lhs: Box::new(l),
                        rhs: Box::new(r)
                    },
                    sp()
                )),
            // call
            (ident_strategy(), prop::collection::vec(inner.clone(), 0..3)).prop_map(
                move |(name, args)| Expr::new(
                    ExprKind::Call {
                        callee: Box::new(Expr::new(ExprKind::Name(name), sp())),
                        args
                    },
                    sp()
                )
            ),
            // array dim with string key
            (ident_strategy(), "[a-z]{1,6}").prop_map(move |(base, key)| Expr::new(
                ExprKind::ArrayDim {
                    base: Box::new(Expr::new(ExprKind::Var(base), sp())),
                    index: Some(Box::new(Expr::new(ExprKind::Lit(Lit::Str(key)), sp()))),
                },
                sp()
            )),
            // assignment to a variable
            (ident_strategy(), inner.clone()).prop_map(move |(v, value)| Expr::new(
                ExprKind::Assign {
                    target: Box::new(Expr::new(ExprKind::Var(v), sp())),
                    op: AssignOp::Assign,
                    value: Box::new(value),
                    by_ref: false,
                },
                sp()
            )),
            // unary not
            inner.clone().prop_map(move |e| Expr::new(
                ExprKind::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e)
                },
                sp()
            )),
            // ternary
            (inner.clone(), inner.clone(), inner).prop_map(move |(c, t, o)| Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(c),
                    then: Some(Box::new(t)),
                    otherwise: Box::new(o),
                },
                sp()
            )),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let sp = Span::synthetic;
    let leaf = prop_oneof![
        expr_strategy().prop_map(move |e| Stmt::new(StmtKind::Expr(e), sp())),
        prop::collection::vec(expr_strategy(), 1..3)
            .prop_map(move |es| Stmt::new(StmtKind::Echo(es), sp())),
        expr_strategy().prop_map(move |e| Stmt::new(StmtKind::Return(Some(e)), sp())),
    ];
    leaf.prop_recursive(2, 12, 3, move |inner| {
        prop_oneof![
            (expr_strategy(), prop::collection::vec(inner.clone(), 0..3)).prop_map(
                move |(cond, body)| Stmt::new(
                    StmtKind::If {
                        cond,
                        then_branch: body,
                        elseifs: vec![],
                        else_branch: None
                    },
                    sp()
                )
            ),
            (expr_strategy(), prop::collection::vec(inner, 0..3))
                .prop_map(move |(cond, body)| Stmt::new(StmtKind::While { cond, body }, sp())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print → parse → print is a fixpoint for generated programs.
    #[test]
    fn printer_roundtrip_fixpoint(stmts in prop::collection::vec(stmt_strategy(), 0..6)) {
        let program = Program { stmts };
        let printed = print_program(&program);
        let reparsed = parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("printed source failed to parse: {e}\n{printed}")))?;
        let printed2 = print_program(&reparsed);
        prop_assert_eq!(&printed, &printed2, "printer is not a fixpoint");
    }

    /// Parsing printed output preserves the statement count (no statements
    /// are silently merged or dropped).
    #[test]
    fn printer_preserves_statement_count(stmts in prop::collection::vec(stmt_strategy(), 0..6)) {
        let n = stmts.len();
        let program = Program { stmts };
        let printed = print_program(&program);
        let reparsed = parse(&printed).expect("printed source parses");
        prop_assert_eq!(reparsed.stmts.len(), n);
    }
}

// ---- robustness under mutation ----

// Mutating real corpus-shaped source must never panic the front end:
// every byte-level corruption either parses or reports a ParseError.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn parser_survives_mutations(
        seed_stmt in 0usize..6,
        mutation_pos in 0usize..400,
        mutation_byte in 0u8..255,
        delete in proptest::bool::ANY,
    ) {
        let base = match seed_stmt {
            0 => "<?php\n$id = $_GET['id'];\nmysql_query(\"SELECT * FROM t WHERE id = $id\");\n",
            1 => "<?php\nif (isset($_GET['p'])) { include 'pages/' . $_GET['p'] . '.php'; }\n",
            2 => "<?php\nclass C { public function m($x) { return htmlentities($x); } }\n",
            3 => "<?php\nforeach ($_POST as $k => $v) { echo \"<li>$k: $v</li>\"; }\n",
            4 => "<?php $q = <<<SQL\nSELECT a FROM b WHERE c = '$d'\nSQL;\nmysql_query($q);\n",
            _ => "<h1>x</h1><?php echo $_GET['m']; ?><p><?= $x ?></p>",
        };
        let mut bytes = base.as_bytes().to_vec();
        let pos = mutation_pos % bytes.len();
        if delete {
            bytes.remove(pos);
        } else {
            bytes[pos] = mutation_byte;
        }
        if let Ok(src) = String::from_utf8(bytes) {
            // must not panic — Ok or Err are both fine
            let _ = parse(&src);
        }
    }
}
